"""The experiment sweeps EXP-1 .. EXP-7 (see DESIGN.md section 4).

Each function runs one experiment family and returns an
:class:`~repro.analysis.tables.Table` ready to print; EXPERIMENTS.md records
their reference output.  Sizes are parameterized so the same code serves the
quick benchmark configuration and fuller offline sweeps.

Every sweep accepts ``jobs``: its independent, seeded runs are dispatched
through :func:`repro.harness.parallel.run_sweep`, so ``jobs=1`` (the
default) executes inline exactly as before while ``jobs>1`` fans the runs
out over worker processes.  Results come back in task order and each run is
a pure function of its arguments, so the rendered tables are identical for
every ``jobs`` value.  Sweeps whose tables only need decisions and counts
run their systems under ``trace="metrics"``; EXP-7 keeps full traces (its
round estimate reads the step log).
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from typing import Any, Dict, List, Sequence, Tuple

from repro.analysis.stats import rate, summarize
from repro.analysis.tables import Table
from repro.consensus.flood_p import FloodSetPerfect
from repro.consensus.mostefaoui_raynal import MostefaouiRaynal
from repro.consensus.quorum_mr import QuorumMR
from repro.core.extraction import ExtractionSearch
from repro.detectors.omega import Omega
from repro.detectors.paired import PairedDetector
from repro.detectors.perfect import Perfect
from repro.detectors.sigma import Sigma
from repro.detectors.sigma_nu import SigmaNu
from repro.detectors.base import sample_history_cached
from repro.harness.batch import BatchPlan, judge_consensus, register_batch_planner
from repro.harness.parallel import SweepTask, run_sweep
from repro.harness.runner import (
    random_binary_proposals,
    random_pattern,
    run_boosting,
    run_consensus_algorithm,
    run_extraction,
    run_from_scratch_sigma,
    run_nuc,
    run_stack,
)
from repro.kernel.batch import LaneSpec
from repro.kernel.failures import FailurePattern
from repro.separation.contamination import run_contamination_scenario
from repro import obs as _obs


def _sweep(
    name: str,
    tasks: List[SweepTask],
    jobs: int,
    batch: bool = False,
    store: Any = None,
) -> List[Any]:
    """Dispatch an experiment's tasks under an ``exp.<name>`` span."""
    if not _obs._ENABLED:
        return run_sweep(tasks, jobs=jobs, batch=batch, store=store)
    with _obs.tracer().span(f"exp.{name}", tasks=len(tasks), jobs=jobs):
        return run_sweep(tasks, jobs=jobs, batch=batch, store=store)


def exp1_nuc_sufficiency(
    ns: Sequence[int] = (2, 3, 4, 5, 6),
    seeds: Sequence[int] = tuple(range(5)),
    max_steps: int = 30000,
    include_stack: bool = True,
    jobs: int = 1,
    store: Any = None,
) -> Table:
    """EXP-1 (Thms 6.27/6.28): A_nuc and the full stack solve nonuniform
    consensus in any environment, including minority-correct ones."""
    table = Table(
        "EXP-1: nonuniform consensus sufficiency — A_nuc with (Omega, Sigma^nu+)"
        + (" and the (Omega, Sigma^nu) stack" if include_stack else ""),
        [
            "algo",
            "n",
            "runs",
            "decided",
            "agreement_ok",
            "mean_steps",
            "mean_msgs",
        ],
    )
    tasks: List[SweepTask] = []
    groups: List[Tuple[str, int, int]] = []  # (algo, n, task count)
    for n in ns:
        for seed in seeds:
            rng = random.Random((seed + 1) * 7919 + n)
            pattern = random_pattern(n, rng)
            proposals = random_binary_proposals(n, rng)
            tasks.append(
                SweepTask(
                    run_nuc,
                    dict(
                        pattern=pattern,
                        proposals=proposals,
                        seed=seed,
                        max_steps=max_steps,
                        trace="metrics",
                    ),
                )
            )
        groups.append(("A_nuc", n, len(seeds)))
        if include_stack:
            for seed in seeds:
                rng = random.Random((seed + 1) * 104729 + n)
                pattern = random_pattern(n, rng)
                proposals = random_binary_proposals(n, rng)
                tasks.append(
                    SweepTask(
                        run_stack,
                        dict(
                            pattern=pattern,
                            proposals=proposals,
                            seed=seed,
                            max_steps=2 * max_steps,
                            trace="metrics",
                        ),
                    )
                )
            groups.append(("stack", n, len(seeds)))
    results = _sweep("exp1", tasks, jobs, store=store)
    cursor = 0
    for algo, n, count in groups:
        outcomes = results[cursor : cursor + count]
        cursor += count
        agreement = (
            all(o.nonuniform.ok for o in outcomes)
            if algo == "A_nuc"
            else all(o.nonuniform.ok and o.boosted_check.ok for o in outcomes)
        )
        table.add_row(
            algo,
            n,
            len(outcomes),
            sum(1 for o in outcomes if o.metrics.all_correct_decided),
            agreement,
            summarize(o.metrics.steps for o in outcomes).mean,
            summarize(o.metrics.messages_sent for o in outcomes).mean,
        )
    table.add_note(
        "failure patterns sample up to n-1 crashes; 'agreement_ok' also "
        "covers validity and, for the stack, the emulated Sigma^nu+ checks"
    )
    return table


def exp2_boosting(
    ns: Sequence[int] = (2, 3, 4, 5, 6),
    seeds: Sequence[int] = tuple(range(5)),
    faulty_styles: Sequence[str] = ("selfish", "junk", "obedient"),
    jobs: int = 1,
    store: Any = None,
) -> Table:
    """EXP-2 (Thm 6.7): the booster's output satisfies all four Sigma^nu+
    properties in any environment."""
    table = Table(
        "EXP-2: T_{Sigma^nu -> Sigma^nu+} output validity",
        ["n", "faulty_style", "runs", "all_valid", "mean_outputs", "mean_steps"],
    )
    tasks: List[SweepTask] = []
    groups: List[Tuple[int, str]] = []
    for n in ns:
        for style in faulty_styles:
            for seed in seeds:
                rng = random.Random((seed + 1) * 31 + n)
                pattern = random_pattern(n, rng, max_crash_time=50)
                tasks.append(
                    SweepTask(
                        run_boosting,
                        dict(
                            pattern=pattern,
                            seed=seed,
                            detector=SigmaNu(style),
                            trace="metrics",
                        ),
                    )
                )
            groups.append((n, style))
    results = _sweep("exp2", tasks, jobs, store=store)
    cursor = 0
    for n, style in groups:
        outcomes = results[cursor : cursor + len(seeds)]
        cursor += len(seeds)
        table.add_row(
            n,
            style,
            len(outcomes),
            all(o.check.ok for o in outcomes),
            summarize(o.metrics.outputs_emitted for o in outcomes).mean,
            summarize(o.metrics.steps for o in outcomes).mean,
        )
    return table


def _exp3_subject(label: str):
    """Construct the (subject automaton, detector) pair for an EXP-3 row.

    Built inside the worker process so nothing but the label needs to cross
    the process boundary.
    """
    from repro.consensus.chandra_toueg import ChandraTouegS
    from repro.detectors.perfect import EventuallyPerfect

    if label == "(Omega,Sigma) / quorum-MR":
        return QuorumMR(), PairedDetector(Omega(), Sigma("pivot"))
    if label == "P / floodset":
        return FloodSetPerfect(), Perfect(lag=4)
    if label == "Omega / MR (majority env)":
        return MostefaouiRaynal(), Omega()
    if label == "<>P / Chandra-Toueg (majority env)":
        return ChandraTouegS(), EventuallyPerfect()
    raise ValueError(f"unknown EXP-3 subject {label!r}")


def _exp3_task(
    label: str, pattern: FailurePattern, seed: int, use_trie: bool = True
):
    subject, detector = _exp3_subject(label)
    return run_extraction(
        subject,
        detector,
        pattern,
        seed=seed,
        search=ExtractionSearch(use_trie=use_trie),
        trace="metrics",
    )


def exp3_extraction(
    ns: Sequence[int] = (3, 4),
    seeds: Sequence[int] = tuple(range(3)),
    jobs: int = 1,
    use_trie: bool = True,
    store: Any = None,
) -> Table:
    """EXP-3 (Thms 5.4/5.8): T_{D -> Sigma^nu} over several (D, A) pairs.

    Because every subject algorithm here solves *uniform* consensus with its
    detector, the extracted history must satisfy full Sigma as well
    (Theorem 5.8) — both verdicts are reported.  ``use_trie`` toggles the
    incremental search engine (the table's shape and verdicts are identical
    either way; only the wall-clock differs).
    """
    subjects = [
        ("(Omega,Sigma) / quorum-MR", None),
        ("P / floodset", None),
        ("Omega / MR (majority env)", "majority"),
        ("<>P / Chandra-Toueg (majority env)", "majority"),
    ]
    table = Table(
        "EXP-3: necessity extraction T_{D -> Sigma^nu}",
        ["subject", "n", "runs", "sigma_nu_ok", "sigma_ok", "mean_quorum_size"],
    )
    tasks: List[SweepTask] = []
    groups: List[Tuple[str, int]] = []
    for label, env in subjects:
        for n in ns:
            for seed in seeds:
                rng = random.Random((seed + 1) * 53 + n)
                max_faulty = (n - 1) // 2 if env == "majority" else n - 1
                pattern = random_pattern(
                    n, rng, max_faulty=max_faulty, max_crash_time=40
                )
                tasks.append(
                    SweepTask(
                        _exp3_task,
                        dict(
                            label=label,
                            pattern=pattern,
                            seed=seed,
                            use_trie=use_trie,
                        ),
                    )
                )
            groups.append((label, n))
    results = _sweep("exp3", tasks, jobs, store=store)
    cursor = 0
    for label, n in groups:
        outcomes = results[cursor : cursor + len(seeds)]
        cursor += len(seeds)
        sizes: List[int] = []
        for o in outcomes:
            for p, events in o.result.outputs.items():
                sizes.extend(len(q) for _, q in events[1:])
        table.add_row(
            label,
            n,
            len(outcomes),
            all(o.sigma_nu_check.ok for o in outcomes),
            all(o.sigma_check.ok for o in outcomes),
            summarize(sizes).mean if sizes else float("nan"),
        )
    return table


def _exp4_adversary_task(n: int, t: int, seed: int):
    """One Theorem 7.1 adversary run (the process factory closes over
    ``(n, t)`` inside the worker; closures don't pickle)."""
    from repro.separation.adversary import run_partition_adversary
    from repro.separation.from_scratch_sigma import FromScratchSigma

    return run_partition_adversary(
        lambda pid: FromScratchSigma(n, t), n, t, seed=seed
    )


def exp4_separation(
    cases: Sequence[Tuple[int, int]] = ((2, 1), (4, 2), (5, 3), (6, 3), (3, 1), (5, 2)),
    seeds: Sequence[int] = (0, 1),
    jobs: int = 1,
    store: Any = None,
) -> Table:
    """EXP-4 (Thm 7.1): (Omega, Sigma^nu) vs (Omega, Sigma) by environment.

    For ``t < n/2`` the from-scratch algorithm implements Sigma (validated by
    the Sigma checker); for ``t >= n/2`` the partition adversary breaks any
    candidate transformation — here, the same algorithm run with threshold
    ``n - t``.
    """
    table = Table(
        "EXP-4: Theorem 7.1 separation — E_t environments",
        ["n", "t", "t<n/2", "from-scratch Sigma valid", "adversary verdict"],
    )
    tasks: List[SweepTask] = []
    groups: List[Tuple[int, int, bool]] = []
    for n, t in cases:
        majority = t < n / 2
        if majority:
            for seed in seeds:
                rng = random.Random(seed * 17 + n)
                crashed = rng.sample(range(n), t)
                pattern = FailurePattern(
                    n, {p: rng.randint(0, 30) for p in crashed}
                )
                tasks.append(
                    SweepTask(
                        run_from_scratch_sigma,
                        dict(
                            n=n,
                            t=t,
                            pattern=pattern,
                            seed=seed,
                            trace="metrics",
                        ),
                    )
                )
        else:
            for seed in seeds:
                tasks.append(
                    SweepTask(_exp4_adversary_task, dict(n=n, t=t, seed=seed))
                )
        groups.append((n, t, majority))
    results = _sweep("exp4", tasks, jobs, store=store)
    cursor = 0
    for n, t, majority in groups:
        outcomes = results[cursor : cursor + len(seeds)]
        cursor += len(seeds)
        if majority:
            ok = all(o.check.ok for o in outcomes)
            table.add_row(n, t, True, ok, "adversary inapplicable (no partition)")
        else:
            broke = all(v.violated for v in outcomes)
            table.add_row(
                n,
                t,
                False,
                "n/a (not claimed)",
                "intersection VIOLATED" if broke else "survived (unexpected)",
            )
    table.add_note(
        "the adversary attacks the from-scratch algorithm run with "
        "threshold n-t; Theorem 7.1 says every transformation fails likewise"
    )
    return table


def exp5_contamination(
    seeds: Sequence[int] = (0, 1, 2), jobs: int = 1, store: Any = None
) -> Table:
    """EXP-5 (Section 6.3): the naive Sigma^nu quorum algorithm is
    contaminable; A_nuc is not, under the same scenario family."""
    table = Table(
        "EXP-5: Section 6.3 contamination scenario (n=3, process 2 faulty)",
        [
            "algorithm",
            "seed",
            "decisions(correct)",
            "agreement violated",
            "history valid",
            "distrust events",
        ],
    )
    tasks = [
        SweepTask(run_contamination_scenario, dict(algorithm=algorithm, seed=seed))
        for algorithm in ("naive", "anuc")
        for seed in seeds
    ]
    results = _sweep("exp5", tasks, jobs, store=store)
    for task, report in zip(tasks, results):
        correct_decisions = {
            p: v for p, v in report.decisions.items() if p in (0, 1)
        }
        table.add_row(
            task.kwargs["algorithm"],
            task.kwargs["seed"],
            str(correct_decisions),
            report.contaminated,
            report.omega_check.ok and report.sigma_check.ok,
            len(report.distrust_events),
        )
    table.add_note(
        "expected: naive violates nonuniform agreement in every seed; "
        "A_nuc never does and shows distrust activity instead"
    )
    return table


def exp6_merging(
    seeds: Sequence[int] = tuple(range(10)),
    n: int = 5,
    jobs: int = 1,
    store: Any = None,
) -> Table:
    """EXP-6 (Lemma 2.2): merged mergeable runs are runs, and participants'
    final states are preserved."""
    from repro.harness.merging import random_mergeable_pair_report

    table = Table(
        "EXP-6: Lemma 2.2 merging of mergeable runs",
        ["seed", "|S0|", "|S1|", "merged is run", "states preserved"],
    )
    tasks = [
        SweepTask(random_mergeable_pair_report, dict(n=n, seed=seed))
        for seed in seeds
    ]
    results = _sweep("exp6", tasks, jobs, store=store)
    for seed, report in zip(seeds, results):
        table.add_row(
            seed,
            report.len0,
            report.len1,
            report.merged_valid,
            report.states_preserved,
        )
    return table


def _exp7_task(algo: str, pattern: FailurePattern, proposals: Dict[int, Any], seed: int):
    """One EXP-7 run; algorithms and detectors are built in the worker.

    Full traces are kept: the round estimate reads LEAD tags out of the
    step log.
    """
    if algo == "MR (Omega, majority env)":
        return run_consensus_algorithm(
            MostefaouiRaynal(), Omega(), pattern, proposals, seed=seed
        )
    if algo == "quorum-MR (Omega,Sigma)":
        return run_consensus_algorithm(
            QuorumMR(),
            PairedDetector(Omega(), Sigma("pivot")),
            pattern,
            proposals,
            seed=seed,
        )
    if algo == "A_nuc (Omega,Sigma^nu+)":
        return run_nuc(pattern, proposals, seed=seed)
    raise ValueError(f"unknown EXP-7 algorithm {algo!r}")


_EXP7_ALGOS = (
    "MR (Omega, majority env)",
    "quorum-MR (Omega,Sigma)",
    "A_nuc (Omega,Sigma^nu+)",
)


@register_batch_planner(_exp7_task)
def _plan_exp7_task(kwargs: Dict[str, Any]) -> Any:
    """Batch the EXP-7 automaton rows; A_nuc rows keep the coroutine path."""
    algo = kwargs["algo"]
    if algo == "MR (Omega, majority env)":
        automaton, detector = MostefaouiRaynal(), Omega()
    elif algo == "quorum-MR (Omega,Sigma)":
        automaton, detector = QuorumMR(), PairedDetector(Omega(), Sigma("pivot"))
    else:
        return None
    pattern = kwargs["pattern"]
    proposals = kwargs["proposals"]
    seed = kwargs["seed"]
    history = sample_history_cached(detector, pattern, seed)
    spec = LaneSpec(
        pattern=pattern,
        history=history,
        seed=seed,
        max_steps=20000,  # run_consensus_algorithm's default budget
        automaton=automaton,
        proposals=proposals,
        trace="full",
        stop="all-correct-decided",
    )
    return BatchPlan(spec=spec, post=lambda result: judge_consensus(result, proposals))


def exp7_scaling(
    ns: Sequence[int] = (2, 3, 4, 5, 6, 7),
    seeds: Sequence[int] = (0, 1, 2),
    jobs: int = 1,
    batch: bool = True,
    store: Any = None,
) -> Table:
    """EXP-7 (cost profile): steps and messages to decision for A_nuc vs the
    MR baselines, and booster output cadence, as n grows."""
    table = Table(
        "EXP-7: scaling — mean steps / messages / rounds to decision",
        ["algo", "n", "mean_steps", "mean_msgs", "mean_rounds", "decided_rate"],
    )
    tasks: List[SweepTask] = []
    groups: List[Tuple[str, int]] = []
    for n in ns:
        per_seed: List[Tuple[FailurePattern, FailurePattern, Dict[int, Any]]] = []
        for seed in seeds:
            rng = random.Random(seed * 13 + n)
            maj_pattern = random_pattern(n, rng, max_faulty=(n - 1) // 2)
            any_pattern = random_pattern(n, rng)
            proposals = random_binary_proposals(n, rng)
            per_seed.append((maj_pattern, any_pattern, proposals))
        for algo in _EXP7_ALGOS:
            for seed, (maj_pattern, any_pattern, proposals) in zip(seeds, per_seed):
                pattern = (
                    maj_pattern if algo == "MR (Omega, majority env)" else any_pattern
                )
                tasks.append(
                    SweepTask(
                        _exp7_task,
                        dict(
                            algo=algo,
                            pattern=pattern,
                            proposals=proposals,
                            seed=seed,
                        ),
                    )
                )
            groups.append((algo, n))
    results = _sweep("exp7", tasks, jobs, batch=batch, store=store)
    cursor = 0
    for label, n in groups:
        outcomes = results[cursor : cursor + len(seeds)]
        cursor += len(seeds)
        rounds = [r for o in outcomes for r in _decision_rounds(o)]
        table.add_row(
            label,
            n,
            summarize(o.metrics.steps for o in outcomes).mean,
            summarize(o.metrics.messages_sent for o in outcomes).mean,
            summarize(rounds).mean if rounds else float("nan"),
            rate(
                sum(1 for o in outcomes if o.metrics.all_correct_decided),
                len(outcomes),
            ),
        )
    return table


def exp8_exhaustive(
    n: int = 3,
    crash_times: Sequence[int] = (0, 25),
    seeds: Sequence[int] = (0, 1),
    max_steps: int = 40000,
    jobs: int = 1,
    store: Any = None,
) -> Table:
    """EXP-8: exhaustive environment coverage at small n.

    "In any environment" means for every failure pattern; a simulator can at
    least enumerate every crash *set* for small n (combined with a grid of
    crash times) and check A_nuc on each.  With n = 3 and two candidate
    times this is every subset of up to n-1 processes crashing early or
    late — including every minority-correct pattern.
    """
    import itertools as _it

    from repro.kernel.environment import Environment

    env = Environment.any_failures(n)
    table = Table(
        f"EXP-8: exhaustive crash-set sweep for A_nuc (n={n}, "
        f"times={list(crash_times)})",
        ["crash_set", "patterns", "runs", "decided", "agreement_ok"],
    )
    tasks: List[SweepTask] = []
    groups: List[Tuple[List[int], int, int]] = []
    for crash_set in env.enumerate_crash_sets():
        patterns: List[FailurePattern] = []
        members = sorted(crash_set)
        if not members:
            patterns.append(FailurePattern.no_failures(n))
        else:
            for times in _it.product(crash_times, repeat=len(members)):
                patterns.append(FailurePattern(n, dict(zip(members, times))))
        count = 0
        for pattern in patterns:
            for seed in seeds:
                rng = random.Random(f"exp8/{sorted(crash_set)}/{seed}")
                proposals = random_binary_proposals(n, rng)
                tasks.append(
                    SweepTask(
                        run_nuc,
                        dict(
                            pattern=pattern,
                            proposals=proposals,
                            seed=seed,
                            max_steps=max_steps,
                            trace="metrics",
                        ),
                    )
                )
                count += 1
        groups.append((members, len(patterns), count))
    results = _sweep("exp8", tasks, jobs, store=store)
    cursor = 0
    for members, pattern_count, count in groups:
        outcomes = results[cursor : cursor + count]
        cursor += count
        table.add_row(
            "{" + ",".join(str(p) for p in members) + "}" if members else "{}",
            pattern_count,
            len(outcomes),
            sum(1 for o in outcomes if o.metrics.all_correct_decided),
            all(o.nonuniform.ok for o in outcomes),
        )
    return table


def _decision_rounds(outcome) -> List[int]:
    """Rounds in which correct processes decided, when the run recorded them.

    A_nuc runs expose per-process traces; the MR-family automata expose the
    decision round through the schedule-visible LEAD tags — we estimate it
    from each decider's message log is unnecessary: the automaton state is
    not retained by the runner, so we fall back to counting LEAD rounds the
    decider opened, reconstructed from its sent messages.
    """
    rounds: List[int] = []
    result = outcome.result
    for p, decided_at in result.decision_times.items():
        if p not in result.pattern.correct:
            continue
        opened = 0
        for record in result.steps:
            if record.pid != p or record.time > decided_at:
                continue
            for message in record.sends:
                payload = message.payload
                if (
                    isinstance(payload, tuple)
                    and len(payload) >= 2
                    and payload[0] == "LEAD"
                    and isinstance(payload[1], int)
                ):
                    opened = max(opened, payload[1])
        if opened:
            rounds.append(opened)
    return rounds


def exp9_registers(
    seeds: Sequence[int] = (0, 1, 2),
    jobs: int = 1,
    store: Any = None,
) -> Table:
    """EXP-9 (paper intro / [3]'s technique): registers need Sigma.

    Under Sigma the ABD quorum-register emulation stays atomic across
    random workloads and crashes; under Sigma^nu the lost-write scenario
    produces a checked atomicity violation on a certified-legal history —
    the executable reason the uniform proof route cannot carry the
    nonuniform result.

    The scenario arms are three tiny interactive runs; ``jobs`` and
    ``store`` are accepted for CLI/spec uniformity but the sweep always
    executes inline and is never served from the store.
    """
    import random as _random

    from repro.detectors import Sigma as _Sigma
    from repro.registers import RegisterHarness, check_register_safety
    from repro.registers.counterexample import (
        run_lost_write_scenario,
        run_sigma_control_arm,
    )

    table = Table(
        "EXP-9: quorum registers — Sigma atomic, Sigma^nu contaminable",
        ["arm", "seed", "operations", "atomic", "note"],
    )
    # Inline-only "sweep": the span mirrors what _sweep adds elsewhere,
    # guarded like every other instrumentation site.
    with (
        _obs.tracer().span("exp.exp9", seeds=len(seeds))
        if _obs._ENABLED
        else nullcontext()
    ):
        for seed in seeds:
            rng = _random.Random(f"exp9/{seed}")
            n = 4
            pattern = FailurePattern(n, {3: rng.randint(20, 50)})
            scripts = {
                0: [("write", f"a{seed}"), ("read",)],
                1: [("read",), ("write", f"b{seed}")],
                2: [("read",), ("read",)],
                3: [("write", f"c{seed}")],
            }
            history = _Sigma("pivot").sample_history(pattern, rng)
            harness = RegisterHarness(
                pattern=pattern, history=history, scripts=scripts, seed=seed
            )
            _, records, procs = harness.run()
            report = check_register_safety(
                records, RegisterHarness.incomplete_writes(procs)
            )
            table.add_row(
                "Sigma / ABD", seed, len(records), report.ok, "random workload"
            )
        for seed in seeds:
            report = run_lost_write_scenario(seed=seed)
            table.add_row(
                "Sigma^nu / lost write",
                seed,
                2,
                report.safety.ok,
                "history legal Sigma^nu"
                if report.sigma_nu_check.ok
                else "HISTORY INVALID?",
            )
        table.add_row(
            "Sigma control arm",
            0,
            0,
            True,
            "isolated write blocks"
            if run_sigma_control_arm()
            else "UNEXPECTED: write completed",
        )
    return table
