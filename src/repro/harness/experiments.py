"""The experiment sweeps EXP-1 .. EXP-7 (see DESIGN.md section 4).

Each function runs one experiment family and returns an
:class:`~repro.analysis.tables.Table` ready to print; EXPERIMENTS.md records
their reference output.  Sizes are parameterized so the same code serves the
quick benchmark configuration and fuller offline sweeps.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.stats import rate, summarize
from repro.analysis.tables import Table
from repro.consensus.flood_p import FloodSetPerfect
from repro.consensus.mostefaoui_raynal import MostefaouiRaynal
from repro.consensus.quorum_mr import QuorumMR
from repro.detectors.omega import Omega
from repro.detectors.paired import PairedDetector
from repro.detectors.perfect import Perfect
from repro.detectors.sigma import Sigma
from repro.detectors.sigma_nu import SigmaNu
from repro.harness.runner import (
    random_binary_proposals,
    random_pattern,
    run_boosting,
    run_extraction,
    run_from_scratch_sigma,
    run_nuc,
    run_stack,
)
from repro.kernel.failures import FailurePattern
from repro.separation.adversary import run_partition_adversary
from repro.separation.contamination import run_contamination_scenario
from repro.separation.from_scratch_sigma import FromScratchSigma


def exp1_nuc_sufficiency(
    ns: Sequence[int] = (2, 3, 4, 5, 6),
    seeds: Sequence[int] = tuple(range(5)),
    max_steps: int = 30000,
    include_stack: bool = True,
) -> Table:
    """EXP-1 (Thms 6.27/6.28): A_nuc and the full stack solve nonuniform
    consensus in any environment, including minority-correct ones."""
    table = Table(
        "EXP-1: nonuniform consensus sufficiency — A_nuc with (Omega, Sigma^nu+)"
        + (" and the (Omega, Sigma^nu) stack" if include_stack else ""),
        [
            "algo",
            "n",
            "runs",
            "decided",
            "agreement_ok",
            "mean_steps",
            "mean_msgs",
        ],
    )
    for n in ns:
        outcomes = []
        for seed in seeds:
            rng = random.Random((seed + 1) * 7919 + n)
            pattern = random_pattern(n, rng)
            proposals = random_binary_proposals(n, rng)
            outcomes.append(run_nuc(pattern, proposals, seed=seed, max_steps=max_steps))
        table.add_row(
            "A_nuc",
            n,
            len(outcomes),
            sum(1 for o in outcomes if o.metrics.all_correct_decided),
            all(o.nonuniform.ok for o in outcomes),
            summarize(o.metrics.steps for o in outcomes).mean,
            summarize(o.metrics.messages_sent for o in outcomes).mean,
        )
        if include_stack:
            outcomes = []
            for seed in seeds:
                rng = random.Random((seed + 1) * 104729 + n)
                pattern = random_pattern(n, rng)
                proposals = random_binary_proposals(n, rng)
                outcomes.append(
                    run_stack(pattern, proposals, seed=seed, max_steps=2 * max_steps)
                )
            table.add_row(
                "stack",
                n,
                len(outcomes),
                sum(1 for o in outcomes if o.metrics.all_correct_decided),
                all(
                    o.nonuniform.ok and o.boosted_check.ok for o in outcomes
                ),
                summarize(o.metrics.steps for o in outcomes).mean,
                summarize(o.metrics.messages_sent for o in outcomes).mean,
            )
    table.add_note(
        "failure patterns sample up to n-1 crashes; 'agreement_ok' also "
        "covers validity and, for the stack, the emulated Sigma^nu+ checks"
    )
    return table


def exp2_boosting(
    ns: Sequence[int] = (2, 3, 4, 5, 6),
    seeds: Sequence[int] = tuple(range(5)),
    faulty_styles: Sequence[str] = ("selfish", "junk", "obedient"),
) -> Table:
    """EXP-2 (Thm 6.7): the booster's output satisfies all four Sigma^nu+
    properties in any environment."""
    table = Table(
        "EXP-2: T_{Sigma^nu -> Sigma^nu+} output validity",
        ["n", "faulty_style", "runs", "all_valid", "mean_outputs", "mean_steps"],
    )
    for n in ns:
        for style in faulty_styles:
            outcomes = []
            for seed in seeds:
                rng = random.Random((seed + 1) * 31 + n)
                pattern = random_pattern(n, rng, max_crash_time=50)
                outcomes.append(
                    run_boosting(pattern, seed=seed, detector=SigmaNu(style))
                )
            table.add_row(
                n,
                style,
                len(outcomes),
                all(o.check.ok for o in outcomes),
                summarize(o.metrics.outputs_emitted for o in outcomes).mean,
                summarize(o.metrics.steps for o in outcomes).mean,
            )
    return table


def exp3_extraction(
    ns: Sequence[int] = (3, 4),
    seeds: Sequence[int] = tuple(range(3)),
) -> Table:
    """EXP-3 (Thms 5.4/5.8): T_{D -> Sigma^nu} over several (D, A) pairs.

    Because every subject algorithm here solves *uniform* consensus with its
    detector, the extracted history must satisfy full Sigma as well
    (Theorem 5.8) — both verdicts are reported.
    """
    from repro.consensus.chandra_toueg import ChandraTouegS
    from repro.detectors.perfect import EventuallyPerfect

    subjects = [
        ("(Omega,Sigma) / quorum-MR", QuorumMR(), lambda: PairedDetector(Omega(), Sigma("pivot")), None),
        ("P / floodset", FloodSetPerfect(), lambda: Perfect(lag=4), None),
        ("Omega / MR (majority env)", MostefaouiRaynal(), lambda: Omega(), "majority"),
        ("<>P / Chandra-Toueg (majority env)", ChandraTouegS(), lambda: EventuallyPerfect(), "majority"),
    ]
    table = Table(
        "EXP-3: necessity extraction T_{D -> Sigma^nu}",
        ["subject", "n", "runs", "sigma_nu_ok", "sigma_ok", "mean_quorum_size"],
    )
    for label, subject, detector_factory, env in subjects:
        for n in ns:
            outcomes = []
            for seed in seeds:
                rng = random.Random((seed + 1) * 53 + n)
                max_faulty = (n - 1) // 2 if env == "majority" else n - 1
                pattern = random_pattern(n, rng, max_faulty=max_faulty, max_crash_time=40)
                outcomes.append(
                    run_extraction(subject, detector_factory(), pattern, seed=seed)
                )
            sizes: List[int] = []
            for o in outcomes:
                for p, events in o.result.outputs.items():
                    sizes.extend(len(q) for _, q in events[1:])
            table.add_row(
                label,
                n,
                len(outcomes),
                all(o.sigma_nu_check.ok for o in outcomes),
                all(o.sigma_check.ok for o in outcomes),
                summarize(sizes).mean if sizes else float("nan"),
            )
    return table


def exp4_separation(
    cases: Sequence[Tuple[int, int]] = ((2, 1), (4, 2), (5, 3), (6, 3), (3, 1), (5, 2)),
    seeds: Sequence[int] = (0, 1),
) -> Table:
    """EXP-4 (Thm 7.1): (Omega, Sigma^nu) vs (Omega, Sigma) by environment.

    For ``t < n/2`` the from-scratch algorithm implements Sigma (validated by
    the Sigma checker); for ``t >= n/2`` the partition adversary breaks any
    candidate transformation — here, the same algorithm run with threshold
    ``n - t``.
    """
    table = Table(
        "EXP-4: Theorem 7.1 separation — E_t environments",
        ["n", "t", "t<n/2", "from-scratch Sigma valid", "adversary verdict"],
    )
    for n, t in cases:
        majority = t < n / 2
        if majority:
            ok = True
            for seed in seeds:
                rng = random.Random(seed * 17 + n)
                crashed = rng.sample(range(n), t)
                pattern = FailurePattern(
                    n, {p: rng.randint(0, 30) for p in crashed}
                )
                outcome = run_from_scratch_sigma(n, t, pattern, seed=seed)
                ok = ok and outcome.check.ok
            table.add_row(n, t, True, ok, "adversary inapplicable (no partition)")
        else:
            verdicts = [
                run_partition_adversary(
                    lambda pid, n=n, t=t: FromScratchSigma(n, t), n, t, seed=seed
                )
                for seed in seeds
            ]
            broke = all(v.violated for v in verdicts)
            table.add_row(
                n,
                t,
                False,
                "n/a (not claimed)",
                "intersection VIOLATED" if broke else "survived (unexpected)",
            )
    table.add_note(
        "the adversary attacks the from-scratch algorithm run with "
        "threshold n-t; Theorem 7.1 says every transformation fails likewise"
    )
    return table


def exp5_contamination(seeds: Sequence[int] = (0, 1, 2)) -> Table:
    """EXP-5 (Section 6.3): the naive Sigma^nu quorum algorithm is
    contaminable; A_nuc is not, under the same scenario family."""
    table = Table(
        "EXP-5: Section 6.3 contamination scenario (n=3, process 2 faulty)",
        [
            "algorithm",
            "seed",
            "decisions(correct)",
            "agreement violated",
            "history valid",
            "distrust events",
        ],
    )
    for algorithm in ("naive", "anuc"):
        for seed in seeds:
            report = run_contamination_scenario(algorithm, seed=seed)
            correct_decisions = {
                p: v for p, v in report.decisions.items() if p in (0, 1)
            }
            table.add_row(
                algorithm,
                seed,
                str(correct_decisions),
                report.contaminated,
                report.omega_check.ok and report.sigma_check.ok,
                len(report.distrust_events),
            )
    table.add_note(
        "expected: naive violates nonuniform agreement in every seed; "
        "A_nuc never does and shows distrust activity instead"
    )
    return table


def exp6_merging(
    seeds: Sequence[int] = tuple(range(10)),
    n: int = 5,
) -> Table:
    """EXP-6 (Lemma 2.2): merged mergeable runs are runs, and participants'
    final states are preserved."""
    from repro.harness.merging import random_mergeable_pair_report

    table = Table(
        "EXP-6: Lemma 2.2 merging of mergeable runs",
        ["seed", "|S0|", "|S1|", "merged is run", "states preserved"],
    )
    for seed in seeds:
        report = random_mergeable_pair_report(n, seed)
        table.add_row(
            seed,
            report.len0,
            report.len1,
            report.merged_valid,
            report.states_preserved,
        )
    return table


def exp7_scaling(
    ns: Sequence[int] = (2, 3, 4, 5, 6, 7),
    seeds: Sequence[int] = (0, 1, 2),
) -> Table:
    """EXP-7 (cost profile): steps and messages to decision for A_nuc vs the
    MR baselines, and booster output cadence, as n grows."""
    from repro.harness.runner import run_consensus_algorithm

    table = Table(
        "EXP-7: scaling — mean steps / messages / rounds to decision",
        ["algo", "n", "mean_steps", "mean_msgs", "mean_rounds", "decided_rate"],
    )
    for n in ns:
        rows = {
            "MR (Omega, majority env)": [],
            "quorum-MR (Omega,Sigma)": [],
            "A_nuc (Omega,Sigma^nu+)": [],
        }
        for seed in seeds:
            rng = random.Random(seed * 13 + n)
            maj_pattern = random_pattern(n, rng, max_faulty=(n - 1) // 2)
            any_pattern = random_pattern(n, rng)
            proposals = random_binary_proposals(n, rng)
            rows["MR (Omega, majority env)"].append(
                run_consensus_algorithm(
                    MostefaouiRaynal(), Omega(), maj_pattern, proposals, seed=seed
                )
            )
            rows["quorum-MR (Omega,Sigma)"].append(
                run_consensus_algorithm(
                    QuorumMR(),
                    PairedDetector(Omega(), Sigma("pivot")),
                    any_pattern,
                    proposals,
                    seed=seed,
                )
            )
            rows["A_nuc (Omega,Sigma^nu+)"].append(
                run_nuc(any_pattern, proposals, seed=seed)
            )
        for label, outcomes in rows.items():
            rounds = [r for o in outcomes for r in _decision_rounds(o)]
            table.add_row(
                label,
                n,
                summarize(o.metrics.steps for o in outcomes).mean,
                summarize(o.metrics.messages_sent for o in outcomes).mean,
                summarize(rounds).mean if rounds else float("nan"),
                rate(
                    sum(1 for o in outcomes if o.metrics.all_correct_decided),
                    len(outcomes),
                ),
            )
    return table


def exp8_exhaustive(
    n: int = 3,
    crash_times: Sequence[int] = (0, 25),
    seeds: Sequence[int] = (0, 1),
    max_steps: int = 40000,
) -> Table:
    """EXP-8: exhaustive environment coverage at small n.

    "In any environment" means for every failure pattern; a simulator can at
    least enumerate every crash *set* for small n (combined with a grid of
    crash times) and check A_nuc on each.  With n = 3 and two candidate
    times this is every subset of up to n-1 processes crashing early or
    late — including every minority-correct pattern.
    """
    from repro.kernel.environment import Environment

    env = Environment.any_failures(n)
    table = Table(
        f"EXP-8: exhaustive crash-set sweep for A_nuc (n={n}, "
        f"times={list(crash_times)})",
        ["crash_set", "patterns", "runs", "decided", "agreement_ok"],
    )
    for crash_set in env.enumerate_crash_sets():
        patterns: List[FailurePattern] = []
        members = sorted(crash_set)
        if not members:
            patterns.append(FailurePattern.no_failures(n))
        else:
            import itertools as _it

            for times in _it.product(crash_times, repeat=len(members)):
                patterns.append(FailurePattern(n, dict(zip(members, times))))
        outcomes = []
        for pattern in patterns:
            for seed in seeds:
                rng = random.Random(f"exp8/{sorted(crash_set)}/{seed}")
                proposals = random_binary_proposals(n, rng)
                outcomes.append(
                    run_nuc(pattern, proposals, seed=seed, max_steps=max_steps)
                )
        table.add_row(
            "{" + ",".join(str(p) for p in members) + "}" if members else "{}",
            len(patterns),
            len(outcomes),
            sum(1 for o in outcomes if o.metrics.all_correct_decided),
            all(o.nonuniform.ok for o in outcomes),
        )
    return table


def _decision_rounds(outcome) -> List[int]:
    """Rounds in which correct processes decided, when the run recorded them.

    A_nuc runs expose per-process traces; the MR-family automata expose the
    decision round through the schedule-visible LEAD tags — we estimate it
    from each decider's message log is unnecessary: the automaton state is
    not retained by the runner, so we fall back to counting LEAD rounds the
    decider opened, reconstructed from its sent messages.
    """
    rounds: List[int] = []
    result = outcome.result
    for p, decided_at in result.decision_times.items():
        if p not in result.pattern.correct:
            continue
        opened = 0
        for record in result.steps:
            if record.pid != p or record.time > decided_at:
                continue
            for message in record.sends:
                payload = message.payload
                if (
                    isinstance(payload, tuple)
                    and len(payload) >= 2
                    and payload[0] == "LEAD"
                    and isinstance(payload[1], int)
                ):
                    opened = max(opened, payload[1])
        if opened:
            rounds.append(opened)
    return rounds


def exp9_registers(
    seeds: Sequence[int] = (0, 1, 2),
) -> Table:
    """EXP-9 (paper intro / [3]'s technique): registers need Sigma.

    Under Sigma the ABD quorum-register emulation stays atomic across
    random workloads and crashes; under Sigma^nu the lost-write scenario
    produces a checked atomicity violation on a certified-legal history —
    the executable reason the uniform proof route cannot carry the
    nonuniform result.
    """
    import random as _random

    from repro.detectors import Sigma as _Sigma
    from repro.registers import RegisterHarness, check_register_safety
    from repro.registers.counterexample import (
        run_lost_write_scenario,
        run_sigma_control_arm,
    )

    table = Table(
        "EXP-9: quorum registers — Sigma atomic, Sigma^nu contaminable",
        ["arm", "seed", "operations", "atomic", "note"],
    )
    for seed in seeds:
        rng = _random.Random(f"exp9/{seed}")
        n = 4
        pattern = FailurePattern(n, {3: rng.randint(20, 50)})
        scripts = {
            0: [("write", f"a{seed}"), ("read",)],
            1: [("read",), ("write", f"b{seed}")],
            2: [("read",), ("read",)],
            3: [("write", f"c{seed}")],
        }
        history = _Sigma("pivot").sample_history(pattern, rng)
        harness = RegisterHarness(
            pattern=pattern, history=history, scripts=scripts, seed=seed
        )
        _, records, procs = harness.run()
        report = check_register_safety(
            records, RegisterHarness.incomplete_writes(procs)
        )
        table.add_row("Sigma / ABD", seed, len(records), report.ok, "random workload")
    for seed in seeds:
        report = run_lost_write_scenario(seed=seed)
        table.add_row(
            "Sigma^nu / lost write",
            seed,
            2,
            report.safety.ok,
            "history legal Sigma^nu"
            if report.sigma_nu_check.ok
            else "HISTORY INVALID?",
        )
    table.add_row(
        "Sigma control arm",
        0,
        0,
        True,
        "isolated write blocks"
        if run_sigma_control_arm()
        else "UNEXPECTED: write completed",
    )
    return table
