"""Batch lane planning for harness sweeps.

:func:`repro.harness.parallel.run_sweep` gains a ``batch=`` mode through
this module: sweep tasks whose work is a single ``System.run()`` are
translated into :class:`~repro.kernel.batch.LaneSpec` lanes, executed
together in one :class:`~repro.kernel.batch.BatchSystem`, and their
results rebuilt by a pure post-processing function — byte-identical to
running each task on its own, because the batch engine is bit-identical
to the interpreted one and everything downstream of the ``RunResult``
(outcome judging, property checks, metric collection) is a pure function
of it.

Planners are registered per task *function*: a planner inspects a task's
kwargs and either returns a :class:`BatchPlan` (lane + post-processor) or
``None`` (the task runs through the normal sweep path).  Out of the box,
:func:`repro.harness.runner.run_consensus_algorithm` tasks with default
scheduler/delivery are batchable; experiment modules register planners
for their own task functions (see ``repro.harness.experiments``).

Batching is disabled while observability is enabled: fast lanes skip the
``runner.*``/``kernel.*`` spans and counters the interpreted path
records, so ``run_sweep`` only routes here with obs off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import collect_metrics
from repro.consensus.interface import consensus_outcome
from repro.consensus.properties import (
    check_nonuniform_consensus,
    check_uniform_consensus,
)
from repro.detectors.base import sample_history_cached
from repro.harness.runner import ConsensusRunOutcome, run_consensus_algorithm
from repro.kernel.batch import BatchSystem, LaneSpec
from repro.kernel.system import RunResult

__all__ = [
    "BatchPlan",
    "execute_batched",
    "plan_task",
    "register_batch_planner",
]


@dataclass
class BatchPlan:
    """One sweep task translated for the batch engine."""

    spec: LaneSpec
    post: Callable[[RunResult], Any]


#: task function -> planner(kwargs) -> Optional[BatchPlan]
_PLANNERS: Dict[Any, Callable[[Dict[str, Any]], Optional[BatchPlan]]] = {}


def register_batch_planner(task_fn: Callable[..., Any]):
    """Register a batch planner for ``task_fn`` sweep tasks (decorator)."""

    def deco(planner: Callable[[Dict[str, Any]], Optional[BatchPlan]]):
        _PLANNERS[task_fn] = planner
        return planner

    return deco


def plan_task(task: Any) -> Optional[BatchPlan]:
    """A :class:`BatchPlan` for ``task`` if a planner claims it, else None."""
    planner = _PLANNERS.get(task.fn)
    if planner is None:
        return None
    return planner(dict(task.kwargs))


def judge_consensus(result: RunResult, proposals) -> ConsensusRunOutcome:
    """Rebuild a runner outcome from a finished run.

    This is the pure tail of ``runner._finish_consensus``: everything after
    ``system.run()`` depends only on the ``RunResult`` and the proposals,
    so a bit-identical result yields a byte-identical outcome.
    """
    outcome = consensus_outcome(result, proposals)
    return ConsensusRunOutcome(
        result=result,
        outcome=outcome,
        nonuniform=check_nonuniform_consensus(outcome),
        uniform=check_uniform_consensus(outcome),
        metrics=collect_metrics(result),
    )


@register_batch_planner(run_consensus_algorithm)
def _plan_run_consensus_algorithm(kwargs: Dict[str, Any]) -> Optional[BatchPlan]:
    if kwargs.get("scheduler") is not None or kwargs.get("delivery") is not None:
        # Policy instances cannot be turned into lane specs (they carry
        # mutable cursors); such tasks keep the interpreted path.
        return None
    pattern = kwargs["pattern"]
    proposals = kwargs["proposals"]
    seed = kwargs.get("seed", 0)
    history = sample_history_cached(kwargs["detector"], pattern, seed)
    spec = LaneSpec(
        pattern=pattern,
        history=history,
        seed=seed,
        max_steps=kwargs.get("max_steps", 20000),
        automaton=kwargs["automaton"],
        proposals=proposals,
        trace=kwargs.get("trace", "full"),
        stop="all-correct-decided",
    )
    return BatchPlan(spec=spec, post=lambda result: judge_consensus(result, proposals))


def execute_batched(
    tasks: Sequence[Any],
    use_numpy: Optional[bool] = None,
) -> Tuple[List[Any], List[int]]:
    """Run every plannable task in ``tasks`` through one batch engine.

    Returns ``(results, unplanned)``: ``results`` holds finished values at
    the plannable tasks' positions (``None`` elsewhere) and ``unplanned``
    lists the indices the caller must still execute normally.
    """
    plans = [plan_task(task) for task in tasks]
    results: List[Any] = [None] * len(plans)
    unplanned = [i for i, plan in enumerate(plans) if plan is None]
    planned = [i for i, plan in enumerate(plans) if plan is not None]
    if planned:
        engine = BatchSystem([plans[i].spec for i in planned], use_numpy=use_numpy)
        for i, run_result in zip(planned, engine.run()):
            results[i] = plans[i].post(run_result)
    return results, unplanned
