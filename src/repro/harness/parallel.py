"""Deterministic parallel sweep driver.

Every theorem-level experiment is a loop over independent, seeded runs; this
module fans such loops out over worker processes without changing a single
result.  The contract:

* a :class:`SweepTask` is a **pure** top-level callable plus keyword
  arguments, both picklable; every source of randomness the task uses must
  be derived from its own arguments (a seed), never from global state;
* :func:`run_sweep` returns results **in task order**, regardless of which
  worker finished first, so serial (``jobs=1``) and parallel (``jobs>1``)
  sweeps are bit-identical;
* ``jobs=1`` executes inline in the calling process — no pool, no pickling —
  which keeps single-job sweeps exactly as cheap as the old serial loops.

Workers are forked where the platform allows it (the parent's imported
modules and ``sys.path`` carry over); platforms without ``fork`` fall back
to the default start method, which requires ``repro`` to be importable in
fresh interpreters.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro import obs as _obs


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: ``fn(**kwargs)``.

    ``fn`` must be a module-level callable (bound methods, lambdas and
    closures do not pickle); ``kwargs`` must be picklable and must carry the
    task's seed so the task is a pure function of its arguments.
    """

    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(**self.kwargs)


def _execute(task: SweepTask) -> Any:
    return task.run()


def _execute_metered(task: SweepTask) -> Tuple[Any, Dict[str, Any]]:
    """Run a task and return its result plus the metrics it recorded.

    Runs in a worker that inherited an *enabled* obs state by fork; the
    per-task registry delta travels back with the result so the parent can
    merge it.  Counter sums and gauge maxes commute, so merging the deltas
    in task order reproduces exactly the registry an inline (``jobs=1``)
    sweep would have built.
    """
    before = _obs.metrics().snapshot()  # repro: noqa RPR301 -- only dispatched from the _ENABLED branch of run_sweep
    result = task.run()
    return result, _obs.metrics().delta_since(before)  # repro: noqa RPR301 -- same: worker inherited enabled obs by fork


def default_jobs() -> int:
    """Worker count honouring CPU affinity where the platform exposes it."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context()


def run_sweep(
    tasks: Iterable[SweepTask],
    jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
    batch: bool = False,
    store: Optional[Any] = None,
) -> List[Any]:
    """Execute ``tasks`` with ``jobs`` workers; results in task order.

    ``jobs=None`` uses :func:`default_jobs`; ``jobs<=1`` (or a single task)
    runs inline.  ``chunksize`` tunes how many tasks each worker claims at a
    time (default: enough chunks for ~4 rounds per worker, which amortizes
    task pickling without starving stragglers).

    ``batch=True`` packs tasks with a registered batch planner (see
    :mod:`repro.harness.batch`) into one in-process
    :class:`~repro.kernel.batch.BatchSystem` and runs only the remainder
    through the normal path — results stay in task order and are
    byte-identical to an unbatched sweep.  Batching is skipped while
    observability is enabled (fast lanes don't replay the interpreted
    engine's telemetry).

    ``store`` (a :class:`repro.store.ResultStore`) makes the sweep
    incremental: each task is addressed by ``(config_digest,
    code_signature)``; rows already in the store are served from disk and
    only the remainder executes — through exactly the same jobs/batch path,
    so a warm sweep is byte-identical to a cold one.  All store lookups and
    writes happen in *this* process (workers never touch the store), which
    keeps the ``store.hit`` / ``store.miss`` / ``store.invalidated``
    counters identical for every ``jobs`` value and makes concurrent
    ``--jobs N`` sweeps merge-safe.
    """
    task_list = list(tasks)
    if jobs is None:
        jobs = default_jobs()
    if store is not None and task_list:
        # Before the sweep.tasks inc: rows served from the store are not
        # dispatched, and the recursive miss dispatch counts its own.
        return _run_sweep_stored(task_list, jobs, chunksize, batch, store)
    if _obs._ENABLED:
        _obs.metrics().inc("sweep.tasks", len(task_list))
    if batch and not _obs._ENABLED and task_list:
        from repro.harness.batch import execute_batched

        results, unplanned = execute_batched(task_list)
        if len(unplanned) < len(task_list):
            if unplanned:
                rest = run_sweep(
                    [task_list[i] for i in unplanned],
                    jobs=jobs,
                    chunksize=chunksize,
                )
                for i, value in zip(unplanned, rest):
                    results[i] = value
            return results
        # No task was plannable: fall through to the normal path.
    if jobs <= 1 or len(task_list) <= 1:
        return [task.run() for task in task_list]
    jobs = min(jobs, len(task_list))
    if chunksize is None:
        chunksize = max(1, len(task_list) // (jobs * 4))
    if _obs._ENABLED:
        # Workers inherit the enabled obs state by fork and report their
        # registry deltas alongside each result; merging them in task order
        # makes jobs=1 and jobs=N sweeps report identical metrics.  (Worker
        # span records stay in the workers: traces keep parent-side spans
        # only, while counters/gauges account for all sweep work.)
        with _pool_context().Pool(processes=jobs) as pool:
            pairs = pool.map(_execute_metered, task_list, chunksize=chunksize)
        registry = _obs.metrics()
        for _, delta in pairs:
            registry.merge(delta)
        return [result for result, _ in pairs]
    with _pool_context().Pool(processes=jobs) as pool:
        return pool.map(_execute, task_list, chunksize=chunksize)


def _run_sweep_stored(
    task_list: List[SweepTask],
    jobs: Optional[int],
    chunksize: Optional[int],
    batch: bool,
    store: Any,
) -> List[Any]:
    """The store-backed path of :func:`run_sweep`.

    Lookups, accounting and writes run in the parent; misses (plus
    invalidated and unstorable rows) are re-dispatched through the plain
    ``run_sweep`` path with the same jobs/batch settings.
    """
    keys = [store.key_for(task.fn, task.kwargs) for task in task_list]
    results: List[Any] = [None] * len(task_list)
    pending: List[int] = []
    hits = misses = invalidated = skipped = 0
    for i, (task, key) in enumerate(zip(task_list, keys)):
        if key is None:
            skipped += 1
            store.stats.skipped += 1
            pending.append(i)
            continue
        status, value = store.load(key)
        if status == "hit":
            hits += 1
            results[i] = value
        else:
            if status == "invalidated":
                invalidated += 1
            else:
                misses += 1
            pending.append(i)
    if _obs._ENABLED:
        registry = _obs.metrics()
        registry.inc("store.hit", hits)
        registry.inc("store.miss", misses)
        registry.inc("store.invalidated", invalidated)
        registry.inc("store.skipped", skipped)
    if pending:
        fresh = run_sweep(
            [task_list[i] for i in pending],
            jobs=jobs,
            chunksize=chunksize,
            batch=batch,
        )
        writes = 0
        for i, value in zip(pending, fresh):
            results[i] = value
            if keys[i] is not None and store.store(keys[i], value):
                writes += 1
        if _obs._ENABLED:
            _obs.metrics().inc("store.write", writes)
    return results
