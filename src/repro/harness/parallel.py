"""Deterministic parallel sweep driver.

Every theorem-level experiment is a loop over independent, seeded runs; this
module fans such loops out over worker processes without changing a single
result.  The contract:

* a :class:`SweepTask` is a **pure** top-level callable plus keyword
  arguments, both picklable; every source of randomness the task uses must
  be derived from its own arguments (a seed), never from global state;
* :func:`run_sweep` returns results **in task order**, regardless of which
  worker finished first, so serial (``jobs=1``) and parallel (``jobs>1``)
  sweeps are bit-identical;
* ``jobs=1`` executes inline in the calling process — no pool, no pickling —
  which keeps single-job sweeps exactly as cheap as the old serial loops.

Workers are forked where the platform allows it (the parent's imported
modules and ``sys.path`` carry over); platforms without ``fork`` fall back
to the default start method, which requires ``repro`` to be importable in
fresh interpreters.
"""

from __future__ import annotations

import multiprocessing
import os
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro import obs as _obs


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: ``fn(**kwargs)``.

    ``fn`` must be a module-level callable (bound methods, lambdas and
    closures do not pickle); ``kwargs`` must be picklable and must carry the
    task's seed so the task is a pure function of its arguments.
    """

    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(**self.kwargs)


def _execute(task: SweepTask) -> Any:
    return task.run()


def _execute_metered(task: SweepTask) -> Tuple[Any, Dict[str, Any]]:
    """Run a task and return its result plus the metrics it recorded.

    Runs in a worker that inherited an *enabled* obs state by fork; the
    per-task registry delta travels back with the result so the parent can
    merge it.  Counter sums and gauge maxes commute, so merging the deltas
    in task order reproduces exactly the registry an inline (``jobs=1``)
    sweep would have built.
    """
    before = _obs.metrics().snapshot()  # repro: noqa RPR301 -- only dispatched from the _ENABLED branch of run_sweep
    result = task.run()
    return result, _obs.metrics().delta_since(before)  # repro: noqa RPR301 -- same: worker inherited enabled obs by fork


def default_jobs() -> int:
    """Worker count honouring CPU affinity where the platform exposes it."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platforms without fork
        return multiprocessing.get_context()


def run_sweep(
    tasks: Iterable[SweepTask],
    jobs: Optional[int] = 1,
    chunksize: Optional[int] = None,
    batch: bool = False,
    store: Optional[Any] = None,
) -> List[Any]:
    """Execute ``tasks`` with ``jobs`` workers; results in task order.

    ``jobs=None`` uses :func:`default_jobs`; ``jobs<=1`` (or a single task)
    runs inline.  ``chunksize`` tunes how many tasks each worker claims at a
    time (default: enough chunks for ~4 rounds per worker, which amortizes
    task pickling without starving stragglers).

    ``batch=True`` packs tasks with a registered batch planner (see
    :mod:`repro.harness.batch`) into one in-process
    :class:`~repro.kernel.batch.BatchSystem` and runs only the remainder
    through the normal path — results stay in task order and are
    byte-identical to an unbatched sweep.  Batching is skipped while
    observability is enabled (fast lanes don't replay the interpreted
    engine's telemetry).

    ``store`` (a :class:`repro.store.ResultStore`) makes the sweep
    incremental: each task is addressed by ``(config_digest,
    code_signature)``; rows already in the store are served from disk and
    only the remainder executes — through exactly the same jobs/batch path,
    so a warm sweep is byte-identical to a cold one.  All store lookups and
    writes happen in *this* process (workers never touch the store), which
    keeps the ``store.hit`` / ``store.miss`` / ``store.invalidated``
    counters identical for every ``jobs`` value and makes concurrent
    ``--jobs N`` sweeps merge-safe.
    """
    task_list = list(tasks)
    if jobs is None:
        jobs = default_jobs()
    if store is not None and task_list:
        # Before the sweep.tasks inc: rows served from the store are not
        # dispatched, and the recursive miss dispatch counts its own.
        return _run_sweep_stored(task_list, jobs, chunksize, batch, store)
    if _obs._ENABLED:
        _obs.metrics().inc("sweep.tasks", len(task_list))
    if batch and not _obs._ENABLED and task_list:
        from repro.harness.batch import execute_batched

        results, unplanned = execute_batched(task_list)
        if len(unplanned) < len(task_list):
            if unplanned:
                rest = run_sweep(
                    [task_list[i] for i in unplanned],
                    jobs=jobs,
                    chunksize=chunksize,
                )
                for i, value in zip(unplanned, rest):
                    results[i] = value
            return results
        # No task was plannable: fall through to the normal path.
    if jobs <= 1 or len(task_list) <= 1:
        return [task.run() for task in task_list]
    jobs = min(jobs, len(task_list))
    if chunksize is None:
        chunksize = max(1, len(task_list) // (jobs * 4))
    if _obs._ENABLED:
        # Workers inherit the enabled obs state by fork and report their
        # registry deltas alongside each result; merging them in task order
        # makes jobs=1 and jobs=N sweeps report identical metrics.  (Worker
        # span records stay in the workers: traces keep parent-side spans
        # only, while counters/gauges account for all sweep work.)
        with _pool_context().Pool(processes=jobs) as pool:
            pairs = pool.map(_execute_metered, task_list, chunksize=chunksize)
        registry = _obs.metrics()
        for _, delta in pairs:
            registry.merge(delta)
        return [result for result, _ in pairs]
    with _pool_context().Pool(processes=jobs) as pool:
        return pool.map(_execute, task_list, chunksize=chunksize)


def _run_sweep_stored(
    task_list: List[SweepTask],
    jobs: Optional[int],
    chunksize: Optional[int],
    batch: bool,
    store: Any,
) -> List[Any]:
    """The store-backed path of :func:`run_sweep`.

    Lookups, accounting and writes run in the parent; misses (plus
    invalidated and unstorable rows) are re-dispatched through the plain
    ``run_sweep`` path with the same jobs/batch settings.

    Under observability the stages that make a warm sweep warm become
    visible: a ``store.lookup`` span with one ``store.row`` event per row
    (tick = row index, attrs carry status / fn / digest prefix), a
    ``store.execute`` span around the re-dispatch of pending rows, and
    ``store.put`` events for write-backs.  Freshly executed rows are
    additionally metered per task so their counter deltas (and, for
    inline execution, their span-path aggregates) travel into the stored
    record as row telemetry — the raw material of ``repro store diff
    --counters``.
    """
    tracer = _obs.tracer() if _obs._ENABLED else None
    keys: List[Optional[Any]] = []
    results: List[Any] = [None] * len(task_list)
    pending: List[int] = []
    hits = misses = invalidated = skipped = 0
    with (
        tracer.span("store.lookup", rows=len(task_list))
        if tracer is not None
        else nullcontext()
    ):
        for i, task in enumerate(task_list):
            key = store.key_for(task.fn, task.kwargs)
            keys.append(key)
            if key is None:
                status = "unstorable"
                skipped += 1
                store.stats.skipped += 1
                pending.append(i)
            else:
                status, value = store.load(key)
                if status == "hit":
                    hits += 1
                    results[i] = value
                else:
                    if status == "invalidated":
                        invalidated += 1
                    else:
                        misses += 1
                    pending.append(i)
            if tracer is not None:
                tracer.event(
                    "store.row",
                    tick=i,
                    status=status,
                    fn=getattr(task.fn, "__name__", str(task.fn)),
                    digest=key.digest[:12] if key is not None else None,
                )
    if _obs._ENABLED:
        registry = _obs.metrics()
        registry.inc("store.hit", hits)
        registry.inc("store.miss", misses)
        registry.inc("store.invalidated", invalidated)
        registry.inc("store.skipped", skipped)
    if pending:
        fresh, telemetries = _execute_pending(
            [task_list[i] for i in pending], jobs, chunksize, batch, tracer
        )
        writes = 0
        for j, (i, value) in enumerate(zip(pending, fresh)):
            results[i] = value
            telemetry = telemetries[j] if telemetries is not None else None
            if keys[i] is not None and store.store(
                keys[i], value, telemetry=telemetry
            ):
                writes += 1
                if tracer is not None:
                    tracer.event(
                        "store.put", tick=i, digest=keys[i].digest[:12]
                    )
        if _obs._ENABLED:
            _obs.metrics().inc("store.write", writes)
    return results


def _execute_pending(
    tasks: List[SweepTask],
    jobs: Optional[int],
    chunksize: Optional[int],
    batch: bool,
    tracer: Optional[Any],
) -> Tuple[List[Any], Optional[List[Optional[Dict[str, Any]]]]]:
    """Execute the store's pending rows; per-row telemetry when traced.

    Untraced, this is exactly the recursive ``run_sweep`` call the store
    path has always made.  Traced, it replays ``run_sweep``'s enabled
    branch inline — same ``sweep.tasks`` accounting, same inline-vs-pool
    split, same delta merge order — while keeping each task's registry
    delta (jobs=1 adds the task's span-path aggregates) so the caller can
    store them per row.  Batching is skipped while tracing is on, exactly
    as ``run_sweep`` itself skips it.
    """
    if tracer is None:
        return (
            run_sweep(tasks, jobs=jobs, chunksize=chunksize, batch=batch),
            None,
        )
    if _obs._ENABLED:  # always true here; keeps the guard contract literal
        registry = _obs.metrics()
        registry.inc("sweep.tasks", len(tasks))
    telemetries: List[Optional[Dict[str, Any]]] = []
    with tracer.span("store.execute", rows=len(tasks)):
        if jobs is None:
            jobs = default_jobs()
        if jobs <= 1 or len(tasks) <= 1:
            results = []
            for task in tasks:
                before = registry.snapshot()
                record_mark = len(tracer.records)
                results.append(task.run())
                telemetries.append(
                    _row_telemetry(
                        registry.delta_since(before),
                        tracer.records[record_mark:],
                    )
                )
            return results, telemetries
        jobs = min(jobs, len(tasks))
        if chunksize is None:
            chunksize = max(1, len(tasks) // (jobs * 4))
        with _pool_context().Pool(processes=jobs) as pool:
            pairs = pool.map(_execute_metered, tasks, chunksize=chunksize)
        for _, delta in pairs:
            registry.merge(delta)
            # Worker span records stay in the workers (parent traces keep
            # parent-side spans only), so pooled rows carry counters alone.
            telemetries.append(_row_telemetry(delta, []))
        return [result for result, _ in pairs], telemetries


def _row_telemetry(
    delta: Dict[str, Any], records: List[Dict[str, Any]]
) -> Optional[Dict[str, Any]]:
    """The telemetry dict stored with one sweep row, or ``None`` if empty.

    Counters come from the task's registry delta; span-path aggregates
    from the records the task emitted (inline execution only).  Both are
    deterministic — ``wall_ms`` is dropped from the path aggregates so
    racing writers still produce byte-identical records.
    """
    telemetry: Dict[str, Any] = {}
    counters = delta.get("counters") or {}
    if counters:
        telemetry["counters"] = dict(sorted(counters.items()))
    if records:
        from repro.obs.analyze import aggregate_paths

        paths = {
            path: {k: v for k, v in agg.items() if k != "wall_ms"}
            for path, agg in aggregate_paths(records).items()
        }
        if paths:
            telemetry["paths"] = paths
    return telemetry or None
