"""One-shot experiment runners.

Each function wires a complete live run — processes, detector history,
scheduler, delivery, failure pattern — executes it, and returns a structured
outcome with the run result, property-check verdicts and cost metrics.  The
experiment sweeps in :mod:`repro.harness.experiments`, the examples and the
benchmarks are all thin loops over these runners.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence

from repro.analysis.metrics import (
    RunMetrics,
    collect_metrics,
    collect_search_counters,
)
from repro.consensus.interface import ConsensusOutcome, consensus_outcome
from repro.consensus.properties import (
    PropertyReport,
    check_nonuniform_consensus,
    check_uniform_consensus,
)
from repro.core.boosting import SigmaNuPlusBooster
from repro.core.extraction import ExtractionSearch, SigmaNuExtractor
from repro.core.nuc import AnucProcess
from repro.core.stack import StackedNucProcess
from repro.detectors.base import (
    FailureDetector,
    History,
    RecordedHistory,
    sample_history_cached,
)
from repro.detectors.checkers import (
    CheckResult,
    check_sigma,
    check_sigma_nu,
    check_sigma_nu_plus,
)
from repro.detectors.emulated import recorded_output_history
from repro.detectors.omega import Omega
from repro.detectors.paired import PairedDetector
from repro.detectors.sigma import Sigma
from repro.detectors.sigma_nu import SigmaNu
from repro.detectors.sigma_nu_plus import SigmaNuPlus
from repro.kernel.automaton import Automaton, AutomatonProcess, Process
from repro.kernel.failures import FailurePattern
from repro.kernel.messages import CoalescingDelivery, DeliveryPolicy
from repro.kernel.scheduler import SchedulingPolicy
from repro.kernel.system import RunResult, System
from repro import obs as _obs


def _observed(kind: str, n: int, seed: int, thunk: Callable[[], Any]) -> Any:
    """Run a runner body under a ``runner.<kind>`` span when tracing is on."""
    if not _obs._ENABLED:
        return thunk()
    reg = _obs.metrics()
    reg.inc("runner.runs")
    reg.inc(f"runner.{kind}")
    with _obs.tracer().span(f"runner.{kind}", n=n, seed=seed):
        return thunk()


def random_pattern(
    n: int,
    rng: random.Random,
    max_faulty: Optional[int] = None,
    max_crash_time: int = 60,
) -> FailurePattern:
    """A random pattern with at most ``max_faulty`` crashes (default n-1)."""
    bound = n - 1 if max_faulty is None else max_faulty
    crashed = rng.sample(range(n), rng.randint(0, bound))
    return FailurePattern(n, {p: rng.randint(0, max_crash_time) for p in crashed})


def random_binary_proposals(n: int, rng: random.Random) -> Dict[int, int]:
    proposals = {p: rng.choice([0, 1]) for p in range(n)}
    return proposals


# ----------------------------------------------------------------------
# Consensus runners
# ----------------------------------------------------------------------


@dataclass
class ConsensusRunOutcome:
    """A consensus run plus its verdicts and costs."""

    result: RunResult
    outcome: ConsensusOutcome
    nonuniform: PropertyReport
    uniform: PropertyReport
    metrics: RunMetrics

    @property
    def ok(self) -> bool:
        return bool(self.nonuniform) and self.result.stop_reason == "stop_condition"


def _finish_consensus(
    system: System,
    proposals: Mapping[int, Any],
    max_steps: int,
) -> ConsensusRunOutcome:
    result = system.run(
        max_steps=max_steps, stop_when=lambda s: s.all_correct_decided()
    )
    outcome = consensus_outcome(result, proposals)
    return ConsensusRunOutcome(
        result=result,
        outcome=outcome,
        nonuniform=check_nonuniform_consensus(outcome),
        uniform=check_uniform_consensus(outcome),
        metrics=collect_metrics(result),
    )


def run_consensus_algorithm(
    automaton: Automaton,
    detector: FailureDetector,
    pattern: FailurePattern,
    proposals: Mapping[int, Any],
    seed: int = 0,
    max_steps: int = 20000,
    scheduler: Optional[SchedulingPolicy] = None,
    delivery: Optional[DeliveryPolicy] = None,
    trace: str = "full",
) -> ConsensusRunOutcome:
    """Run a pure-automaton consensus algorithm live."""

    def go() -> ConsensusRunOutcome:
        history = sample_history_cached(detector, pattern, seed)
        processes = {
            p: AutomatonProcess(automaton, proposals[p]) for p in range(pattern.n)
        }
        system = System(
            processes,
            pattern,
            history,
            seed=seed,
            scheduler=scheduler,
            delivery=delivery,
            trace=trace,
        )
        return _finish_consensus(system, proposals, max_steps)

    return _observed("consensus", pattern.n, seed, go)


def run_nuc(
    pattern: FailurePattern,
    proposals: Mapping[int, Any],
    seed: int = 0,
    max_steps: int = 30000,
    detector: Optional[FailureDetector] = None,
    trace: str = "full",
) -> ConsensusRunOutcome:
    """Run A_nuc with a synthetic (Omega, Sigma^nu+) history (Thm 6.27)."""

    def go() -> ConsensusRunOutcome:
        d = PairedDetector(Omega(), SigmaNuPlus()) if detector is None else detector
        history = sample_history_cached(d, pattern, seed)
        processes = {p: AnucProcess(proposals[p]) for p in range(pattern.n)}
        system = System(processes, pattern, history, seed=seed, trace=trace)
        return _finish_consensus(system, proposals, max_steps)

    return _observed("nuc", pattern.n, seed, go)


@dataclass
class StackRunOutcome(ConsensusRunOutcome):
    """The full-stack run also validates the emulated Sigma^nu+ history."""

    boosted_check: CheckResult = None  # type: ignore[assignment]


def run_stack(
    pattern: FailurePattern,
    proposals: Mapping[int, Any],
    seed: int = 0,
    max_steps: int = 60000,
    detector: Optional[FailureDetector] = None,
    trace: str = "full",
) -> StackRunOutcome:
    """Run the composed (Omega, Sigma^nu) solver (Thm 6.28)."""

    def go() -> StackRunOutcome:
        d = PairedDetector(Omega(), SigmaNu()) if detector is None else detector
        history = sample_history_cached(d, pattern, seed)
        processes = {
            p: StackedNucProcess(proposals[p], pattern.n) for p in range(pattern.n)
        }
        system = System(
            processes,
            pattern,
            history,
            seed=seed,
            delivery=CoalescingDelivery(),
            trace=trace,
        )
        base = _finish_consensus(system, proposals, max_steps)
        recorded = recorded_output_history(base.result)
        boosted = check_sigma_nu_plus(recorded, pattern, horizon=recorded.horizon)
        return StackRunOutcome(
            result=base.result,
            outcome=base.outcome,
            nonuniform=base.nonuniform,
            uniform=base.uniform,
            metrics=base.metrics,
            boosted_check=boosted,
        )

    return _observed("stack", pattern.n, seed, go)


# ----------------------------------------------------------------------
# Transformation runners
# ----------------------------------------------------------------------


@dataclass
class BoostRunOutcome:
    """A booster run plus the Sigma^nu+ verdict on its emitted history."""

    result: RunResult
    recorded: RecordedHistory
    check: CheckResult
    metrics: RunMetrics
    #: Merged closed-path memo counters of the booster processes.
    search_counters: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return bool(self.check) and self.result.stop_reason == "stop_condition"


def run_boosting(
    pattern: FailurePattern,
    seed: int = 0,
    max_steps: int = 8000,
    min_outputs: int = 8,
    extra_steps: int = 200,
    detector: Optional[FailureDetector] = None,
    trace: str = "full",
) -> BoostRunOutcome:
    """Run T_{Sigma^nu -> Sigma^nu+} over a synthetic Sigma^nu history."""

    def go() -> BoostRunOutcome:
        d = SigmaNu() if detector is None else detector
        history = sample_history_cached(d, pattern, seed)
        processes = {p: SigmaNuPlusBooster(pattern.n) for p in range(pattern.n)}
        system = System(
            processes,
            pattern,
            history,
            seed=seed,
            delivery=CoalescingDelivery(),
            trace=trace,
        )
        result = system.run(
            max_steps=max_steps,
            stop_when=lambda s: s.correct_output_count(min_outputs),
            extra_steps=extra_steps,
        )
        recorded = recorded_output_history(result)
        check = check_sigma_nu_plus(recorded, pattern, horizon=recorded.horizon)
        return BoostRunOutcome(
            result=result,
            recorded=recorded,
            check=check,
            metrics=collect_metrics(result),
            search_counters=collect_search_counters(processes.values()),
        )

    return _observed("boosting", pattern.n, seed, go)


@dataclass
class ExtractionRunOutcome:
    """An extraction run plus Sigma^nu (and Sigma) verdicts."""

    result: RunResult
    recorded: RecordedHistory
    sigma_nu_check: CheckResult
    sigma_check: CheckResult
    metrics: RunMetrics
    #: Merged trie/search work counters of the extractor processes
    #: (``None`` on the from-scratch search path).
    search_counters: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return bool(self.sigma_nu_check) and self.result.stop_reason == "stop_condition"


def run_extraction(
    subject: Automaton,
    detector: FailureDetector,
    pattern: FailurePattern,
    seed: int = 0,
    max_steps: int = 4000,
    min_outputs: int = 3,
    extra_steps: int = 150,
    search: Optional[ExtractionSearch] = None,
    trace: str = "full",
) -> ExtractionRunOutcome:
    """Run T_{D -> Sigma^nu} with subject algorithm ``subject`` over ``D``.

    The emitted history is checked against Sigma^nu (Thm 5.4) *and* against
    full Sigma (Thm 5.8 — expected to pass when the subject solves uniform
    consensus with ``D``).
    """

    def go() -> ExtractionRunOutcome:
        history = sample_history_cached(detector, pattern, seed)
        processes = {
            p: SigmaNuExtractor(subject, pattern.n, search=search)
            for p in range(pattern.n)
        }
        system = System(
            processes,
            pattern,
            history,
            seed=seed,
            delivery=CoalescingDelivery(),
            trace=trace,
        )
        result = system.run(
            max_steps=max_steps,
            stop_when=lambda s: s.correct_output_count(min_outputs),
            extra_steps=extra_steps,
        )
        recorded = recorded_output_history(result)
        return ExtractionRunOutcome(
            result=result,
            recorded=recorded,
            sigma_nu_check=check_sigma_nu(recorded, pattern, horizon=recorded.horizon),
            sigma_check=check_sigma(recorded, pattern, horizon=recorded.horizon),
            metrics=collect_metrics(result),
            search_counters=collect_search_counters(processes.values()),
        )

    return _observed("extraction", pattern.n, seed, go)


def run_from_scratch_sigma(
    n: int,
    t: int,
    pattern: FailurePattern,
    seed: int = 0,
    max_steps: int = 6000,
    min_outputs: int = 6,
    extra_steps: int = 200,
    trace: str = "full",
) -> BoostRunOutcome:
    """Run the detector-free Sigma implementation (Thm 7.1, IF direction).

    Returns a :class:`BoostRunOutcome` whose check is against **Sigma**.
    """
    from repro.separation.from_scratch_sigma import FromScratchSigma

    def go() -> BoostRunOutcome:
        processes = {p: FromScratchSigma(n, t) for p in range(n)}
        system = System(
            processes,
            pattern,
            history=lambda p, t_: None,  # no failure detector at all
            seed=seed,
            trace=trace,
        )
        result = system.run(
            max_steps=max_steps,
            stop_when=lambda s: s.correct_output_count(min_outputs),
            extra_steps=extra_steps,
        )
        recorded = recorded_output_history(result)
        check = check_sigma(recorded, pattern, horizon=recorded.horizon)
        return BoostRunOutcome(
            result=result,
            recorded=recorded,
            check=check,
            metrics=collect_metrics(result),
        )

    return _observed("from_scratch_sigma", n, seed, go)
