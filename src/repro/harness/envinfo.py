"""Environment attribution: one stamp format for every durable artifact.

``BENCH_kernel.json``, ``BENCH_extraction.json``, exported traces and every
:mod:`repro.store` record header carry the same environment stamp — git SHA,
python version, platform and CPU counts — enough to pin a number to a commit
and a machine.  This module is the single owner of that format (it used to
be duplicated between the two benchmark scripts via ``repro.obs.export``).

:func:`environment_digest` reduces the stamp to the *machine* identity
(python + platform + CPU count, deliberately excluding the git SHA and the
CPU affinity mask), which is how the store shelves benchmark baselines:
"the most recent report from this same environment" is a lookup by digest,
regardless of which commit produced it.
"""

from __future__ import annotations

import hashlib
import os
import platform
import subprocess
from typing import Any, Dict, Optional

_STAMP_CACHE: Dict[Optional[str], Dict[str, Any]] = {}


def environment_stamp(repo_root: Optional[str] = None) -> Dict[str, Any]:
    """Attribution metadata for benchmark/trace/store files.

    Git SHA (``None`` outside a work tree), python version, platform and
    CPU counts.  Cached per ``repo_root`` so store writes don't shell out
    to git once per record; call :func:`clear_stamp_cache` if the HEAD
    moves mid-process (tests do).
    """
    cached = _STAMP_CACHE.get(repo_root)
    if cached is not None:
        return dict(cached)
    try:
        sha: Optional[str] = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root or os.getcwd(),
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        sha = None
    try:
        affinity: Optional[int] = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        affinity = None
    stamp = {
        "git_sha": sha,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "cpu_affinity": affinity,
    }
    _STAMP_CACHE[repo_root] = stamp
    return dict(stamp)


def environment_digest(stamp: Optional[Dict[str, Any]] = None) -> str:
    """A short hex id of the *machine* environment (commit-independent).

    Two reports share a digest iff they came from the same python version,
    platform string and CPU count — the fields that make wall-clock numbers
    comparable.  Git SHA and the affinity mask are excluded on purpose:
    baselines are compared *across* commits, and the affinity mask moves
    with container scheduling noise.
    """
    stamp = stamp if stamp is not None else environment_stamp()
    text = "|".join(
        repr(stamp.get(field)) for field in ("python", "platform", "cpu_count")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def clear_stamp_cache() -> None:
    _STAMP_CACHE.clear()
