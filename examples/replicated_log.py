#!/usr/bin/env python3
"""State-machine replication on the weakest detector for the job.

Builds a 4-replica replicated log in a *minority-correct* system (3 of 4
replicas eventually crash): each slot is an A_nuc consensus instance over
(Omega, Sigma^nu+).  Correct replicas end with identical logs and identical
applied state — the downstream payoff of the paper's result, in the failure
regime classical majority-based replication cannot survive.

Run:  python examples/replicated_log.py
"""

from repro.kernel import FailurePattern
from repro.smr import check_smr, run_replicated_log


def main() -> None:
    pattern = FailurePattern(4, {0: 60, 1: 90, 2: 120})  # only 3 survives!
    commands = {p: [("append", p, i) for i in range(2)] for p in range(4)}

    result, replicas = run_replicated_log(
        pattern, commands, slots=4, seed=7, max_steps=200000
    )
    print(f"pattern : {pattern}")
    print(f"stopped : {result.stop_reason} after {result.step_count} steps")
    for p in range(4):
        status = "correct" if p in pattern.correct else "faulty "
        print(f"  replica {p} ({status}): log = {replicas[p].log}")

    report = check_smr(pattern, replicas, commands)
    print(f"verdict : {report}")

    survivor = max(pattern.correct)
    state = [e for e in replicas[survivor].log if e and e[0] != "noop"]
    print(f"state machine at the survivor: {state}")
    if not report.ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
