#!/usr/bin/env python3
"""Watch the necessity proof compute: T_{D -> Sigma^nu} live.

Theorem 5.4 says any detector D that can solve nonuniform consensus can be
transformed into Sigma^nu.  This script runs the transformation with
D = (Omega, Sigma) and the quorum-MR consensus algorithm as the subject A:
every process builds a DAG of D-samples, simulates schedules of A from the
all-0 and all-1 initial configurations, and — each time it finds a pair of
fresh deciding schedules — outputs the union of their participants as a
Sigma^nu quorum.

Because the subject solves *uniform* consensus with D, the emitted history
even satisfies full Sigma (Theorem 5.8); both verdicts are printed.

Run:  python examples/necessity_extraction.py
"""

import random

from repro import (
    FailurePattern,
    Omega,
    PairedDetector,
    QuorumMR,
    Sigma,
)
from repro.harness.runner import run_extraction


def show(pattern: FailurePattern, seed: int) -> bool:
    print(f"--- {pattern} (seed {seed})")
    detector = PairedDetector(Omega(), Sigma("pivot"))
    outcome = run_extraction(QuorumMR(), detector, pattern, seed=seed)
    for p in range(pattern.n):
        quorums = [sorted(q) for _, q in outcome.result.outputs[p]]
        status = "correct" if p in pattern.correct else "faulty "
        print(f"  process {p} ({status}): emitted quorums {quorums[:6]}"
              + (" ..." if len(quorums) > 6 else ""))
    print(f"  Sigma^nu verdict (Thm 5.4): {outcome.sigma_nu_check}")
    print(f"  Sigma    verdict (Thm 5.8): {outcome.sigma_check}")
    return bool(outcome.sigma_nu_check)


def main() -> None:
    ok = True
    ok &= show(FailurePattern(3, {}), seed=1)
    ok &= show(FailurePattern(3, {0: 10, 1: 20}), seed=2)  # minority correct
    ok &= show(FailurePattern(4, {2: 25}), seed=3)
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
