"""Consensus as a service, end to end in one page.

Runs the asyncio service on the deterministic logical clock, submits a
small closed-loop workload from three client sessions, performs a
certified read, and shows the nonuniform/uniform split the service
enforces: the *decided* log (nonuniformly safe) versus the *certified*
prefix (what clients may see).

Run with:  PYTHONPATH=src python examples/consensus_service.py
"""

import asyncio

from repro.service import (
    ConsensusService,
    ServiceConfig,
    TickClock,
    logical_event_loop,
)


async def main(loop) -> None:
    clock = TickClock(loop)
    config = ServiceConfig(n=3, seed=42, batch_size=4)
    service = ConsensusService(config, clock)
    service.start()

    async def client(name: str, count: int) -> None:
        for seq in range(count):
            reply = await service.submit(name, seq, ("set", name, seq))
            status, slot, index = reply
            print(f"  {name}#{seq} -> {status} (slot {slot}, index {index})")

    print("submitting 3 sessions x 3 commands (closed loop):")
    await asyncio.gather(client("alice", 3), client("bob", 3), client("cara", 3))

    view = await service.read()
    print(f"\ncertified read: {len(view)} commands")
    for command in view[:4]:
        print(f"  {command}")
    print("  ...")

    decided = service.core.decided_log()
    certified = service.core.certified_length()
    print(f"\ndecided slots   : {len(decided)} (nonuniformly safe)")
    print(f"certified slots : {certified} (majority-backed; client-visible)")
    print(f"batches         : {service.stats['batches']}")
    print(f"kernel steps    : {service.stats['kernel_steps']}")
    print(f"session FIFO ok : {service.invariants.ok}")
    print(f"logical ticks   : {clock.now_ticks()} (no wall-clock sleeps)")
    await service.stop()


if __name__ == "__main__":
    loop = logical_event_loop()
    try:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(main(loop))
    finally:
        asyncio.set_event_loop(None)
        loop.close()
