#!/usr/bin/env python3
"""Section 6.3: why A_nuc needs its machinery — the contamination scenario.

Replacing majorities by Sigma^nu quorums in the Mostéfaoui-Raynal algorithm
looks plausible but is wrong: a faulty process with a private quorum can
decide alone and then, through Omega's pre-stabilization noise, hand its
estimate to correct processes — *contaminating* them after another correct
process already decided differently.

This script plays the exact scenario from the paper against both algorithms:

* the naive quorum algorithm: correct process 0 decides "v", correct
  process 1 is contaminated and decides "w" — nonuniform agreement broken;
* A_nuc under the same detector-history family: the LEAD message from the
  faulty process carries its quorum history, both correct processes distrust
  it, and everyone decides "v".

The adaptive history is recorded and re-validated post hoc: it *is* a legal
(Omega, Sigma^nu) history for the exhibited failure pattern, so the naive
algorithm really is incorrect — it is not being cheated.

Run:  python examples/contamination_demo.py
"""

from repro import run_contamination_scenario


def main() -> None:
    naive = run_contamination_scenario("naive", seed=0)
    anuc = run_contamination_scenario("anuc", seed=0)

    print("=== naive Sigma^nu quorum algorithm ===")
    print(f"  decisions        : {naive.decisions}")
    print(f"  crash of 2 at    : t={naive.crash_time}")
    print(f"  agreement        : {naive.agreement}")
    print(f"  Omega history ok : {bool(naive.omega_check)}")
    print(f"  Sigma^nu hist ok : {bool(naive.sigma_check)}")
    print()
    print("=== A_nuc under the same scenario family ===")
    print(f"  decisions        : {anuc.decisions}")
    print(f"  crash of 2 at    : t={anuc.crash_time}")
    print(f"  agreement        : {anuc.agreement}")
    print(f"  distrust events  : {len(anuc.distrust_events)} "
          f"(rounds/targets {sorted(set(anuc.distrust_events))[:6]})")

    expected = naive.contaminated and not anuc.contaminated
    print()
    print("naive contaminated, A_nuc safe:", expected)
    if not expected:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
