#!/usr/bin/env python3
"""Inside the necessity proof: DAGs of samples and simulated schedules.

Runs A_DAG (Fig. 1) live over (Omega, Sigma), then walks the machinery of
Section 4:

* the DAG's compact frontier representation and its order-theoretic facts
  (Observations 4.1-4.4);
* a path through the DAG and the canonical simulated schedule it induces
  (the Lemma 4.10 construction): quorum-MR, simulated step by step, decides;
* the formal payoff (Lemma 4.9): the simulated schedule paired with the
  samples' tau-times validates as a *run* of the algorithm using the
  detector — checked with the independent run validator.

Run:  python examples/dag_explorer.py
"""

import random

from repro import (
    CoalescingDelivery,
    DagBuilder,
    FailurePattern,
    Omega,
    PairedDetector,
    QuorumMR,
    Sigma,
    System,
)
from repro.core.dag import balanced_chain
from repro.core.simulation import canonical_schedule, find_deciding_schedule
from repro.kernel.runs import PureRun, validate_run


def main() -> None:
    pattern = FailurePattern(3, {2: 30})
    detector = PairedDetector(Omega(), Sigma("pivot"))
    history = detector.sample_history(pattern, random.Random(11))

    print("== running A_DAG for 500 steps ==")
    processes = {p: DagBuilder() for p in range(3)}
    system = System(
        processes, pattern, history, seed=11, delivery=CoalescingDelivery()
    )
    system.run(max_steps=500)

    dag = processes[0].core.dag
    print(f"process 0's DAG: {len(dag)} samples, frontier {dag.frontier}")
    sample = dag.get((0, 3))
    print(f"sample (0,#3): d={sample.d}, tau={sample.t}, "
          f"frontier={sample.frontier}")
    fresh = dag.descendants(sample)
    print(f"|G|{sample!r}| = {len(fresh)} descendants "
          f"(all post-crash ones are correct-only)")

    print("\n== a canonical simulated schedule (Lemma 4.10) ==")
    chain = balanced_chain(fresh)
    sim = canonical_schedule(QuorumMR(), 3, {p: "v0" for p in range(3)},
                             chain, target=0)
    print(f"chain length {len(chain)}; process 0 decides "
          f"{sim.decisions.get(0)!r} after {sim.target_decided_at} steps "
          f"with participants {sorted(sim.participants)}")

    print("\n== Lemma 4.9: the simulated schedule is a run of A using D ==")
    run = PureRun(
        automaton=QuorumMR(),
        n=3,
        proposals={p: "v0" for p in range(3)},
        pattern=pattern,
        history=history.value,
        schedule=sim.schedule,
        times=[s.t for s in sim.path],
    )
    violations = validate_run(run)
    print(f"run validator: {'VALID' if not violations else violations[:2]}")

    print("\n== the extraction condition (Fig. 2 lines 15-17) ==")
    for value in (0, 1):
        found = find_deciding_schedule(
            QuorumMR(), 3, {p: value for p in range(3)}, fresh, target=0
        )
        print(f"I_{value}: deciding schedule with participants "
              f"{sorted(found.participants)} "
              f"(len {len(found.schedule)})")
    quorum = None
    s0 = find_deciding_schedule(QuorumMR(), 3, {p: 0 for p in range(3)}, fresh, 0)
    s1 = find_deciding_schedule(QuorumMR(), 3, {p: 1 for p in range(3)}, fresh, 0)
    quorum = s0.participants | s1.participants
    print(f"extracted Sigma^nu quorum: {sorted(quorum)}")
    if violations:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
