#!/usr/bin/env python3
"""Quickstart: solve nonuniform consensus with A_nuc and (Omega, Sigma^nu+).

Builds a 4-process system in which process 3 crashes at time 20, samples a
valid (Omega, Sigma^nu+) history, runs the paper's A_nuc algorithm (Figs.
4-5) and checks the outcome against the nonuniform consensus properties.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    AnucProcess,
    FailurePattern,
    Omega,
    PairedDetector,
    SigmaNuPlus,
    System,
    check_nonuniform_consensus,
    consensus_outcome,
)


def main() -> None:
    n = 4
    pattern = FailurePattern(n, {3: 20})  # process 3 crashes at time 20
    proposals = {0: "apple", 1: "banana", 2: "cherry", 3: "durian"}

    detector = PairedDetector(Omega(), SigmaNuPlus())
    history = detector.sample_history(pattern, random.Random(42))

    processes = {p: AnucProcess(proposals[p]) for p in range(n)}
    system = System(processes, pattern, history, seed=42)
    result = system.run(
        max_steps=20000, stop_when=lambda s: s.all_correct_decided()
    )

    print(f"pattern      : {pattern}")
    print(f"proposals    : {proposals}")
    print(f"decisions    : {result.decisions}")
    print(f"decided at   : {result.decision_times}")
    print(f"steps taken  : {result.step_count}")
    print(f"messages     : {result.messages_sent} sent, "
          f"{result.messages_delivered} delivered")

    report = check_nonuniform_consensus(consensus_outcome(result, proposals))
    print(f"verdict      : {report}")
    if not report.ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
