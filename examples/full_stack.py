#!/usr/bin/env python3
"""The headline result end to end: consensus from (Omega, Sigma^nu) alone.

Theorem 6.28: run, at every process, the booster T_{Sigma^nu -> Sigma^nu+}
concurrently with A_nuc, where A_nuc reads its quorums from the booster's
emulated output variable.  This script drives the composition in a
*minority-correct* system (3 of 5 processes crash) — the regime where
(Omega, Sigma^nu) is strictly weaker than (Omega, Sigma) — and validates
both the consensus outcome and the emulated Sigma^nu+ history.

Run:  python examples/full_stack.py
"""

import random

from repro import (
    CoalescingDelivery,
    FailurePattern,
    Omega,
    PairedDetector,
    SigmaNu,
    StackedNucProcess,
    System,
    check_nonuniform_consensus,
    check_sigma_nu_plus,
    consensus_outcome,
    recorded_output_history,
)


def main() -> None:
    n = 5
    pattern = FailurePattern(n, {0: 15, 2: 30, 4: 45})  # minority correct!
    proposals = {p: f"v{p % 2}" for p in range(n)}

    detector = PairedDetector(Omega(), SigmaNu(faulty_style="selfish"))
    history = detector.sample_history(pattern, random.Random(7))

    processes = {p: StackedNucProcess(proposals[p], n) for p in range(n)}
    system = System(
        processes,
        pattern,
        history,
        seed=7,
        delivery=CoalescingDelivery(),
    )
    result = system.run(
        max_steps=60000, stop_when=lambda s: s.all_correct_decided()
    )

    print(f"pattern   : {pattern}")
    print(f"correct   : {sorted(pattern.correct)}")
    print(f"decisions : {result.decisions}")

    outcome = consensus_outcome(result, proposals)
    consensus_report = check_nonuniform_consensus(outcome)
    print(f"consensus : {consensus_report}")

    recorded = recorded_output_history(result)
    boost_report = check_sigma_nu_plus(recorded, pattern, recorded.horizon)
    print(f"emulated Sigma^nu+ : {boost_report}")
    for p in sorted(pattern.correct):
        quorums = [sorted(q) for _, q in result.outputs[p][-3:]]
        print(f"  last quorums at {p}: {quorums}")

    if not (consensus_report.ok and boost_report.ok):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
