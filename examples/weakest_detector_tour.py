#!/usr/bin/env python3
"""A tour of the detector lattice around (Omega, Sigma^nu).

The "weakest failure detector" statement lives in the preorder of
Section 2.9: ``D' ⪯ D`` when some algorithm transforms D into D'.  This
script witnesses the lattice facts the paper composes:

    Ω   ⪯  (Ω, Σν)          (projection)
    Σν  ⪯  Σ                 (identity — Σ histories satisfy Σν)
    Σν  ⪯  Σν+               (identity — Corollary 6.8, easy direction)
    Σν+ ⪯  Σν                (Fig. 3 booster — Theorem 6.7, hard direction)

and shows the non-fact Σ ⪯ Σν failing for the *trivial* transformation
(the impossibility of every transformation at t >= n/2 is the partition
adversary's job — see examples/separation_demo.py).

Run:  python examples/weakest_detector_tour.py
"""

from repro.detectors.ordering import (
    demonstrate,
    identity_transformation,
    omega_weaker_than_pair,
    sigma_nu_plus_weaker_than_sigma_nu,
    sigma_nu_weaker_than_sigma,
    sigma_nu_weaker_than_sigma_nu_plus,
)
from repro.kernel.failures import FailurePattern


def main() -> None:
    patterns = [
        FailurePattern(3, {}),
        FailurePattern(3, {2: 15}),
        FailurePattern(4, {0: 5, 1: 20}),  # minority correct
    ]

    facts = [
        omega_weaker_than_pair(),
        sigma_nu_weaker_than_sigma(),
        sigma_nu_weaker_than_sigma_nu_plus(),
        sigma_nu_plus_weaker_than_sigma_nu(3),
    ]
    ok = True
    print("=== lattice facts (each witnessed over 3 patterns) ===")
    for fact in facts:
        demo = demonstrate(fact, patterns, seed=1)
        print(f"  {demo}")
        ok &= demo.all_valid

    print()
    print("=== a non-fact: Sigma <= Sigma^nu via the identity ===")
    from repro.detectors.checkers import check_sigma
    from repro.detectors.sigma_nu import SigmaNu

    bogus = identity_transformation(
        SigmaNu("selfish"), check_sigma, name="Sigma <= Sigma^nu (identity)"
    )
    demo = demonstrate(bogus, [FailurePattern(3, {2: 10})], seed=2)
    print(f"  {demo}")
    print(
        "  (fails, as it must: a faulty process's selfish {2} quorum breaks\n"
        "   Sigma's uniform intersection; and Theorem 7.1 says no cleverer\n"
        "   transformation exists once t >= n/2)"
    )
    ok &= not demo.all_valid
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
