#!/usr/bin/env python3
"""Why the uniform proof technique breaks: registers need Sigma, not Sigma^nu.

Delporte et al. proved (Omega, Sigma) weakest for *uniform* consensus via
atomic registers.  The paper's introduction notes the nonuniform problem
cannot take that road: Sigma^nu cannot implement registers.  This script
shows both halves on the ABD quorum-register emulation:

* under Sigma, random read/write workloads across crashes stay atomic;
* under Sigma^nu, a faulty writer with a private quorum completes a write
  that a strictly-later read misses — a checked atomicity violation, on a
  history the Sigma^nu checker certifies as legal.

Run:  python examples/register_gap.py
"""

import random

from repro.detectors import Sigma
from repro.kernel import FailurePattern
from repro.registers import (
    RegisterHarness,
    check_register_safety,
    run_lost_write_scenario,
)
from repro.registers.counterexample import run_sigma_control_arm


def sigma_arm() -> bool:
    print("=== Sigma: ABD stays atomic ===")
    ok = True
    for seed in range(3):
        rng = random.Random(seed)
        pattern = FailurePattern(4, {3: rng.randint(20, 50)})
        scripts = {
            0: [("write", f"a{seed}"), ("read",)],
            1: [("read",), ("write", f"b{seed}")],
            2: [("read",), ("read",)],
            3: [("write", f"c{seed}")],
        }
        history = Sigma("pivot").sample_history(pattern, rng)
        harness = RegisterHarness(pattern=pattern, history=history,
                                  scripts=scripts, seed=seed)
        _, records, _ = harness.run()
        report = check_register_safety(records)
        print(f"  seed {seed}: {report}")
        ok &= report.ok
    return ok


def sigma_nu_arm() -> bool:
    print("=== Sigma^nu: the lost-write anomaly ===")
    report = run_lost_write_scenario(seed=0)
    print(f"  write      : {report.write!r}")
    print(f"  stale read : {report.stale_read!r}")
    print(f"  safety     : {report.safety}")
    print(f"  history legal Sigma^nu: {bool(report.sigma_nu_check)}; "
          f"legal Sigma: {bool(report.sigma_check)}")
    print(f"  write eventually visible at replicas: {report.eventually_visible}")
    print("  control arm (Sigma quorums): isolated write blocks ->",
          run_sigma_control_arm())
    return report.violated


def main() -> None:
    ok = sigma_arm()
    print()
    ok &= sigma_nu_arm()
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
