#!/usr/bin/env python3
"""Theorem 7.1: (Omega, Sigma^nu) vs (Omega, Sigma), both directions.

* t < n/2 — Sigma is implementable *from scratch* (no failure detector):
  quorums of n - t processes are majorities, so they intersect; the run's
  emitted history is validated by the independent Sigma checker.

* t >= n/2 — no algorithm can transform (Omega, Sigma^nu) into Sigma: the
  two-run partition adversary plays the candidate transformation against
  itself and exhibits two disjoint quorums in a single run.

Run:  python examples/separation_demo.py
"""

import random

from repro import FailurePattern, FromScratchSigma, run_partition_adversary
from repro.harness.runner import run_from_scratch_sigma


def if_direction() -> bool:
    print("=== IF direction: t < n/2, Sigma from scratch ===")
    ok = True
    for n, t in [(3, 1), (5, 2), (7, 3)]:
        rng = random.Random(n * 100 + t)
        crashed = rng.sample(range(n), t)
        pattern = FailurePattern(n, {p: rng.randint(0, 25) for p in crashed})
        outcome = run_from_scratch_sigma(n, t, pattern, seed=0)
        sample = [sorted(q) for _, q in outcome.result.outputs[min(pattern.correct)][-2:]]
        print(f"  n={n} t={t} {pattern}: Sigma check -> {outcome.check} "
              f"(final quorums {sample})")
        ok &= bool(outcome.check)
    return ok


def only_if_direction() -> bool:
    print("=== ONLY IF direction: t >= n/2, the partition adversary ===")
    ok = True
    for n, t in [(2, 1), (4, 2), (6, 3)]:
        verdict = run_partition_adversary(
            lambda pid, n=n, t=t: FromScratchSigma(n, t), n, t, seed=5
        )
        print(f"  n={n} t={t}: {verdict.reason}")
        if verdict.violated:
            print(f"    A-side quorum {sorted(verdict.a_quorum)} at process "
                  f"{verdict.a_process} (time {verdict.tau}); B-side quorum "
                  f"{sorted(verdict.b_quorum)} at process {verdict.b_process}")
        ok &= verdict.violated
    return ok


def main() -> None:
    ok = if_direction()
    print()
    ok &= only_if_direction()
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
