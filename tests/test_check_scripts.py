"""The CI gate scripts in ``benchmarks/`` behave as documented.

Each script must expose a usable ``--help`` (exit 0, names its options) and
exit nonzero on the failure it is designed to catch, so a CI misconfiguration
surfaces as a loud failure instead of a silently green step.
"""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCHMARKS = os.path.join(REPO_ROOT, "benchmarks")


def run_script(name, *argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, os.path.join(BENCHMARKS, name), *argv],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )


class TestCheckRegression:
    def test_help(self):
        proc = run_script("check_regression.py", "--help")
        assert proc.returncode == 0
        for token in ("--baseline", "--threshold", "usage"):
            assert token in proc.stdout

    def test_missing_argument_is_usage_error(self):
        proc = run_script("check_regression.py")
        assert proc.returncode == 2
        assert "usage" in proc.stderr

    def test_throughput_drop_fails(self, tmp_path):
        with open(os.path.join(REPO_ROOT, "BENCH_kernel.json")) as fh:
            report = json.load(fh)
        for trace in ("full", "metrics"):
            report["kernel"][trace]["steps_per_sec"] = 1
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(report))
        proc = run_script("check_regression.py", str(slow))
        assert proc.returncode == 1
        assert "regressed" in proc.stderr

    def test_identical_report_passes(self):
        baseline = os.path.join(REPO_ROOT, "BENCH_kernel.json")
        proc = run_script("check_regression.py", baseline)
        assert proc.returncode == 0
        assert "no throughput regression" in proc.stdout

    def test_help_names_attribute_option(self):
        proc = run_script("check_regression.py", "--help")
        assert proc.returncode == 0
        assert "--attribute" in proc.stdout
        assert "TRACE_A" in proc.stdout

    def test_failure_prints_attribution_diff(self, tmp_path):
        sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
        try:
            from repro.obs.export import write_trace
            from repro.obs.tracer import Tracer

            traces = []
            for name, ticks in (("a.jsonl", [0, 100]), ("b.jsonl", [0, 400])):
                tracer = Tracer("attr-test")
                with tracer.span("kernel.run", clock=iter(ticks).__next__):
                    pass
                path = str(tmp_path / name)
                write_trace(path, tracer)
                traces.append(path)
        finally:
            sys.path.pop(0)

        with open(os.path.join(REPO_ROOT, "BENCH_kernel.json")) as fh:
            report = json.load(fh)
        for trace in ("full", "metrics"):
            report["kernel"][trace]["steps_per_sec"] = 1
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(report))
        proc = run_script(
            "check_regression.py", str(slow), "--attribute", *traces
        )
        assert proc.returncode == 1
        assert "attribution" in proc.stdout
        assert "kernel.run" in proc.stdout


class TestCheckRegressionService:
    def test_help_names_service_options(self):
        proc = run_script("check_regression.py", "--help")
        assert proc.returncode == 0
        for token in ("--service", "--service-speedup", "--service-baseline"):
            assert token in proc.stdout

    def test_committed_report_passes(self):
        report = os.path.join(REPO_ROOT, "BENCH_service.json")
        proc = run_script("check_regression.py", "--service", report)
        assert proc.returncode == 0
        assert "service bench healthy" in proc.stdout

    def test_weak_batching_fails(self, tmp_path):
        with open(os.path.join(REPO_ROOT, "BENCH_service.json")) as fh:
            report = json.load(fh)
        report["speedup_16_vs_1"] = 1.2
        weak = tmp_path / "weak.json"
        weak.write_text(json.dumps(report))
        proc = run_script("check_regression.py", "--service", str(weak))
        assert proc.returncode == 1
        assert "batching-speedup" in proc.stderr

    def test_cross_batch_digest_divergence_fails(self, tmp_path):
        with open(os.path.join(REPO_ROOT, "BENCH_service.json")) as fh:
            report = json.load(fh)
        report["digests_identical"] = False
        bad = tmp_path / "diverged.json"
        bad.write_text(json.dumps(report))
        proc = run_script("check_regression.py", "--service", str(bad))
        assert proc.returncode == 1
        assert "cross-batch-digest" in proc.stderr

    def test_lost_commands_fail(self, tmp_path):
        with open(os.path.join(REPO_ROOT, "BENCH_service.json")) as fh:
            report = json.load(fh)
        report["batches"][0]["committed"] -= 1
        report["batches"][0]["timed_out"] += 1
        lossy = tmp_path / "lossy.json"
        lossy.write_text(json.dumps(report))
        proc = run_script("check_regression.py", "--service", str(lossy))
        assert proc.returncode == 1
        assert "incomplete" in proc.stderr


class TestCheckTraceSchema:
    def test_help(self):
        proc = run_script("check_trace_schema.py", "--help")
        assert proc.returncode == 0
        assert "usage" in proc.stdout
        assert "repro-trace/1" in proc.stdout

    def test_missing_argument_is_usage_error(self):
        proc = run_script("check_trace_schema.py")
        assert proc.returncode == 2
        assert "usage" in proc.stderr

    def test_invalid_trace_fails(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\n')  # missing required fields
        proc = run_script("check_trace_schema.py", str(bad))
        assert proc.returncode == 1

    def test_unreadable_file_fails(self, tmp_path):
        proc = run_script("check_trace_schema.py", str(tmp_path / "absent.jsonl"))
        assert proc.returncode == 1


class TestCheckDeterminism:
    def test_help(self):
        proc = run_script("check_determinism.py", "--help")
        assert proc.returncode == 0
        for token in ("--exp", "--jobs", "--full", "usage"):
            assert token in proc.stdout

    def test_unknown_experiment_is_usage_error(self):
        proc = run_script("check_determinism.py", "--exp", "exp99")
        assert proc.returncode == 2
        assert "usage" in proc.stderr

    def test_help_names_service_mode(self):
        proc = run_script("check_determinism.py", "--help")
        assert proc.returncode == 0
        assert "--service" in proc.stdout

    def test_service_excludes_chaos_and_store(self):
        proc = run_script("check_determinism.py", "--service", "--chaos")
        assert proc.returncode == 2
        proc = run_script("check_determinism.py", "--service", "--store")
        assert proc.returncode == 2
