"""ResultStore: roundtrip, invalidation, atomicity, gc, diff, bench shelf."""

import json
import os

import pytest

from repro.store import ResultStore, TaskKey
from repro.store.signature import ModuleSignatureIndex

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def sample_task(seed, scale=1):
    return {"seed": seed, "value": seed * scale}


def make_index() -> ModuleSignatureIndex:
    """An index that can sign functions defined in this test module."""
    return ModuleSignatureIndex({"tests": REPO_ROOT})


def make_store(tmp_path) -> ResultStore:
    return ResultStore(str(tmp_path / "store"), index=make_index())


def test_roundtrip(tmp_path):
    store = make_store(tmp_path)
    key = store.key_for(sample_task, {"seed": 3, "scale": 2})
    assert key is not None

    status, _ = store.load(key)
    assert status == "miss"
    assert store.store(key, sample_task(3, 2))
    status, value = store.load(key)
    assert status == "hit"
    assert value == {"seed": 3, "value": 6}
    assert store.stats.hits == 1 and store.stats.misses == 1


def test_keys_ignore_kwarg_order(tmp_path):
    store = make_store(tmp_path)
    a = store.key_for(sample_task, {"seed": 1, "scale": 4})
    b = store.key_for(sample_task, {"scale": 4, "seed": 1})
    assert a == b
    assert a != store.key_for(sample_task, {"seed": 1, "scale": 5})


def test_undigestable_kwargs_are_unstorable(tmp_path):
    store = make_store(tmp_path)
    assert store.key_for(sample_task, {"seed": object()}) is None


def test_unsigned_module_is_unstorable(tmp_path):
    store = ResultStore(str(tmp_path / "store"))  # default index: repro only
    assert store.key_for(sample_task, {"seed": 0}) is None


def test_other_signature_is_invalidated_not_miss(tmp_path):
    store = make_store(tmp_path)
    key = store.key_for(sample_task, {"seed": 7})
    store.store(key, sample_task(7))

    moved = TaskKey(digest=key.digest, signature="f" * 64, fn=key.fn)
    status, _ = store.load(moved)
    assert status == "invalidated"
    assert store.probe(moved) == "invalidated"
    # Both signatures' records coexist after the moved row is stored too.
    store.store(moved, "new-code-result")
    assert store.load(key) == ("hit", {"seed": 7, "value": 7})
    assert store.load(moved) == ("hit", "new-code-result")


def test_corrupt_record_demotes_to_miss_and_rewrites(tmp_path):
    store = make_store(tmp_path)
    key = store.key_for(sample_task, {"seed": 1})
    store.store(key, sample_task(1))
    path = store._record_path(key)

    with open(path, "w") as fh:
        fh.write("{ not json")
    status, _ = store.load(key)
    assert status == "miss"
    store.store(key, sample_task(1))
    assert store.load(key)[0] == "hit"


def test_corrupt_payload_demotes_to_miss(tmp_path):
    store = make_store(tmp_path)
    key = store.key_for(sample_task, {"seed": 2})
    store.store(key, sample_task(2))
    path = store._record_path(key)
    with open(path) as fh:
        record = json.load(fh)
    record["payload"] = "AAAA"
    with open(path, "w") as fh:
        json.dump(record, fh)
    assert store.load(key)[0] == "miss"


def test_unpicklable_result_is_not_stored(tmp_path):
    store = make_store(tmp_path)
    key = store.key_for(sample_task, {"seed": 4})
    assert not store.store(key, lambda: None)
    assert store.stats.write_failures == 1
    assert store.load(key)[0] == "miss"


def test_writes_leave_no_temp_files(tmp_path):
    store = make_store(tmp_path)
    for seed in range(5):
        store.store(store.key_for(sample_task, {"seed": seed}), seed)
    leftovers = [
        name
        for _, _, names in os.walk(store.root)
        for name in names
        if not name.endswith(".json")
    ]
    assert leftovers == []


def test_ls_reports_every_record(tmp_path):
    store = make_store(tmp_path)
    for seed in range(3):
        store.store(store.key_for(sample_task, {"seed": seed}), seed)
    entries = store.ls()
    assert len(entries) == 3
    fn_name = "tests.store.test_store:sample_task"
    assert all(e["fn"] == fn_name for e in entries)
    assert all(len(e["code_signature"]) == 64 for e in entries)


def test_gc_stale_keeps_current_signature(tmp_path):
    store = make_store(tmp_path)
    key = store.key_for(sample_task, {"seed": 0})
    store.store(key, 0)
    stale = TaskKey(digest=key.digest, signature="e" * 64, fn=key.fn)
    store.store(stale, "old")

    dry = store.gc(dry_run=True)
    assert len(dry["removed"]) == 1 and dry["kept"] == 1
    assert store.load(stale)[0] == "hit"  # dry run removed nothing

    summary = store.gc()
    assert len(summary["removed"]) == 1
    assert store.load(key)[0] == "hit"
    assert store.probe(stale) == "invalidated"


def test_gc_all_empties_objects(tmp_path):
    store = make_store(tmp_path)
    for seed in range(4):
        store.store(store.key_for(sample_task, {"seed": seed}), seed)
    summary = store.gc(mode="all")
    assert len(summary["removed"]) == 4
    assert store.ls() == []
    assert not os.listdir(os.path.join(store.root, "objects"))


def test_gc_rejects_unknown_mode(tmp_path):
    with pytest.raises(ValueError):
        make_store(tmp_path).gc(mode="everything")


def test_diff_tasks_classifies(tmp_path):
    store = make_store(tmp_path)
    store.store(store.key_for(sample_task, {"seed": 0}), 0)
    diff = store.diff_tasks(
        [
            (sample_task, {"seed": 0}),  # hit
            (sample_task, {"seed": 99}),  # miss
            (sample_task, {"seed": object()}),  # unstorable
        ]
    )
    assert diff["counts"] == {
        "hit": 1,
        "miss": 1,
        "invalidated": 0,
        "unstorable": 1,
    }
    assert [row["status"] for row in diff["tasks"]] == [
        "hit",
        "miss",
        "unstorable",
    ]


def test_bench_shelf_roundtrip(tmp_path):
    from repro.harness.envinfo import environment_digest

    store = make_store(tmp_path)
    assert store.latest_bench("kernel") is None
    first = {"schema": "bench-kernel/2", "kernel": {"full": 1}}
    second = {"schema": "bench-kernel/2", "kernel": {"full": 2}}
    path1 = store.put_bench("kernel", first)
    path2 = store.put_bench("kernel", second)
    assert environment_digest() in path1

    found = store.latest_bench("kernel")
    assert found is not None
    path, report = found
    # Most recent wins (same-second stamps sort by name; both written here).
    assert path in (path1, path2)
    assert report["schema"] == "bench-kernel/2"
    assert store.latest_bench("kernel", "0" * 16) is None
    kinds = {e["kind"] for e in store.ls_bench()}
    assert kinds == {"kernel"}


def test_environment_stamp_header_on_records(tmp_path):
    store = make_store(tmp_path)
    key = store.key_for(sample_task, {"seed": 5})
    store.store(key, 5)
    with open(store._record_path(key)) as fh:
        record = json.load(fh)
    env = record["environment"]
    assert {"python", "platform", "cpu_count"} <= set(env)
