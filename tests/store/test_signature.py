"""Code signatures change when — and only when — a dependency's source does.

Each test builds a throwaway package on disk and registers it as a
signature root, so the assertions run against real files with real
mtimes, exactly the way the store sees the ``repro`` package.
"""

import os
import textwrap

from repro.store.signature import ModuleSignatureIndex, code_signature

PKG = {
    "__init__.py": "",
    "mod_a.py": textwrap.dedent(
        """
        def helper_a():
            return "a-v1"
        """
    ),
    "mod_b.py": textwrap.dedent(
        """
        def helper_b():
            return "b-v1"
        """
    ),
    "tasks_a.py": textwrap.dedent(
        """
        from fakepkg.mod_a import helper_a

        def task_a(seed):
            return (helper_a(), seed)
        """
    ),
    "tasks_b.py": textwrap.dedent(
        """
        def task_b(seed):
            # Function-body import: the scanner must still see it.
            from fakepkg.mod_b import helper_b

            return (helper_b(), seed)
        """
    ),
}


def write_pkg(root) -> str:
    pkg_dir = os.path.join(root, "fakepkg")
    os.makedirs(pkg_dir, exist_ok=True)
    for name, source in PKG.items():
        with open(os.path.join(pkg_dir, name), "w") as fh:
            fh.write(source)
    return pkg_dir


def rewrite(pkg_dir, name, source):
    # A different content *length* guarantees the (mtime_ns, size) cache
    # token changes even on filesystems with coarse mtime resolution.
    with open(os.path.join(pkg_dir, name), "w") as fh:
        fh.write(source)


def make_index(tmp_path) -> ModuleSignatureIndex:
    write_pkg(str(tmp_path))
    return ModuleSignatureIndex({"fakepkg": str(tmp_path)})


def test_closure_follows_imports_and_ancestors(tmp_path):
    index = make_index(tmp_path)
    assert index.closure("fakepkg.tasks_a") == {
        "fakepkg",
        "fakepkg.tasks_a",
        "fakepkg.mod_a",
    }
    # Function-body import of mod_b is still part of tasks_b's closure.
    assert "fakepkg.mod_b" in index.closure("fakepkg.tasks_b")
    assert "fakepkg.mod_a" not in index.closure("fakepkg.tasks_b")


def test_signature_changes_when_dependency_changes(tmp_path):
    index = make_index(tmp_path)
    pkg_dir = os.path.join(str(tmp_path), "fakepkg")
    before = index.signature("fakepkg.tasks_a")

    rewrite(pkg_dir, "mod_a.py", "def helper_a():\n    return 'a-v2-longer'\n")
    after = index.signature("fakepkg.tasks_a")
    assert after != before


def test_signature_stable_when_unrelated_module_changes(tmp_path):
    index = make_index(tmp_path)
    pkg_dir = os.path.join(str(tmp_path), "fakepkg")
    a_before = index.signature("fakepkg.tasks_a")
    b_before = index.signature("fakepkg.tasks_b")

    rewrite(pkg_dir, "mod_b.py", "def helper_b():\n    return 'b-v2-longer'\n")
    assert index.signature("fakepkg.tasks_a") == a_before  # untouched cone
    assert index.signature("fakepkg.tasks_b") != b_before  # touched cone


def test_package_init_change_invalidates_all_members(tmp_path):
    index = make_index(tmp_path)
    pkg_dir = os.path.join(str(tmp_path), "fakepkg")
    a_before = index.signature("fakepkg.tasks_a")
    b_before = index.signature("fakepkg.tasks_b")

    rewrite(pkg_dir, "__init__.py", "PACKAGE_FLAG = True\n")
    assert index.signature("fakepkg.tasks_a") != a_before
    assert index.signature("fakepkg.tasks_b") != b_before


def test_identical_content_restores_the_signature(tmp_path):
    index = make_index(tmp_path)
    pkg_dir = os.path.join(str(tmp_path), "fakepkg")
    before = index.signature("fakepkg.tasks_a")

    rewrite(pkg_dir, "mod_a.py", "def helper_a():\n    return 'a-v2-longer'\n")
    assert index.signature("fakepkg.tasks_a") != before
    rewrite(pkg_dir, "mod_a.py", PKG["mod_a.py"])
    assert index.signature("fakepkg.tasks_a") == before


def test_module_outside_roots_has_no_signature(tmp_path):
    index = make_index(tmp_path)
    assert index.signature("os.path") is None
    assert index.signature("not_a_package.anything") is None


def test_code_signature_of_a_real_repro_function():
    from repro.harness.merging import random_mergeable_pair_report

    sig = code_signature(random_mergeable_pair_report)
    assert sig is not None and len(sig) == 64
    # Stable across calls (cache hit path).
    assert code_signature(random_mergeable_pair_report) == sig


def test_code_signature_none_outside_roots(tmp_path):
    index = make_index(tmp_path)

    def local_fn():
        return None

    # Defined in this test module, which is not under the fakepkg root.
    assert code_signature(local_fn, index) is None
