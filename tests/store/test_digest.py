"""Canonical config digests: the semantic-key invariants.

The digest must be a function of what a task *means*, not of how its
kwargs happened to be built — and it must never conflate genuinely
different configurations (bool vs int, 0.0 vs -0.0).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.detectors import Omega, PairedDetector, Sigma
from repro.kernel.failures import FailurePattern
from repro.store.digest import (
    UndigestableError,
    canonical,
    config_digest,
    fn_identity,
)


def task_fn(**kwargs):  # a stable module-level identity to digest against
    return kwargs


# ----------------------------------------------------------------------
# Hypothesis: structural invariances
# ----------------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**9), 10**9),
    st.floats(allow_nan=False),
    st.text(max_size=20),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)
_kwargs = st.dictionaries(
    st.text(min_size=1, max_size=10), _values, min_size=1, max_size=6
)


@given(_kwargs, st.randoms())
def test_digest_invariant_under_insertion_order(kwargs, rng):
    items = list(kwargs.items())
    rng.shuffle(items)
    shuffled = dict(items)
    assert shuffled == kwargs  # same mapping ...
    assert config_digest(task_fn, shuffled) == config_digest(task_fn, kwargs)


@given(_values)
def test_list_and_tuple_forms_agree(value):
    as_list = [value, value]
    as_tuple = (value, value)
    assert canonical(as_list) == canonical(as_tuple)
    assert config_digest(task_fn, {"xs": as_list}) == config_digest(
        task_fn, {"xs": as_tuple}
    )


@given(st.sets(st.integers(), min_size=1, max_size=8), st.randoms())
def test_set_iteration_order_is_normalized(values, rng):
    ordered = list(values)
    rng.shuffle(ordered)
    rebuilt = set(ordered)
    assert canonical(rebuilt) == canonical(values)


@given(st.floats(allow_nan=False))
def test_float_digest_matches_iff_repr_matches(x):
    assert canonical(x) == ("float", repr(x))


# ----------------------------------------------------------------------
# Type distinctions the canonical form must keep
# ----------------------------------------------------------------------


def test_bool_is_not_int():
    assert canonical(True) != canonical(1)
    assert canonical(False) != canonical(0)
    assert config_digest(task_fn, {"x": True}) != config_digest(
        task_fn, {"x": 1}
    )


def test_int_is_not_float():
    assert canonical(1) != canonical(1.0)


def test_str_is_not_bytes():
    assert canonical("ab") != canonical(b"ab")


def test_signed_zero_floats_differ():
    assert canonical(0.0) != canonical(-0.0)


def test_range_equals_explicit_sequence():
    assert canonical(range(4)) == canonical([0, 1, 2, 3])
    assert canonical(range(2, 5)) == canonical((2, 3, 4))


def test_different_functions_never_share_a_digest():
    assert config_digest(task_fn, {}) != config_digest(fn_for_contrast, {})


def fn_for_contrast(**kwargs):
    return kwargs


# ----------------------------------------------------------------------
# Domain types
# ----------------------------------------------------------------------


def test_failure_pattern_keys_on_crash_schedule():
    a = FailurePattern(4, {1: 5, 2: 9})
    b = FailurePattern(4, {2: 9, 1: 5})
    c = FailurePattern(4, {1: 5})
    assert canonical(a) == canonical(b)
    assert canonical(a) != canonical(c)
    assert canonical(a) != canonical(FailurePattern(5, {1: 5, 2: 9}))


def test_detector_keys_on_cache_key():
    one = PairedDetector(Omega(), Sigma("pivot"))
    two = PairedDetector(Omega(), Sigma("pivot"))
    assert one is not two
    assert canonical(one) == canonical(two)
    assert canonical(one) != canonical(
        PairedDetector(Omega(), Sigma("majority"))
    )


def test_uncacheable_detector_is_undigestable():
    class Stateful(Omega):
        def cache_key(self):
            return None

    with pytest.raises(UndigestableError):
        canonical(Stateful())
    with pytest.raises(UndigestableError):
        config_digest(task_fn, {"detector": Stateful()})


def test_config_key_protocol():
    class Opaque:
        def __init__(self, tag):
            self.tag = tag

        def config_key(self):
            return ("opaque", self.tag)

    assert canonical(Opaque("x")) == canonical(Opaque("x"))
    assert canonical(Opaque("x")) != canonical(Opaque("y"))


def test_arbitrary_object_is_undigestable():
    with pytest.raises(UndigestableError):
        canonical(object())
