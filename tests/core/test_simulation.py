"""Simulated schedules (Section 4.2): Lemmas 4.9 and 4.10 executably.

The key check: a schedule simulated from a DAG path, paired with the path's
tau-times, is a *legal run* of the subject algorithm using the ambient
detector — verified with the independent run validator.
"""

import random

import pytest

from repro.consensus.quorum_mr import QuorumMR
from repro.core.sampling import DagBuilder
from repro.core.simulation import canonical_schedule, find_deciding_schedule
from repro.detectors import Omega, PairedDetector, Sigma
from repro.kernel.failures import FailurePattern
from repro.kernel.messages import CoalescingDelivery
from repro.kernel.runs import PureRun, validate_run
from repro.kernel.system import System


@pytest.fixture(scope="module")
def dag_run():
    """A live A_DAG run over (Omega, Sigma) with one crash."""
    pattern = FailurePattern(3, {2: 35})
    detector = PairedDetector(Omega(), Sigma("pivot"))
    history = detector.sample_history(pattern, random.Random(8))
    processes = {p: DagBuilder() for p in range(3)}
    system = System(
        processes, pattern, history, seed=8, delivery=CoalescingDelivery()
    )
    system.run(max_steps=700)
    return pattern, history, processes, system


def proposals(n, v):
    return {p: v for p in range(n)}


class TestCanonicalSchedule:
    def test_schedule_is_compatible_with_path(self, dag_run):
        pattern, history, procs, _ = dag_run
        dag = procs[0].core.dag
        path = dag.samples_of(0)[:30]
        sim = canonical_schedule(QuorumMR(), 3, proposals(3, 0), path)
        assert len(sim.schedule) == len(sim.path)
        for step, sample in zip(sim.schedule, sim.path):
            assert step.pid == sample.pid
            assert step.detector_value == sample.d

    def test_lemma_4_9_simulated_schedule_is_a_run(self, dag_run):
        """(F, H, I, S, T) with T = tau-times is a run of A using D."""
        from repro.core.dag import greedy_chain

        pattern, history, procs, _ = dag_run
        dag = procs[0].core.dag
        chain = greedy_chain(dag.nodes())[:120]
        sim = canonical_schedule(QuorumMR(), 3, proposals(3, 1), chain)
        run = PureRun(
            automaton=QuorumMR(),
            n=3,
            proposals=proposals(3, 1),
            pattern=pattern,
            history=history.value,
            schedule=sim.schedule,
            times=[s.t for s in sim.path],
        )
        assert validate_run(run) == []

    def test_lemma_4_10_canonical_schedule_decides(self, dag_run):
        """Oldest-message delivery along a long fresh chain makes the target
        decide (the admissible-run construction of Lemma 4.10)."""
        from repro.core.dag import greedy_chain

        pattern, history, procs, _ = dag_run
        dag = procs[0].core.dag
        chain = greedy_chain(dag.nodes())
        sim = canonical_schedule(
            QuorumMR(), 3, proposals(3, 0), chain, target=0
        )
        assert sim.target_decided
        assert sim.decisions.get(0) == 0

    def test_early_stop_on_target_decision(self, dag_run):
        from repro.core.dag import greedy_chain

        _, _, procs, _ = dag_run
        chain = greedy_chain(procs[0].core.dag.nodes())
        sim = canonical_schedule(QuorumMR(), 3, proposals(3, 0), chain, target=0)
        full = canonical_schedule(
            QuorumMR(), 3, proposals(3, 0), chain, target=0,
            stop_on_target_decision=False,
        )
        assert len(sim.schedule) <= len(full.schedule)
        assert sim.target_decided_at == full.target_decided_at

    def test_validity_of_decided_value(self, dag_run):
        """In Sch(G, I_v) every decision is v (validity of the subject)."""
        from repro.core.dag import greedy_chain

        _, _, procs, _ = dag_run
        chain = greedy_chain(procs[1].core.dag.nodes())
        for v in (0, 1):
            sim = canonical_schedule(QuorumMR(), 3, proposals(3, v), chain, target=1)
            for decided in sim.decisions.values():
                assert decided == v


class TestFindDecidingSchedule:
    def test_finds_small_participant_schedules(self, dag_run):
        _, _, procs, _ = dag_run
        dag = procs[0].core.dag
        barrier = dag.get((0, 1))
        fresh = dag.descendants(barrier)
        sim = find_deciding_schedule(
            QuorumMR(), 3, proposals(3, 0), fresh, target=0
        )
        assert sim is not None and sim.target_decided
        assert 0 in sim.participants

    def test_none_when_target_absent(self, dag_run):
        _, _, procs, _ = dag_run
        dag = procs[0].core.dag
        only_p1 = [s for s in dag.nodes() if s.pid == 1]
        assert (
            find_deciding_schedule(QuorumMR(), 3, proposals(3, 0), only_p1, target=0)
            is None
        )

    def test_none_on_too_few_samples(self, dag_run):
        _, _, procs, _ = dag_run
        dag = procs[0].core.dag
        tiny = dag.samples_of(0)[:2]
        assert (
            find_deciding_schedule(QuorumMR(), 3, proposals(3, 0), tiny, target=0)
            is None
        )

    def test_non_minimizing_mode(self, dag_run):
        _, _, procs, _ = dag_run
        dag = procs[0].core.dag
        fresh = dag.descendants(dag.get((0, 1)))
        sim = find_deciding_schedule(
            QuorumMR(), 3, proposals(3, 1), fresh, target=0,
            minimize_participants=False,
        )
        assert sim is not None and sim.target_decided
