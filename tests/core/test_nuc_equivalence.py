"""Differential test: the A_nuc automaton port equals the coroutine.

Feed both renditions the *same* observation sequences — harvested from live
coroutine runs across environments and seeds — and require identical send
sequences and identical decisions at every step.  This pins the pure
automaton (used by extraction/model checking) to the readable coroutine.
"""

import random

import pytest

from repro.core.nuc import AnucProcess
from repro.core.nuc_automaton import AnucAutomaton
from repro.detectors import Omega, PairedDetector, SigmaNuPlus
from repro.kernel.automaton import DeliveredMessage
from repro.kernel.failures import FailurePattern
from repro.kernel.system import System


def live_run(pattern, proposals, seed):
    detector = PairedDetector(Omega(), SigmaNuPlus())
    history = detector.sample_history(pattern, random.Random(seed + 999))
    processes = {p: AnucProcess(proposals[p]) for p in range(pattern.n)}
    system = System(processes, pattern, history, seed=seed)
    result = system.run(
        max_steps=30000, stop_when=lambda s: s.all_correct_decided()
    )
    return result


def observations_of(result, pid):
    """(msg, d) sequence and per-step send lists of one process."""
    obs, sends = [], []
    for record in result.steps:
        if record.pid != pid:
            continue
        if record.message is not None:
            msg = DeliveredMessage(record.message.sender, record.message.payload)
        else:
            msg = None
        obs.append((msg, record.detector_value))
        sends.append([(m.dest, m.payload) for m in record.sends])
    return obs, sends


CASES = [
    (FailurePattern(2, {}), 0),
    (FailurePattern(3, {2: 15}), 1),
    (FailurePattern(3, {0: 5, 1: 20}), 2),
    (FailurePattern(4, {3: 30}), 3),
]


@pytest.mark.parametrize("pattern,seed", CASES, ids=[f"case{i}" for i in range(len(CASES))])
def test_automaton_replays_coroutine_exactly(pattern, seed):
    proposals = {p: p % 2 for p in range(pattern.n)}
    result = live_run(pattern, proposals, seed)
    assert result.decisions, "the source run must decide"

    automaton = AnucAutomaton()
    for pid in range(pattern.n):
        obs, expected_sends = observations_of(result, pid)
        state = automaton.initial_state(pid, pattern.n, proposals[pid])
        for i, (msg, d) in enumerate(obs):
            outcome = automaton.transition(state, pid, msg, d)
            state = outcome.state
            assert outcome.sends == expected_sends[i], (
                pid,
                i,
                outcome.sends,
                expected_sends[i],
            )
        assert automaton.decision(state) == result.decisions.get(pid), pid


def test_ablation_flags_match_too():
    pattern = FailurePattern(3, {})
    proposals = {p: "q" for p in range(3)}
    detector = PairedDetector(Omega(), SigmaNuPlus())
    history = detector.sample_history(pattern, random.Random(50))
    processes = {
        p: AnucProcess(proposals[p], enable_quorum_awareness=False)
        for p in range(3)
    }
    system = System(processes, pattern, history, seed=4)
    result = system.run(max_steps=20000, stop_when=lambda s: s.all_correct_decided())

    automaton = AnucAutomaton(enable_quorum_awareness=False)
    for pid in range(3):
        obs, expected_sends = observations_of(result, pid)
        state = automaton.initial_state(pid, 3, proposals[pid])
        for i, (msg, d) in enumerate(obs):
            outcome = automaton.transition(state, pid, msg, d)
            state = outcome.state
            assert outcome.sends == expected_sends[i], (pid, i)
        assert automaton.decision(state) == result.decisions.get(pid)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_native_automaton_in_live_system(seed):
    """The port also runs live (through AutomatonProcess) under schedules
    and delivery orders the coroutine never saw, and still solves
    nonuniform consensus."""
    from repro.consensus import check_nonuniform_consensus, consensus_outcome
    from repro.kernel.automaton import AutomatonProcess

    rng = random.Random(f"liveport/{seed}")
    n = rng.randint(2, 5)
    crashed = rng.sample(range(n), rng.randint(0, n - 1))
    pattern = FailurePattern(n, {p: rng.randint(0, 50) for p in crashed})
    proposals = {p: rng.choice(["L", "R"]) for p in range(n)}
    detector = PairedDetector(Omega(), SigmaNuPlus())
    history = detector.sample_history(pattern, random.Random(seed + 321))
    processes = {
        p: AutomatonProcess(AnucAutomaton(), proposals[p]) for p in range(n)
    }
    system = System(processes, pattern, history, seed=seed)
    result = system.run(
        max_steps=30000, stop_when=lambda s: s.all_correct_decided()
    )
    assert result.stop_reason == "stop_condition", pattern
    assert check_nonuniform_consensus(consensus_outcome(result, proposals)).ok
