"""White-box tests of A_nuc's phases, fed observation by observation.

These drive a single AnucProcess through a crafted sequence of observations
(no System, no scheduler) and inspect the exact messages it emits — the
paper's pseudocode, line by line, at the message level.
"""

import pytest

from repro.core.nuc import ACK, LEAD, PROP, REP, SAW, AnucProcess
from repro.kernel.automaton import (
    CoroutineRuntime,
    DeliveredMessage,
    Observation,
    ProcessContext,
)

N = 2
LEADER0_Q01 = (0, frozenset({0, 1}))  # leader 0, quorum {0,1}


class Driver:
    """Feeds observations to one A_nuc process and collects its sends."""

    def __init__(self, pid=0, proposal="v", **kwargs):
        self.ctx = ProcessContext(pid, N)
        self.process = AnucProcess(proposal, **kwargs)
        self.runtime = CoroutineRuntime(self.process, self.ctx)
        self.time = 0
        self.sent = []

    def step(self, message=None, d=LEADER0_Q01):
        obs = Observation(message=message, detector_value=d, time=self.time)
        sends = self.runtime.step(obs)
        self.time += 1
        self.sent.extend(sends)
        return sends

    def deliver(self, sender, payload, d=LEADER0_Q01):
        return self.step(DeliveredMessage(sender, payload), d)

    def sent_tags(self):
        return [payload[0] for _, payload in self.sent]


class TestPhaseProgression:
    def test_round_opens_with_lead_broadcast(self):
        driver = Driver()
        sends = driver.step()  # first step: LEAD(1) queued at init
        lead = [p for _, p in sends if p[0] == LEAD]
        assert len(lead) == N  # broadcast to everyone incl. self
        tag, k, x, hist = lead[0]
        assert (k, x) == (1, "v")
        assert hist == {}  # empty history at round 1

    def test_waits_for_leader_lead_only(self):
        driver = Driver()
        driver.step()
        # LEAD from non-leader process 1 does not unblock phase 1
        sends = driver.deliver(1, (LEAD, 1, "w", {}))
        assert all(p[0] != REP for _, p in sends)
        # own LEAD (leader is 0 = self) unblocks and REP goes out
        sends = driver.deliver(0, (LEAD, 1, "v", {}))
        assert [p[0] for _, p in sends].count(REP) == N

    def test_rep_wait_collects_whole_quorum(self):
        driver = Driver()
        driver.step()
        driver.deliver(0, (LEAD, 1, "v", {}))
        # own REP alone is not the full quorum {0,1}
        sends = driver.deliver(0, (REP, 1, "v"))
        assert all(p[0] != PROP for _, p in sends)
        sends = driver.deliver(1, (REP, 1, "v"))
        props = [p for _, p in sends if p[0] == PROP]
        assert len(props) == N
        assert props[0][2] == "v"  # unanimous reports propose v

    def test_mixed_reports_propose_unknown(self):
        driver = Driver()
        driver.step()
        driver.deliver(0, (LEAD, 1, "v", {}))
        driver.deliver(0, (REP, 1, "v"))
        sends = driver.deliver(1, (REP, 1, "w"))
        props = [p for _, p in sends if p[0] == PROP]
        assert props and props[0][2] == "?"

    def test_saw_sent_on_first_quorum_use(self):
        driver = Driver()
        driver.step()
        driver.deliver(0, (LEAD, 1, "v", {}))
        driver.deliver(0, (REP, 1, "v"))
        driver.deliver(1, (REP, 1, "v"))
        driver.deliver(0, (PROP, 1, "v", {}))
        sends = driver.deliver(1, (PROP, 1, "v", {}))
        saws = [(d, p) for d, p in sends if p[0] == SAW]
        assert {d for d, _ in saws} == {0, 1}
        assert all(p[2] == frozenset({0, 1}) for _, p in saws)

    def test_no_decision_in_round_one(self):
        driver = Driver()
        driver.step()
        driver.deliver(0, (LEAD, 1, "v", {}))
        driver.deliver(0, (REP, 1, "v"))
        driver.deliver(1, (REP, 1, "v"))
        driver.deliver(0, (PROP, 1, "v", {}))
        driver.deliver(1, (PROP, 1, "v", {}))
        assert driver.ctx.decision is None  # seen-gate blocks round 1

    def test_full_two_round_decision(self):
        """Run both rounds by hand: SAW/ACK completes during round 1, the
        decision lands in round 2."""
        driver = Driver()
        driver.step()
        driver.deliver(0, (LEAD, 1, "v", {}))
        driver.deliver(0, (REP, 1, "v"))
        driver.deliver(1, (REP, 1, "v"))
        driver.deliver(0, (PROP, 1, "v", {}))
        driver.deliver(1, (PROP, 1, "v", {}))  # -> SAW sent, round 2 opens
        quorum = frozenset({0, 1})
        # deliver own SAW; handler replies ACK(…, k) with current round
        driver.deliver(0, (SAW, 0, quorum))
        # feed the two ACKs (own + from 1), with round-1 tags
        driver.deliver(0, (ACK, 0, quorum, 1))
        driver.deliver(1, (ACK, 1, quorum, 1))
        # round 2 now plays out
        driver.deliver(0, (LEAD, 2, "v", {}))
        driver.deliver(0, (REP, 2, "v"))
        driver.deliver(1, (REP, 2, "v"))
        driver.deliver(0, (PROP, 2, "v", {}))
        driver.deliver(1, (PROP, 2, "v", {}))
        assert driver.ctx.decision == "v"
        assert driver.process.trace.decided_round == 2


class TestHandlers:
    def test_saw_acked_within_the_receiving_step(self):
        driver = Driver()
        driver.step()
        quorum = frozenset({0, 1})
        sends = driver.deliver(1, (SAW, 1, quorum))
        acks = [(d, p) for d, p in sends if p[0] == ACK]
        assert acks == [(1, (ACK, 0, quorum, 1))]

    def test_saw_inserts_into_history(self):
        driver = Driver()
        driver.step()
        quorum = frozenset({1})
        driver.deliver(1, (SAW, 1, quorum))
        assert quorum in driver.process.history[1]

    def test_history_import_from_lead(self):
        driver = Driver()
        driver.step()
        incoming = {1: frozenset({frozenset({1})})}
        driver.deliver(0, (LEAD, 1, "v", incoming))
        assert frozenset({1}) in driver.process.history[1]

    def test_get_quorum_records_own_polls(self):
        driver = Driver()
        driver.step()
        driver.deliver(0, (LEAD, 1, "v", {}))
        # now in the REP wait: each step polls the quorum into H[0]
        driver.step(d=(0, frozenset({0})))
        assert frozenset({0}) in driver.process.history[0]


class TestAblationsWhitebox:
    def test_awareness_off_decides_in_round_one(self):
        driver = Driver(enable_quorum_awareness=False)
        driver.step()
        driver.deliver(0, (LEAD, 1, "v", {}))
        driver.deliver(0, (REP, 1, "v"))
        driver.deliver(1, (REP, 1, "v"))
        driver.deliver(0, (PROP, 1, "v", {}))
        driver.deliver(1, (PROP, 1, "v", {}))
        assert driver.ctx.decision == "v"
        assert driver.process.trace.decided_round == 1

    def test_distrust_off_adopts_from_anyone(self):
        # poison the history so that with distrust on, leader 1 is refused
        driver = Driver(enable_distrust=False)
        driver.step(d=(1, frozenset({0})))
        # own quorum {0} known; leader 1's history says it saw {1}
        incoming = {1: frozenset({frozenset({1})})}
        driver.deliver(1, (LEAD, 1, "w", incoming), d=(1, frozenset({0})))
        # it adopted w: the REP broadcast carries w
        reps = [p for _, p in driver.sent if p[0] == REP]
        assert reps and reps[-1][2] == "w"

    def test_distrust_on_refuses_poisoned_leader(self):
        driver = Driver()
        driver.step(d=(1, frozenset({0})))
        # phase 1 never polls the quorum, so plant {0} in H[0] through a
        # SAW notification (the handler inserts into H[payload's owner])
        driver.deliver(0, (SAW, 0, frozenset({0})), d=(1, frozenset({0})))
        incoming = {1: frozenset({frozenset({1})})}
        driver.deliver(1, (LEAD, 1, "w", incoming), d=(1, frozenset({0})))
        reps = [p for _, p in driver.sent if p[0] == REP]
        assert reps and reps[-1][2] == "v"  # kept its own estimate
        assert (1, 1) in driver.process.trace.distrust_events
