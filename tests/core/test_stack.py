"""The full (Omega, Sigma^nu) stack (Theorem 6.28)."""

import random

import pytest

from repro.consensus import check_nonuniform_consensus, consensus_outcome
from repro.core.stack import StackedNucProcess
from repro.detectors import (
    Omega,
    PairedDetector,
    SigmaNu,
    check_sigma_nu_plus,
    recorded_output_history,
)
from repro.harness.runner import run_stack
from repro.kernel.failures import FailurePattern
from repro.kernel.messages import CoalescingDelivery
from repro.kernel.system import System


@pytest.mark.parametrize("seed", range(5))
class TestStackSweep:
    def test_solves_nonuniform_consensus_from_sigma_nu(self, seed):
        rng = random.Random(f"stack/{seed}")
        n = rng.randint(2, 5)
        crashed = rng.sample(range(n), rng.randint(0, n - 1))
        pattern = FailurePattern(n, {p: rng.randint(0, 50) for p in crashed})
        proposals = {p: rng.choice([0, 1]) for p in range(n)}
        outcome = run_stack(pattern, proposals, seed=seed)
        assert outcome.result.stop_reason == "stop_condition", pattern
        assert outcome.nonuniform.ok, (pattern, outcome.nonuniform.violations)

    def test_emulated_sigma_nu_plus_is_valid(self, seed):
        rng = random.Random(f"stackchk/{seed}")
        n = rng.randint(2, 4)
        crashed = rng.sample(range(n), rng.randint(0, n - 1))
        pattern = FailurePattern(n, {p: rng.randint(0, 40) for p in crashed})
        proposals = {p: "z" for p in range(n)}
        outcome = run_stack(pattern, proposals, seed=seed)
        assert outcome.boosted_check.ok, outcome.boosted_check.violations[:2]


class TestStackWiring:
    def test_channels_do_not_leak_between_subprograms(self):
        """Booster messages must never reach A_nuc and vice versa; if they
        did, payload shapes would not match and the run would crash."""
        pattern = FailurePattern(3, {})
        proposals = {p: p for p in range(3)}
        outcome = run_stack(pattern, proposals, seed=1, max_steps=20000)
        assert outcome.result.decisions

    def test_all_stack_messages_are_channel_tagged(self):
        pattern = FailurePattern(2, {})
        detector = PairedDetector(Omega(), SigmaNu())
        history = detector.sample_history(pattern, random.Random(0))
        processes = {p: StackedNucProcess(p, 2) for p in range(2)}
        system = System(
            processes, pattern, history, seed=0, delivery=CoalescingDelivery()
        )
        system.run(max_steps=200)
        for record in system.steps:
            for message in record.sends:
                channel, _payload = message.payload
                assert channel in ("B", "C")

    def test_nuc_sees_boosted_quorums_not_raw_sigma_nu(self):
        """A_nuc's used quorums must all contain the user (self-inclusion),
        which raw Sigma^nu does not guarantee — evidence the booster sits in
        between."""
        pattern = FailurePattern(3, {0: 25})
        proposals = {p: "w" for p in range(3)}
        detector = PairedDetector(Omega(), SigmaNu("junk"))
        history = detector.sample_history(pattern, random.Random(2))
        processes = {p: StackedNucProcess(proposals[p], 3) for p in range(3)}
        system = System(
            processes, pattern, history, seed=2, delivery=CoalescingDelivery()
        )
        system.run(max_steps=40000, stop_when=lambda s: s.all_correct_decided())
        for p in range(3):
            for _, quorum in processes[p].nuc.trace.quorums_used:
                assert p in quorum

    def test_initial_output_is_pi(self):
        process = StackedNucProcess("v", 4)
        assert process.initial_output() == frozenset(range(4))
