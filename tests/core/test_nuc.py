"""A_nuc (Figs. 4-5, Theorem 6.27): sweeps + the hardening mechanisms."""

import random

import pytest

from repro.consensus import check_nonuniform_consensus, consensus_outcome
from repro.core.nuc import (
    AnucProcess,
    considers_faulty,
    distrusts,
    snapshot_history,
)
from repro.detectors import Omega, PairedDetector, SigmaNuPlus
from repro.kernel.failures import FailurePattern
from repro.kernel.scheduler import WeightedScheduler
from repro.kernel.system import System


def run_anuc(pattern, proposals, seed=0, max_steps=30000, **kwargs):
    detector = PairedDetector(Omega(), SigmaNuPlus())
    history = detector.sample_history(pattern, random.Random(seed + 999))
    processes = {p: AnucProcess(proposals[p]) for p in range(pattern.n)}
    system = System(processes, pattern, history, seed=seed, **kwargs)
    result = system.run(
        max_steps=max_steps, stop_when=lambda s: s.all_correct_decided()
    )
    return result, processes


class TestDistrustFunction:
    def test_empty_histories_distrust_nobody(self):
        history = {p: set() for p in range(3)}
        assert not distrusts(history, 0, 1, 3)

    def test_disjoint_from_own_quorum_means_considered_faulty(self):
        history = {
            0: {frozenset({0, 1})},
            1: set(),
            2: {frozenset({2})},
        }
        assert considers_faulty(history, 0) == {2}

    def test_self_never_considered_faulty_with_self_inclusive_quorums(self):
        """Lemma 6.20 under self-inclusion."""
        history = {0: {frozenset({0}), frozenset({0, 1})}, 1: set(), 2: set()}
        assert 0 not in considers_faulty(history, 0)

    def test_distrust_via_third_party(self):
        """p distrusts q when a *non-faulty-looking* r has a quorum disjoint
        from q's — even if p's own quorums intersect q's."""
        history = {
            0: {frozenset({0, 1, 2})},
            1: {frozenset({0, 1})},
            2: {frozenset({2})},  # intersects 0's quorum, misses 1's
        }
        assert not considers_faulty(history, 0)
        assert distrusts(history, 0, 2, 3)

    def test_no_distrust_when_witness_considered_faulty(self):
        """If the only disjointness witness is itself considered faulty,
        q is not distrusted (the F_p filter of line 53)."""
        history = {
            0: {frozenset({0, 1})},
            1: {frozenset({0, 1})},
            2: {frozenset({2})},  # considered faulty by 0
            3: {frozenset({2, 3})},  # disjoint only from 2's quorums? no:
        }
        # {2,3} vs {0,1} is disjoint, and 3 is not in F_0... build carefully:
        history = {
            0: {frozenset({0, 1})},
            1: set(),
            2: {frozenset({2})},       # 2 in F_0 ({2} misses {0,1})
            3: {frozenset({2, 3})},    # {2,3} misses {0,1} => 3 in F_0 too
        }
        faulty = considers_faulty(history, 0)
        assert faulty == {2, 3}
        # q=2's quorums are disjoint from 3's? {2} vs {2,3} intersect; the
        # only disjointness witnesses for q=2 are 0 itself (not faulty) via
        # {0,1}: so 2 IS distrusted.
        assert distrusts(history, 0, 2, 4)
        # but if we drop 0's own quorums nobody is distrusted:
        history[0] = set()
        assert not distrusts(history, 0, 2, 4)

    def test_snapshot_history_immutable_copy(self):
        history = {0: {frozenset({0})}, 1: set()}
        snap = snapshot_history(history)
        history[0].add(frozenset({0, 1}))
        assert snap[0] == frozenset({frozenset({0})})
        assert 1 not in snap  # empty entries dropped


@pytest.mark.parametrize("seed", range(6))
class TestAnucSweep:
    def test_nonuniform_consensus_any_environment(self, seed):
        rng = random.Random(f"nuc/{seed}")
        n = rng.randint(2, 6)
        crashed = rng.sample(range(n), rng.randint(0, n - 1))
        pattern = FailurePattern(n, {p: rng.randint(0, 60) for p in crashed})
        proposals = {p: rng.choice(["A", "B"]) for p in range(n)}
        result, _ = run_anuc(pattern, proposals, seed=seed)
        assert result.stop_reason == "stop_condition", pattern
        report = check_nonuniform_consensus(consensus_outcome(result, proposals))
        assert report.ok, (pattern, report.violations)


class TestAnucMechanisms:
    def test_decides_only_after_quorum_awareness(self):
        """The seen/ack gate: nobody decides in round 1 (seen[Q] < k needs a
        completed SAW/ACK exchange from an earlier round)."""
        pattern = FailurePattern(3, {})
        proposals = {p: "v" for p in range(3)}
        result, processes = run_anuc(pattern, proposals, seed=2)
        for p in range(3):
            if processes[p].trace.decided_round is not None:
                assert processes[p].trace.decided_round >= 2

    def test_unanimous_proposals_decide_same_value(self):
        pattern = FailurePattern(4, {1: 12})
        proposals = {p: "only" for p in range(4)}
        result, _ = run_anuc(pattern, proposals, seed=3)
        assert set(result.decided_correct().values()) == {"only"}

    def test_quorum_histories_propagate(self):
        """After a run, correct processes know each other's used quorums."""
        pattern = FailurePattern(3, {})
        proposals = {p: p for p in range(3)}
        result, processes = run_anuc(pattern, proposals, seed=4)
        for p in pattern.correct:
            history = processes[p].history
            for q in pattern.correct:
                used = {quorum for _, quorum in processes[q].trace.quorums_used}
                assert used & history[q] or not used

    def test_minority_correct_decides(self):
        """The headline strength: decisions with half or more faulty."""
        pattern = FailurePattern(4, {0: 20, 1: 25, 2: 30})
        proposals = {0: "a", 1: "b", 2: "c", 3: "d"}
        result, _ = run_anuc(pattern, proposals, seed=5)
        assert 3 in result.decisions

    def test_two_processes_one_faulty(self):
        pattern = FailurePattern(2, {0: 8})
        proposals = {0: "x", 1: "y"}
        result, _ = run_anuc(pattern, proposals, seed=6)
        assert result.decisions.get(1) in {"x", "y"}

    def test_skewed_scheduler(self):
        pattern = FailurePattern(3, {2: 30})
        proposals = {p: str(p) for p in range(3)}
        result, _ = run_anuc(
            pattern,
            proposals,
            seed=7,
            scheduler=WeightedScheduler({0: 20.0}),
        )
        report = check_nonuniform_consensus(consensus_outcome(result, proposals))
        assert report.ok

    def test_trace_records_rounds_and_quorums(self):
        pattern = FailurePattern(3, {})
        proposals = {p: "v" for p in range(3)}
        _, processes = run_anuc(pattern, proposals, seed=8)
        for p in range(3):
            trace = processes[p].trace
            assert trace.rounds_started >= 1
            assert trace.quorums_used, "phase 3 must complete at least once"
            for k, quorum in trace.quorums_used:
                assert p in quorum  # self-inclusion of Sigma^nu+ quorums


class TestLateStabilizationStress:
    """Liveness under pathologically late detector stabilization."""

    def test_anuc_decides_with_very_late_omega(self):
        pattern = FailurePattern(3, {2: 10})
        proposals = {p: "s" for p in range(3)}
        detector = PairedDetector(
            Omega(stabilization_slack=400, noise_changes=12),
            SigmaNuPlus(stabilization_slack=300),
        )
        history = detector.sample_history(pattern, random.Random(77))
        processes = {p: AnucProcess(proposals[p]) for p in range(3)}
        system = System(processes, pattern, history, seed=77)
        result = system.run(
            max_steps=80000, stop_when=lambda s: s.all_correct_decided()
        )
        assert result.stop_reason == "stop_condition"
        from repro.consensus import check_nonuniform_consensus, consensus_outcome

        assert check_nonuniform_consensus(
            consensus_outcome(result, proposals)
        ).ok

    def test_quorum_mr_decides_with_shrinking_sigma(self):
        from repro.consensus import (
            QuorumMR,
            check_uniform_consensus,
            consensus_outcome,
        )
        from repro.detectors import Sigma
        from repro.kernel.automaton import AutomatonProcess

        pattern = FailurePattern(4, {0: 20})
        proposals = {p: p % 2 for p in range(4)}
        detector = PairedDetector(Omega(), Sigma("shrinking"))
        history = detector.sample_history(pattern, random.Random(5))
        processes = {
            p: AutomatonProcess(QuorumMR(), proposals[p]) for p in range(4)
        }
        system = System(processes, pattern, history, seed=5)
        result = system.run(
            max_steps=30000, stop_when=lambda s: s.all_correct_decided()
        )
        assert result.stop_reason == "stop_condition"
        assert check_uniform_consensus(
            consensus_outcome(result, proposals)
        ).ok
