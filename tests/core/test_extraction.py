"""T_{D -> Sigma^nu} (Fig. 2, Theorems 5.4 / 5.8) on live runs."""

import random

import pytest

from repro.consensus.flood_p import FloodSetPerfect
from repro.consensus.mostefaoui_raynal import MostefaouiRaynal
from repro.consensus.quorum_mr import QuorumMR
from repro.core.extraction import ExtractionSearch
from repro.detectors import Omega, PairedDetector, Perfect, Sigma
from repro.harness.runner import run_extraction
from repro.kernel.failures import FailurePattern
from repro.kernel.runs import merge_runs, mergeable, validate_run, PureRun


def patterns(n, seed, count=2, max_faulty=None):
    rng = random.Random(f"x/{n}/{seed}")
    bound = n - 1 if max_faulty is None else max_faulty
    out = []
    for _ in range(count):
        crashed = rng.sample(range(n), rng.randint(0, bound))
        out.append(FailurePattern(n, {p: rng.randint(0, 40) for p in crashed}))
    return out


class TestExtractionFromQuorumMR:
    @pytest.mark.parametrize("n", [3, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_emits_valid_sigma_nu(self, n, seed):
        detector = PairedDetector(Omega(), Sigma("pivot"))
        for pattern in patterns(n, seed):
            outcome = run_extraction(QuorumMR(), detector, pattern, seed=seed)
            assert outcome.result.stop_reason == "stop_condition", pattern
            assert outcome.sigma_nu_check.ok, (
                pattern,
                outcome.sigma_nu_check.violations[:2],
            )

    def test_theorem_5_8_uniform_subject_yields_full_sigma(self):
        """The subject solves *uniform* consensus, so the same run's output
        must satisfy full Sigma, not just Sigma^nu."""
        detector = PairedDetector(Omega(), Sigma("pivot"))
        for pattern in patterns(3, seed=7):
            outcome = run_extraction(QuorumMR(), detector, pattern, seed=7)
            assert outcome.sigma_check.ok, pattern

    def test_lone_correct_process_extracts_singleton(self):
        """With a single correct process and pivot quorums shrinking onto it,
        extraction discovers that it can decide alone — the hallmark of
        Sigma^nu (such a history violates Sigma only if some *other* process
        output a disjoint quorum, which completeness never forces here)."""
        pattern = FailurePattern(3, {0: 10, 1: 15})
        detector = PairedDetector(
            Omega(leader=2), Sigma("pivot", pivot=2)
        )
        outcome = run_extraction(QuorumMR(), detector, pattern, seed=3)
        final_quorums = [
            frozenset(q) for _, q in outcome.result.outputs[2][1:]
        ]
        assert final_quorums, "correct process must keep outputting"
        assert final_quorums[-1] == frozenset({2})


class TestExtractionFromOtherSubjects:
    def test_floodset_with_perfect_detector(self):
        for pattern in patterns(3, seed=2):
            outcome = run_extraction(
                FloodSetPerfect(), Perfect(lag=4), pattern, seed=2
            )
            assert outcome.result.stop_reason == "stop_condition", pattern
            assert outcome.sigma_nu_check.ok, pattern

    def test_mr_with_omega_in_majority_environment(self):
        for pattern in patterns(3, seed=4, max_faulty=1):
            outcome = run_extraction(MostefaouiRaynal(), Omega(), pattern, seed=4)
            assert outcome.result.stop_reason == "stop_condition", pattern
            assert outcome.sigma_nu_check.ok, pattern


class TestEvidence:
    @pytest.fixture(scope="class")
    def evidence_run(self):
        pattern = FailurePattern(3, {2: 25})
        detector = PairedDetector(Omega(), Sigma("pivot"))
        history = detector.sample_history(pattern, random.Random(0 ^ 0x5EED))
        from repro.core.extraction import SigmaNuExtractor
        from repro.kernel.messages import CoalescingDelivery
        from repro.kernel.system import System

        processes = {
            p: SigmaNuExtractor(QuorumMR(), 3) for p in range(3)
        }
        system = System(
            processes,
            pattern,
            history,
            seed=0,
            delivery=CoalescingDelivery(),
        )
        system.run(
            max_steps=4000, stop_when=lambda s: s.correct_output_count(3)
        )
        return pattern, history, processes

    def test_quorum_is_union_of_participants(self, evidence_run):
        _, _, processes = evidence_run
        for p in range(3):
            for ev in processes[p].evidence:
                assert ev.quorum == ev.sim0.participants | ev.sim1.participants

    def test_deciding_schedules_decide_opposite_values(self, evidence_run):
        _, _, processes = evidence_run
        found = False
        for p in range(3):
            for ev in processes[p].evidence:
                assert ev.sim0.decisions.get(p) == 0
                assert ev.sim1.decisions.get(p) == 1
                found = True
        assert found, "at least one quorum must have been extracted"

    def test_evidence_schedules_are_runs(self, evidence_run):
        """Lemma 4.9 applied to the extractor's own evidence."""
        pattern, history, processes = evidence_run
        checked = 0
        for p in range(3):
            for ev in processes[p].evidence[:2]:
                for sim, value in ((ev.sim0, 0), (ev.sim1, 1)):
                    run = PureRun(
                        automaton=QuorumMR(),
                        n=3,
                        proposals={q: value for q in range(3)},
                        pattern=pattern,
                        history=history.value,
                        schedule=sim.schedule,
                        times=[s.t for s in sim.path],
                    )
                    assert validate_run(run) == [], (p, value)
                    checked += 1
        assert checked > 0

    def test_lemma_5_3_merge_contradiction_machinery(self, evidence_run):
        """The necessity proof's engine: if two processes ever extracted
        disjoint deciding schedules (from I_0 and I_1 respectively), merging
        them would yield a single run of A deciding both 0 and 1.  With a
        correct subject this never happens for correct processes — so we
        verify the *mergeable* pairs of evidence schedules never decide
        conflicting values among correct processes."""
        pattern, history, processes = evidence_run
        pairs_checked = 0
        for p in pattern.correct:
            for q in pattern.correct:
                for ev_p in processes[p].evidence[:2]:
                    for ev_q in processes[q].evidence[:2]:
                        sim0, sim1 = ev_p.sim0, ev_q.sim1
                        if sim0.participants & sim1.participants:
                            continue  # not mergeable: quorums intersect
                        run0 = PureRun(
                            automaton=QuorumMR(),
                            n=3,
                            proposals={r: 0 for r in range(3)},
                            pattern=pattern,
                            history=history.value,
                            schedule=sim0.schedule,
                            times=[s.t for s in sim0.path],
                        )
                        run1 = PureRun(
                            automaton=QuorumMR(),
                            n=3,
                            proposals={r: 1 for r in range(3)},
                            pattern=pattern,
                            history=history.value,
                            schedule=sim1.schedule,
                            times=[s.t for s in sim1.path],
                        )
                        if not mergeable(run0, run1):
                            continue
                        merged = merge_runs(run0, run1)
                        assert validate_run(merged) == []
                        sim = merged.simulator()
                        sim.run_schedule(merged.schedule, merged.times)
                        decided = sim.decided_pids()
                        # p decided 0 and q decided 1 in one run of A: this
                        # would contradict nonuniform agreement for correct
                        # p, q — the subject is correct, so it cannot occur.
                        assert not (decided.get(p) == 0 and decided.get(q) == 1)
                        pairs_checked += 1
        # The assertion content is the no-conflict fact; pairs_checked may
        # be zero precisely because correct quorums always intersect.


class TestSearchKnobs:
    def test_search_growth_throttles_outputs(self):
        pattern = FailurePattern(3, {})
        detector = PairedDetector(Omega(), Sigma("pivot"))
        eager = run_extraction(
            QuorumMR(), detector, pattern, seed=5,
            search=ExtractionSearch(search_growth=6),
            max_steps=1200, min_outputs=2,
        )
        lazy = run_extraction(
            QuorumMR(), detector, pattern, seed=5,
            search=ExtractionSearch(search_growth=400),
            max_steps=1200, min_outputs=2,
        )
        eager_outputs = sum(len(v) - 1 for v in eager.result.outputs.values())
        lazy_outputs = sum(len(v) - 1 for v in lazy.result.outputs.values())
        assert eager_outputs >= lazy_outputs

    def test_initial_output_is_pi(self):
        from repro.core.extraction import SigmaNuExtractor

        extractor = SigmaNuExtractor(QuorumMR(), 4)
        assert extractor.initial_output() == frozenset(range(4))


class TestExtractionFromChandraToueg:
    def test_ct_with_eventually_perfect_in_majority_environment(self):
        from repro.consensus.chandra_toueg import ChandraTouegS
        from repro.detectors.perfect import EventuallyPerfect

        for pattern in patterns(3, seed=6, max_faulty=1):
            outcome = run_extraction(
                ChandraTouegS(), EventuallyPerfect(), pattern, seed=6
            )
            assert outcome.result.stop_reason == "stop_condition", pattern
            assert outcome.sigma_nu_check.ok, (
                pattern,
                outcome.sigma_nu_check.violations[:2],
            )
            # CT solves uniform consensus, so Theorem 5.8 applies as well.
            assert outcome.sigma_check.ok, pattern


class TestSubsetSizeCap:
    def test_max_subset_size_bounds_quorums(self):
        pattern = FailurePattern(3, {})
        detector = PairedDetector(Omega(), Sigma("full"))
        capped = run_extraction(
            QuorumMR(), detector, pattern, seed=9,
            search=ExtractionSearch(max_subset_size=2),
            max_steps=1200, min_outputs=1,
        )
        # with 'full' quorums = Pi pre-stabilization, size-2 subsets cannot
        # decide until quorums shrink to correct subsets of size <= 2; any
        # quorum that *was* emitted respects the cap (union of two deciding
        # schedules, each over <= 2 participants)
        for p in range(3):
            for _, q in capped.result.outputs[p][1:]:
                assert len(q) <= 4  # union of two <=2-subsets
