"""T_{Sigma^nu -> Sigma^nu+} (Fig. 3, Theorem 6.7) — cascade units + runs."""

import random

import pytest

from repro.core.boosting import (
    find_closed_path,
    frontier_cascade,
    path_participants,
    trusted,
)
from repro.core.dag import DagCore, SampleDAG
from repro.detectors import SigmaNu, check_sigma_nu, check_sigma_nu_plus
from repro.harness.runner import run_boosting
from repro.kernel.failures import FailurePattern


def exchange(cores, order):
    """Drive DagCores: each entry (p, quorum) absorbs everyone then samples."""
    t = [0]

    def step(p, quorum):
        for q in range(len(cores)):
            if q != p:
                cores[p].absorb(cores[q].dag)
        sample = cores[p].sample(frozenset(quorum), t[0])
        t[0] += 1
        return sample

    return [step(p, q) for p, q in order]


class TestFrontierCascade:
    def test_single_member_chain_is_top(self):
        cores = [DagCore(p, 2) for p in range(2)]
        samples = exchange(cores, [(0, {0}), (0, {0})])
        dag = cores[0].dag
        chain = frontier_cascade(dag, samples[-1], frozenset({0}), samples[0])
        assert chain == [samples[-1]]

    def test_two_member_cascade_orders_by_ancestry(self):
        cores = [DagCore(p, 2) for p in range(2)]
        s = exchange(cores, [(0, {0}), (1, {0, 1}), (0, {0, 1})])
        dag = cores[0].dag
        chain = frontier_cascade(dag, s[2], frozenset({0, 1}), s[0])
        assert [x.key for x in chain] == [s[1].key, s[2].key]
        for u, v in zip(chain, chain[1:]):
            assert SampleDAG.is_ancestor(u, v)

    def test_fails_when_member_missing(self):
        cores = [DagCore(p, 3) for p in range(3)]
        s = exchange(cores, [(0, {0}), (1, {0, 1})])
        dag = cores[1].dag
        assert (
            frontier_cascade(dag, s[1], frozenset({1, 2}), s[1]) is None
        )

    def test_fails_below_barrier(self):
        cores = [DagCore(p, 2) for p in range(2)]
        s = exchange(cores, [(1, {1}), (0, {0}), (0, {0})])
        dag = cores[0].dag
        # process 1's only sample precedes 0's barrier: not fresh
        barrier = s[1]
        assert frontier_cascade(dag, s[2], frozenset({0, 1}), barrier) is None

    def test_chain_is_fresh(self):
        cores = [DagCore(p, 2) for p in range(2)]
        s = exchange(
            cores,
            [(0, {0}), (1, {0, 1}), (0, {0, 1}), (1, {0, 1}), (0, {0, 1})],
        )
        dag = cores[0].dag
        barrier = s[2]
        chain = frontier_cascade(dag, s[4], frozenset({0, 1}), barrier)
        assert chain is not None
        for node in chain:
            assert node.key == barrier.key or SampleDAG.is_ancestor(barrier, node)


class TestFindClosedPath:
    def test_self_trusting_quorum_closes_immediately(self):
        cores = [DagCore(p, 2) for p in range(2)]
        s = exchange(cores, [(0, {0})])
        path = find_closed_path(cores[0].dag, 0, s[0])
        assert path is not None
        assert path_participants(path) == {0}
        assert trusted(path) == {0}

    def test_closure_widens_to_quorum_members(self):
        cores = [DagCore(p, 2) for p in range(2)]
        s = exchange(cores, [(1, {0, 1}), (0, {0, 1}), (1, {0, 1}), (0, {0, 1})])
        path = find_closed_path(cores[0].dag, 0, s[1])
        assert path is not None
        assert path_participants(path) == {0, 1}
        assert trusted(path) <= path_participants(path)

    def test_waits_when_trusted_member_has_no_fresh_sample(self):
        cores = [DagCore(p, 3) for p in range(3)]
        s = exchange(cores, [(0, {0, 2})])
        assert find_closed_path(cores[0].dag, 0, s[0]) is None

    def test_none_for_unsampled_process(self):
        dag = SampleDAG.empty(2)
        dag, s = dag.add_local_sample(1, frozenset({1}))
        assert find_closed_path(dag, 0, s) is None

    def test_closed_path_invariant_holds_by_construction(self):
        """Whatever the quorum shapes, a found path satisfies Fig. 3 line 15."""
        rng = random.Random(4)
        cores = [DagCore(p, 3) for p in range(3)]
        order = []
        for i in range(60):
            p = rng.randrange(3)
            quorum = set(rng.sample(range(3), rng.randint(1, 3))) | {p}
            order.append((p, quorum))
        samples = exchange(cores, order)
        for p in range(3):
            own = cores[p].dag.samples_of(p)
            if not own:
                continue
            path = find_closed_path(cores[p].dag, p, own[0])
            if path is not None:
                assert p in path_participants(path)
                assert trusted(path) <= path_participants(path)


class TestBoosterRuns:
    @pytest.mark.parametrize("style", ["selfish", "junk", "obedient"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_outputs_satisfy_sigma_nu_plus(self, style, seed):
        rng = random.Random(f"boost/{style}/{seed}")
        n = rng.randint(2, 5)
        crashed = rng.sample(range(n), rng.randint(0, n - 1))
        pattern = FailurePattern(n, {p: rng.randint(0, 40) for p in crashed})
        outcome = run_boosting(
            pattern, seed=seed, detector=SigmaNu(style)
        )
        assert outcome.result.stop_reason == "stop_condition", pattern
        assert outcome.check.ok, (pattern, outcome.check.violations[:2])

    def test_input_weaker_than_output(self):
        """The run's input is a Sigma^nu history that need NOT satisfy
        Sigma^nu+ — boosting adds real content."""
        pattern = FailurePattern(3, {2: 20})
        detector = SigmaNu("selfish", pivot=0)
        history = detector.sample_history(pattern, random.Random(11))
        # faulty process 2 outputs {2}: fails conditional nonintersection
        # only if {2} misses correct quorums while containing a correct
        # process — it doesn't; but self-inclusion may fail for correct
        # processes whose quorums omit themselves:
        from repro.detectors.checkers import check_sigma_nu_plus as plus

        assert check_sigma_nu(history, pattern, 200).ok
        outcome = run_boosting(pattern, seed=11, detector=detector)
        assert outcome.check.ok

    def test_every_output_contains_self(self):
        pattern = FailurePattern(3, {})
        outcome = run_boosting(pattern, seed=6)
        for p in range(3):
            for _, quorum in outcome.result.outputs[p]:
                assert p in quorum

    def test_outputs_of_correct_processes_pairwise_intersect(self):
        pattern = FailurePattern(4, {3: 15})
        outcome = run_boosting(pattern, seed=9)
        quorums = []
        for p in pattern.correct:
            quorums.extend(frozenset(q) for _, q in outcome.result.outputs[p])
        for a in quorums:
            for b in quorums:
                assert a & b

    def test_evidence_paths_are_closed(self):
        pattern = FailurePattern(3, {1: 10})
        detector = SigmaNu()
        history = detector.sample_history(pattern, random.Random(5))
        from repro.core.boosting import SigmaNuPlusBooster
        from repro.kernel.messages import CoalescingDelivery
        from repro.kernel.system import System

        processes = {p: SigmaNuPlusBooster(3) for p in range(3)}
        system = System(
            processes, pattern, history, seed=5, delivery=CoalescingDelivery()
        )
        system.run(max_steps=2500, stop_when=lambda s: s.correct_output_count(5))
        checked = 0
        for p in range(3):
            for ev in processes[p].evidence:
                assert trusted(ev.path) <= path_participants(ev.path)
                assert p in path_participants(ev.path)
                assert ev.quorum == path_participants(ev.path)
                checked += 1
        assert checked > 0
