"""The incremental simulation trie is an *optimization*, not a semantics
change: every result must be bit-identical to the from-scratch search.

The tests here are oracle tests — trie-backed simulation against
:func:`canonical_schedule`, the incremental engine against
:func:`find_deciding_schedule`, full extraction runs with ``use_trie`` on
against off — plus the soundness property behind cache invalidation:
after a barrier refresh (Fig. 2 lines 17-19), every output quorum is
justified by post-barrier samples only (no stale cached schedule leaks).
"""

import random

import pytest

from repro.consensus.quorum_mr import QuorumMR
from repro.core.boosting import ClosedPathMemo, trusted
from repro.core.dag import BalancedChainBuilder, Sample, SampleDAG, balanced_chain
from repro.core.extraction import ExtractionSearch, SigmaNuExtractor
from repro.core.simtrie import IncrementalExtractionEngine, SimulationTrie
from repro.core.simulation import canonical_schedule, find_deciding_schedule
from repro.detectors import Omega, PairedDetector, Sigma
from repro.detectors.base import sample_history_cached
from repro.kernel.failures import FailurePattern
from repro.kernel.messages import CoalescingDelivery
from repro.kernel.system import System


def random_dag_samples(rng, n, total, quorum=None):
    """Samples in creation order with ancestor-closed frontiers."""
    counts = [0] * n
    out = []
    for t in range(total):
        pid = rng.randrange(n)
        counts[pid] += 1
        if quorum is None:
            d = rng.randrange(3)
        else:
            d = (pid % n, frozenset(quorum))
        out.append(
            Sample(
                pid=pid,
                k=counts[pid],
                d=d,
                frontier=tuple(
                    counts[q] if q != pid else counts[q] - 1 for q in range(n)
                ),
                t=t,
            )
        )
    return out


def sims_equal(a, b):
    if (a is None) != (b is None):
        return False
    if a is None:
        return True
    return (
        a.schedule.steps == b.schedule.steps
        and a.path == b.path
        and a.participants == b.participants
        and a.decisions == b.decisions
        and a.target_decided_at == b.target_decided_at
    )


class TestBalancedChainBuilder:
    def test_matches_balanced_chain_under_incremental_feeding(self):
        for trial in range(120):
            rng = random.Random(trial)
            n = rng.randint(2, 5)
            samples = random_dag_samples(rng, n, rng.randint(5, 50))
            builder = BalancedChainBuilder()
            fed = []
            i = 0
            while i < len(samples):
                batch = samples[i : i + rng.randint(1, 7)]
                i += len(batch)
                fed.extend(batch)
                if rng.random() < 0.5:
                    builder.extend(batch)
                else:
                    groups = {}
                    for s in fed:
                        groups.setdefault(s.pid, []).append(s)
                    for lst in groups.values():
                        lst.sort(key=lambda s: s.k)
                    builder.extend_grouped(groups)
                assert list(builder.chain()) == balanced_chain(fed), (
                    trial,
                    i,
                )

    def test_stable_since_bounds_chain_churn(self):
        """Positions below ``stable_since(clock)`` are identical to what a
        reader at ``clock`` saw — the contract search cursors rely on."""
        for trial in range(60):
            rng = random.Random(trial * 31 + 7)
            n = rng.randint(2, 5)
            samples = random_dag_samples(rng, n, 50)
            builder = BalancedChainBuilder()
            history = []
            i = 0
            while i < len(samples):
                batch = samples[i : i + rng.randint(1, 7)]
                i += len(batch)
                builder.extend(batch)
                history.append((builder.clock, list(builder.chain())))
            final = list(builder.chain())
            for clock, snapshot in history:
                stable = builder.stable_since(clock)
                assert final[:stable] == snapshot[:stable], (trial, clock)

    def test_pid_count_tracks_chain(self):
        rng = random.Random(3)
        samples = random_dag_samples(rng, 4, 40)
        builder = BalancedChainBuilder()
        builder.extend(samples)
        chain = list(builder.chain())
        for pid in range(4):
            assert builder.pid_count(pid) == sum(
                1 for s in chain if s.pid == pid
            )


class TestSimulationTrieOracle:
    def test_simulate_equals_canonical_schedule(self):
        """Field-by-field equality on prefixes, re-queries and extensions —
        cached replays must reproduce Lemma 4.10's schedule exactly."""
        for trial in range(25):
            rng = random.Random(trial)
            n = rng.randint(3, 5)
            quorum = sorted(rng.sample(range(n), rng.randint(2, n)))
            samples = random_dag_samples(rng, n, 60, quorum)
            chain = balanced_chain(samples)
            trie = SimulationTrie(QuorumMR(), n, snapshot_stride=4)
            proposals = {p: trial % 2 for p in range(n)}
            target = rng.randrange(n)
            for length in (
                len(chain) // 3,
                len(chain) // 3,  # exact re-query: fully cached path
                2 * len(chain) // 3,
                len(chain),
            ):
                want = canonical_schedule(
                    QuorumMR(), n, proposals, chain[:length], target
                )
                got = trie.simulate(proposals, chain[:length], target)
                assert sims_equal(want, got), (trial, length)
        assert trie.counters.steps_from_cache > 0

    def test_shared_trie_across_configurations(self):
        rng = random.Random(11)
        n = 4
        samples = random_dag_samples(rng, n, 50, quorum=[0, 1, 2, 3])
        chain = balanced_chain(samples)
        trie = SimulationTrie(QuorumMR(), n)
        for value in (0, 1):
            proposals = {p: value for p in range(n)}
            want = canonical_schedule(QuorumMR(), n, proposals, chain, 0)
            got = trie.simulate(proposals, chain, 0)
            assert sims_equal(want, got)
        # The second configuration walked the same interned nodes.
        assert trie.trie.node_count <= len(chain)


class TestIncrementalEngineOracle:
    @pytest.mark.parametrize("trial", range(12))
    def test_engine_equals_from_scratch_search(self, trial):
        rng = random.Random(trial)
        n = rng.randint(3, 5)
        quorum = sorted(rng.sample(range(n), rng.randint(2, n)))
        samples = random_dag_samples(rng, n, 100, quorum)
        target = rng.randrange(n)
        engine = IncrementalExtractionEngine(QuorumMR(), n, snapshot_stride=4)
        barrier = samples[0]
        fresh = []
        i = 0
        tick = 0
        while i < len(samples):
            step = rng.randint(3, 15)
            fresh.extend(samples[i : i + step])
            i += step
            tick += 1
            if tick % 5 == 4 and i < len(samples):
                barrier = samples[min(i, len(samples) - 1)]
                fresh = []
                continue
            for value in (0, 1):
                proposals = {p: value for p in range(n)}
                minimize = rng.random() < 0.8
                cap = rng.choice([None, None, 2, 3])
                got = engine.find_deciding_schedule(
                    proposals,
                    fresh,
                    target,
                    barrier=barrier,
                    max_path_len=200,
                    minimize_participants=minimize,
                    max_subset_size=cap,
                )
                want = find_deciding_schedule(
                    QuorumMR(),
                    n,
                    proposals,
                    fresh,
                    target=target,
                    max_path_len=200,
                    minimize_participants=minimize,
                    max_subset_size=cap,
                )
                assert sims_equal(got, want), (tick, minimize, cap)


def run_extractors(pattern, seed, use_trie, max_steps=1200):
    detector = PairedDetector(Omega(), Sigma("pivot"))
    history = sample_history_cached(detector, pattern, seed)
    processes = {
        p: SigmaNuExtractor(
            QuorumMR(), pattern.n, search=ExtractionSearch(use_trie=use_trie)
        )
        for p in range(pattern.n)
    }
    system = System(
        processes,
        pattern,
        history,
        seed=seed,
        delivery=CoalescingDelivery(),
        trace="metrics",
    )
    result = system.run(
        max_steps=max_steps,
        stop_when=lambda s: s.correct_output_count(2),
        extra_steps=100,
    )
    return result, processes


def evidence_key(processes):
    out = []
    for p in sorted(processes):
        for e in processes[p].evidence:
            out.append(
                (
                    p,
                    e.quorum,
                    e.barrier.key,
                    tuple(s.key for s in e.sim0.path),
                    tuple(s.key for s in e.sim1.path),
                    tuple(e.sim0.schedule.steps),
                    tuple(e.sim1.schedule.steps),
                )
            )
    return out


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_outputs_and_evidence_with_and_without_trie(self, seed):
        rng = random.Random(seed)
        n = 4
        crashed = rng.sample(range(n), rng.randint(0, 2))
        pattern = FailurePattern(
            n, {p: rng.randint(0, 40) for p in crashed}
        )
        result_a, procs_a = run_extractors(pattern, seed, use_trie=False)
        result_b, procs_b = run_extractors(pattern, seed, use_trie=True)
        assert result_a.outputs == result_b.outputs
        assert evidence_key(procs_a) == evidence_key(procs_b)

    def test_counters_report_cache_work(self):
        pattern = FailurePattern(4, {})
        _, procs = run_extractors(pattern, seed=5, use_trie=True)
        counters = procs[0].search_counters()
        assert counters is not None
        assert counters["queries"] > 0
        # The engine must have served at least some work from its caches.
        assert (
            counters["steps_from_cache"]
            + counters["steps_replayed"]
            + counters["subsets_pruned"]
            + counters["known_failure_hits"]
        ) > 0

    def test_from_scratch_path_reports_no_counters(self):
        pattern = FailurePattern(3, {})
        _, procs = run_extractors(pattern, seed=5, use_trie=False)
        assert procs[0].search_counters() is None


class TestBarrierRefreshInvalidation:
    """Satellite: Fig. 2 lines 17-19 must not serve stale schedules.

    Every quorum output after a barrier refresh is backed by two deciding
    simulations whose paths consist solely of samples at-or-above the
    barrier recorded in the evidence — i.e. the cached trie state never
    leaks a pre-refresh schedule into a post-refresh output.
    """

    @pytest.mark.parametrize("seed", [0, 3, 8])
    def test_every_evidence_path_is_post_barrier(self, seed):
        rng = random.Random(seed * 13 + 1)
        n = 4
        crashed = rng.sample(range(n), rng.randint(0, 2))
        pattern = FailurePattern(
            n, {p: rng.randint(0, 40) for p in crashed}
        )
        _, procs = run_extractors(
            pattern, seed, use_trie=True, max_steps=2000
        )
        refreshed = 0
        for p, proc in procs.items():
            for idx, e in enumerate(proc.evidence):
                if idx > 0:
                    refreshed += 1
                for sim in (e.sim0, e.sim1):
                    for s in sim.path:
                        assert s.key == e.barrier.key or SampleDAG.is_ancestor(
                            e.barrier, s
                        ), (p, idx, s)
        # At least one process must have output twice for the check to bite
        # (the run asks for 2 outputs per correct process).
        assert refreshed > 0


class TestClosedPathMemo:
    def test_trusted_union_matches_plain_trusted(self):
        for trial in range(40):
            rng = random.Random(trial)
            n = rng.randint(2, 5)
            samples = random_dag_samples(
                rng, n, 30, quorum=sorted(rng.sample(range(n), 2))
            )
            memo = ClosedPathMemo()
            # Re-query prefixes and extensions, mimicking cascade reuse.
            for _ in range(6):
                lo = rng.randrange(len(samples))
                chain = samples[lo:]
                assert memo.trusted(chain) == trusted(chain), trial
            assert memo.hits + memo.misses > 0

    def test_counters_shape(self):
        memo = ClosedPathMemo()
        counters = memo.counters()
        assert set(counters) == {
            "trusted_hits",
            "trusted_misses",
            "nodes_created",
        }
