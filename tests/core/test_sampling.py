"""A_DAG live (Fig. 1): the lemmas of Section 4.1 on real runs."""

import random

import pytest

from repro.core.dag import SampleDAG
from repro.core.sampling import DagBuilder
from repro.detectors import Omega
from repro.kernel.failures import FailurePattern
from repro.kernel.messages import CoalescingDelivery
from repro.kernel.system import System


def run_dag_builders(pattern, seed=0, steps=400):
    history = Omega().sample_history(pattern, random.Random(seed))
    processes = {p: DagBuilder() for p in range(pattern.n)}
    system = System(
        processes,
        pattern,
        history,
        seed=seed,
        delivery=CoalescingDelivery(),
    )
    system.run(max_steps=steps)
    return system, processes


class TestDagBuilderRun:
    def test_every_correct_process_samples_forever(self):
        pattern = FailurePattern(3, {2: 30})
        system, procs = run_dag_builders(pattern, steps=300)
        for p in pattern.correct:
            assert procs[p].core.k > 20

    def test_faulty_stop_sampling_at_crash(self):
        pattern = FailurePattern(3, {2: 30})
        system, procs = run_dag_builders(pattern, steps=300)
        crashed_steps = [s for s in system.steps if s.pid == 2]
        assert procs[2].core.k == len(crashed_steps)
        assert all(s.time < 30 for s in crashed_steps)

    def test_samples_carry_history_values(self):
        """Observation 4.3: node (q,d,k) means H(q, tau) = d."""
        pattern = FailurePattern(2, {})
        system, procs = run_dag_builders(pattern, steps=150)
        history = system.history
        for s in procs[0].core.dag.nodes():
            assert history.value(s.pid, s.t) == s.d

    def test_dags_converge_across_processes(self):
        """Lemma 4.7's engine: every sample eventually reaches every correct
        process's DAG (here: by the end of a long fair run, most do)."""
        pattern = FailurePattern(3, {})
        system, procs = run_dag_builders(pattern, steps=600)
        sizes = [len(procs[p].core.dag) for p in range(3)]
        total = sum(procs[p].core.k for p in range(3))
        assert max(sizes) <= total
        # everyone holds at least everything older than a small lag
        assert min(sizes) >= total - 40

    def test_limit_dag_has_long_paths_with_all_correct(self):
        """Lemma 4.8, finitized: the fresh part of a correct process's DAG
        contains a chain visiting every correct process many times."""
        from repro.core.dag import greedy_chain

        pattern = FailurePattern(3, {1: 25})
        system, procs = run_dag_builders(pattern, steps=800)
        dag = procs[0].core.dag
        chain = greedy_chain(dag.nodes())
        visits = {p: 0 for p in pattern.correct}
        for s in chain:
            if s.pid in visits:
                visits[s.pid] += 1
        assert all(count >= 10 for count in visits.values()), visits

    def test_post_crash_descendants_are_all_correct(self):
        """Lemma 4.6: descendants of a late-enough sample of a correct
        process are samples of correct processes only."""
        pattern = FailurePattern(4, {3: 40})
        system, procs = run_dag_builders(pattern, steps=900)
        dag = procs[0].core.dag
        late = [s for s in dag.samples_of(0) if s.t > 40]
        assert late, "process 0 must sample after the crash"
        v_star = late[0]
        for s in dag.descendants(v_star, include_root=False):
            assert s.pid in pattern.correct

    def test_first_component_identifies_sampler(self):
        pattern = FailurePattern(2, {})
        _, procs = run_dag_builders(pattern, steps=100)
        for p in range(2):
            own = [s for s in procs[p].core.dag.nodes() if s.pid == p]
            ks = sorted(s.k for s in own)
            assert ks == list(range(1, len(ks) + 1))
