"""A_DAG live (Fig. 1): the lemmas of Section 4.1 on real runs."""

import random

import pytest

from repro.core.dag import SampleDAG
from repro.core.sampling import DagBuilder
from repro.detectors import Omega
from repro.kernel.failures import FailurePattern
from repro.kernel.messages import CoalescingDelivery
from repro.kernel.system import System


def run_dag_builders(pattern, seed=0, steps=400):
    history = Omega().sample_history(pattern, random.Random(seed))
    processes = {p: DagBuilder() for p in range(pattern.n)}
    system = System(
        processes,
        pattern,
        history,
        seed=seed,
        delivery=CoalescingDelivery(),
    )
    system.run(max_steps=steps)
    return system, processes


class TestDagBuilderRun:
    def test_every_correct_process_samples_forever(self):
        pattern = FailurePattern(3, {2: 30})
        system, procs = run_dag_builders(pattern, steps=300)
        for p in pattern.correct:
            assert procs[p].core.k > 20

    def test_faulty_stop_sampling_at_crash(self):
        pattern = FailurePattern(3, {2: 30})
        system, procs = run_dag_builders(pattern, steps=300)
        crashed_steps = [s for s in system.steps if s.pid == 2]
        assert procs[2].core.k == len(crashed_steps)
        assert all(s.time < 30 for s in crashed_steps)

    def test_samples_carry_history_values(self):
        """Observation 4.3: node (q,d,k) means H(q, tau) = d."""
        pattern = FailurePattern(2, {})
        system, procs = run_dag_builders(pattern, steps=150)
        history = system.history
        for s in procs[0].core.dag.nodes():
            assert history.value(s.pid, s.t) == s.d

    def test_dags_converge_across_processes(self):
        """Lemma 4.7's engine: every sample eventually reaches every correct
        process's DAG (here: by the end of a long fair run, most do)."""
        pattern = FailurePattern(3, {})
        system, procs = run_dag_builders(pattern, steps=600)
        sizes = [len(procs[p].core.dag) for p in range(3)]
        total = sum(procs[p].core.k for p in range(3))
        assert max(sizes) <= total
        # everyone holds at least everything older than a small lag
        assert min(sizes) >= total - 40

    def test_limit_dag_has_long_paths_with_all_correct(self):
        """Lemma 4.8, finitized: the fresh part of a correct process's DAG
        contains a chain visiting every correct process many times."""
        from repro.core.dag import greedy_chain

        pattern = FailurePattern(3, {1: 25})
        system, procs = run_dag_builders(pattern, steps=800)
        dag = procs[0].core.dag
        chain = greedy_chain(dag.nodes())
        visits = {p: 0 for p in pattern.correct}
        for s in chain:
            if s.pid in visits:
                visits[s.pid] += 1
        assert all(count >= 10 for count in visits.values()), visits

    def test_post_crash_descendants_are_all_correct(self):
        """Lemma 4.6: descendants of a late-enough sample of a correct
        process are samples of correct processes only."""
        pattern = FailurePattern(4, {3: 40})
        system, procs = run_dag_builders(pattern, steps=900)
        dag = procs[0].core.dag
        late = [s for s in dag.samples_of(0) if s.t > 40]
        assert late, "process 0 must sample after the crash"
        v_star = late[0]
        for s in dag.descendants(v_star, include_root=False):
            assert s.pid in pattern.correct

    def test_first_component_identifies_sampler(self):
        pattern = FailurePattern(2, {})
        _, procs = run_dag_builders(pattern, steps=100)
        for p in range(2):
            own = [s for s in procs[p].core.dag.nodes() if s.pid == p]
            ks = sorted(s.k for s in own)
            assert ks == list(range(1, len(ks) + 1))


def canon_dag(dag):
    """Structural identity of a DAG (payload objects differ per run)."""
    return sorted((s.pid, s.k, repr(s.d), s.frontier, s.t) for s in dag.nodes())


class TestSampleDagRuns:
    """Bulk sampling through the batch engine equals one-run-at-a-time."""

    def _detector(self):
        from repro.detectors import Omega, PairedDetector, Sigma

        return PairedDetector(Omega(), Sigma("pivot"))

    def test_batch_equals_serial(self):
        from repro.core.sampling import sample_dag_runs

        pattern = FailurePattern(4, {2: 30})
        detector = self._detector()
        seeds = list(range(6))
        batched = sample_dag_runs(detector, pattern, seeds, max_steps=250)
        serial = sample_dag_runs(
            detector, pattern, seeds, max_steps=250, batch=False
        )
        for b, s in zip(batched, serial):
            assert b.seed == s.seed
            assert b.result == s.result
            assert set(b.dags) == set(s.dags) == set(range(4))
            for p in range(4):
                assert canon_dag(b.dags[p]) == canon_dag(s.dags[p])

    def test_pure_python_control_plane_identical(self):
        from repro.core.sampling import sample_dag_runs

        pattern = FailurePattern(3, {})
        detector = self._detector()
        seeds = (0, 5)
        with_np = sample_dag_runs(detector, pattern, seeds, max_steps=150)
        without = sample_dag_runs(
            detector, pattern, seeds, max_steps=150, use_numpy=False
        )
        for a, b in zip(with_np, without):
            assert a.result == b.result
            for p in range(3):
                assert canon_dag(a.dags[p]) == canon_dag(b.dags[p])

    def test_sampled_dags_feed_the_extraction_search(self):
        """The bulk-sampled DAG's fresh part drives the deciding-schedule
        search of Fig. 2 — the consumer the bulk API exists for."""
        from repro.consensus.quorum_mr import QuorumMR
        from repro.core.sampling import sample_dag_runs
        from repro.core.simulation import find_deciding_schedule

        pattern = FailurePattern(3, {})
        detector = self._detector()
        (run,) = sample_dag_runs(detector, pattern, [1], max_steps=260)
        dag = run.dags[0]
        sim = find_deciding_schedule(
            QuorumMR(),
            3,
            {p: 0 for p in range(3)},
            dag.nodes(),
            target=0,
            max_path_len=400,
        )
        assert sim is not None and sim.decisions.get(0) == 0
