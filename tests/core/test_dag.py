"""Sample DAGs (Section 4.1): Observations 4.1-4.4 as executable facts."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dag import (
    DagCore,
    Sample,
    SampleDAG,
    chain_over_processes,
    greedy_chain,
)


def build_random_dags(n, ops, seed):
    """Simulate n DagCores exchanging DAGs through `ops` random events."""
    rng = random.Random(seed)
    cores = [DagCore(p, n) for p in range(n)]
    t = 0
    for _ in range(ops):
        p = rng.randrange(n)
        if rng.random() < 0.5 and len(cores) > 1:
            q = rng.randrange(n)
            cores[p].absorb(cores[q].dag)
        cores[p].sample(d=f"d{t}", t=t)
        t += 1
    return cores


class TestSampleBasics:
    def test_first_sample_has_empty_frontier(self):
        dag, s = SampleDAG.empty(3).add_local_sample(1, "x", t=4)
        assert s.key == (1, 1)
        assert s.frontier == (0, 0, 0)
        assert s.depth == 0
        assert s.t == 4

    def test_sample_indices_increase(self):
        dag = SampleDAG.empty(2)
        dag, s1 = dag.add_local_sample(0, "a")
        dag, s2 = dag.add_local_sample(0, "b")
        assert (s1.k, s2.k) == (1, 2)
        assert s2.frontier == (1, 0)


class TestObservation41Monotone:
    def test_dag_only_grows(self):
        """Observation 4.1: G_p^t is a subgraph of G_p^t' for t <= t'."""
        core = DagCore(0, 2)
        seen = set()
        other = DagCore(1, 2)
        for i in range(20):
            other.sample(f"o{i}")
            if i % 3 == 0:
                core.absorb(other.dag)
            core.sample(f"d{i}")
            keys = {s.key for s in core.dag.nodes()}
            assert seen <= keys
            seen = keys


class TestObservation42OwnSamplesChain:
    def test_own_samples_totally_ordered(self):
        """Observation 4.2: (p,k') is an ancestor of (p,k) whenever k' < k."""
        core = DagCore(0, 1)
        samples = [core.sample(i) for i in range(6)]
        for i in range(6):
            for j in range(6):
                if i < j:
                    assert SampleDAG.is_ancestor(samples[i], samples[j])
                elif i > j:
                    assert not SampleDAG.is_ancestor(samples[i], samples[j])


class TestObservation44TimesIncrease:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 4), st.integers(10, 60), st.integers(0, 10**6))
    def test_ancestry_implies_earlier_time(self, n, ops, seed):
        """tau is strictly increasing along every path (Observation 4.4)."""
        cores = build_random_dags(n, ops, seed)
        for core in cores:
            nodes = core.dag.nodes()
            for u in nodes:
                for v in nodes:
                    if SampleDAG.is_ancestor(u, v):
                        assert u.t < v.t


class TestAncestry:
    def test_union_preserves_nodes(self):
        a = DagCore(0, 2)
        b = DagCore(1, 2)
        a.sample("a1")
        b.sample("b1")
        merged = a.dag.union(b.dag)
        assert len(merged) == 2
        assert (0, 1) in merged and (1, 1) in merged

    def test_union_identity_fast_paths(self):
        a = DagCore(0, 2)
        a.sample("x")
        empty = SampleDAG.empty(2)
        assert a.dag.union(empty) is a.dag
        assert empty.union(a.dag) is a.dag

    def test_cross_process_ancestry_via_absorb(self):
        a = DagCore(0, 2)
        b = DagCore(1, 2)
        sa = a.sample("a1")
        b.absorb(a.dag)
        sb = b.sample("b1")
        assert SampleDAG.is_ancestor(sa, sb)
        assert not SampleDAG.is_ancestor(sb, sa)

    def test_concurrent_samples_incomparable(self):
        a = DagCore(0, 2)
        b = DagCore(1, 2)
        sa = a.sample("a1")
        sb = b.sample("b1")
        assert not SampleDAG.comparable(sa, sb)

    def test_ancestor_closure(self):
        """Every DAG built by A_DAG operations is ancestor-closed: it holds
        all samples (q, k') with k' <= max_k(q)."""
        for core in build_random_dags(3, 40, seed=5):
            dag = core.dag
            for q in range(3):
                for k in range(1, dag.max_k(q) + 1):
                    assert (q, k) in dag

    def test_descendants_includes_root_by_default(self):
        core = build_random_dags(2, 20, seed=1)[0]
        root = core.dag.get((0, 1))
        fresh = core.dag.descendants(root)
        assert root in fresh
        assert root not in core.dag.descendants(root, include_root=False)

    def test_descendants_matches_bruteforce(self):
        for core in build_random_dags(3, 30, seed=9):
            dag = core.dag
            for root in dag.nodes():
                expected = {
                    s.key
                    for s in dag.nodes()
                    if s.key == root.key or SampleDAG.is_ancestor(root, s)
                }
                assert {s.key for s in dag.descendants(root)} == expected

    def test_ancestors_matches_bruteforce(self):
        core = build_random_dags(2, 25, seed=3)[0]
        dag = core.dag
        node = dag.latest_sample(0)
        expected = {
            s.key
            for s in dag.nodes()
            if s.key == node.key or SampleDAG.is_ancestor(s, node)
        }
        assert {s.key for s in dag.ancestors(node)} == expected


class TestTopologyHelpers:
    def test_topological_respects_ancestry(self):
        core = build_random_dags(3, 40, seed=2)[1]
        order = core.dag.topological()
        position = {s.key: i for i, s in enumerate(order)}
        for u in order:
            for v in order:
                if SampleDAG.is_ancestor(u, v):
                    assert position[u.key] < position[v.key]

    def test_greedy_chain_is_a_path(self):
        """Consecutive chain elements are ancestor-related (a DAG path)."""
        for core in build_random_dags(4, 60, seed=7):
            chain = greedy_chain(core.dag.nodes())
            for u, v in zip(chain, chain[1:]):
                assert SampleDAG.is_ancestor(u, v)

    def test_chain_over_processes_filters(self):
        core = build_random_dags(3, 40, seed=11)[0]
        chain = chain_over_processes(core.dag.nodes(), frozenset({0, 2}))
        assert all(s.pid in (0, 2) for s in chain)

    def test_latest_sample(self):
        core = DagCore(0, 2)
        core.sample("a")
        latest = core.sample("b")
        assert core.dag.latest_sample(0) == latest
        assert core.dag.latest_sample(1) is None

    def test_samples_of_sorted_by_k(self):
        core = DagCore(0, 1)
        for i in range(5):
            core.sample(i)
        ks = [s.k for s in core.dag.samples_of(0)]
        assert ks == [1, 2, 3, 4, 5]


class TestDagCore:
    def test_counter_tracks_samples(self):
        core = DagCore(2, 3)
        assert core.k == 0
        core.sample("x")
        core.sample("y")
        assert core.k == 2
        assert core.last_sample.key == (2, 2)

    def test_absorb_ignores_non_dag_payloads(self):
        core = DagCore(0, 2)
        core.absorb(("some", "tuple"))
        core.absorb(None)
        assert len(core.dag) == 0

    def test_absorb_then_sample_attaches_below_everything(self):
        a, b = DagCore(0, 2), DagCore(1, 2)
        for i in range(3):
            a.sample(i)
        b.absorb(a.dag)
        s = b.sample("mine")
        assert s.frontier == (3, 0)
        assert s.depth == 3


class TestBalancedChain:
    def test_is_a_path(self):
        from repro.core.dag import balanced_chain

        for core in build_random_dags(4, 80, seed=13):
            chain = balanced_chain(core.dag.nodes())
            for u, v in zip(chain, chain[1:]):
                assert SampleDAG.is_ancestor(u, v)

    def test_serves_processes_evenly(self):
        """On a well-mixed DAG the balanced chain must not starve anyone the
        way the plain greedy chain can."""
        from repro.core.dag import balanced_chain

        cores = build_random_dags(3, 120, seed=17)
        chain = balanced_chain(cores[0].dag.nodes())
        counts = {p: sum(1 for s in chain if s.pid == p) for p in range(3)}
        assert min(counts.values()) * 4 >= max(counts.values()), counts

    def test_empty_input(self):
        from repro.core.dag import balanced_chain

        assert balanced_chain([]) == []

    def test_single_process(self):
        from repro.core.dag import balanced_chain

        core = DagCore(0, 1)
        samples = [core.sample(i, t=i) for i in range(5)]
        assert balanced_chain(core.dag.nodes()) == samples
