"""Ablation study: A_nuc's hardening mechanisms are load-bearing.

DESIGN.md calls out two ablations:

* disabling *distrust* reduces A_nuc to (morally) the naive quorum
  algorithm — the Section 6.3 contamination scenario must now break it;
* disabling the *quorum-awareness* decide gate lets decisions land in
  round 1; the specific Section 6.3 scenario does not exploit that hole
  (its distrust evidence travels on LEAD/PROP histories), but the decide
  round observably drops, showing the gate really delays decisions.
"""

import random

import pytest

from repro.consensus import check_nonuniform_consensus, consensus_outcome
from repro.core.nuc import AnucProcess
from repro.detectors import AdaptiveHistory, Omega, PairedDetector, SigmaNuPlus
from repro.kernel.failures import DeferredCrashPattern, FailurePattern
from repro.kernel.system import System
from repro.separation.contamination import PROPOSALS, _ScenarioDriver


def run_scenario_with(processes, seed=0, max_steps=30000):
    """Drive the Section 6.3 scenario against given A_nuc-family processes."""
    pattern = DeferredCrashPattern(3, doomed=[2])
    driver = _ScenarioDriver("anuc", processes, pattern)
    history = AdaptiveHistory(3, driver.detector_value)
    system = System(processes, pattern, history, seed=seed)

    crash_time = None
    for _ in range(max_steps):
        if crash_time is None and driver.should_crash_two():
            crash_time = system.time
            pattern.trigger([2], crash_time)
        if (
            system.contexts[0].decision is not None
            and system.contexts[1].decision is not None
        ):
            break
        if system.step() is None:
            break
    return system, crash_time


class TestDistrustAblation:
    def test_no_distrust_contaminated_by_scenario(self):
        """Without distrust the contamination window is driven causally:
        the Omega noise points correct processes at faulty process 2 exactly
        while '0 has decided v and 1 has not yet decided'.  Process 0 can
        only have decided v (its lone quorum is {0} and its leader until
        then is 0); 1 cannot decide earlier because 2's 'w' reports keep its
        {0,1,2} quorum from unanimity.  Once the window opens, 1 adopts 'w'
        from 2 and decides 'w' — a nonuniform-agreement violation that real
        A_nuc's distrust provably prevents (previous test family)."""
        processes = {
            p: AnucProcess(PROPOSALS[p], enable_distrust=False)
            for p in range(3)
        }
        pattern = DeferredCrashPattern(3, doomed=[2])
        system_box = {}

        class Driver(_ScenarioDriver):
            def _leader(self, p):
                if p == 2:
                    return 2
                sys = system_box.get("system")
                if sys is None:
                    return 0
                window = (
                    sys.contexts[0].decision is not None
                    and sys.contexts[1].decision is None
                )
                return 2 if window else 0

        driver = Driver("anuc", processes, pattern)
        history = AdaptiveHistory(3, driver.detector_value)
        system = System(processes, pattern, history, seed=0)
        system_box["system"] = system
        for _ in range(60000):
            if (
                system.contexts[0].decision is not None
                and system.contexts[1].decision is not None
            ):
                break
            if system.step() is None:
                break
        decisions = {
            p: system.contexts[p].decision
            for p in (0, 1)
            if system.contexts[p].decision is not None
        }
        # Correct processes decide differently: contamination.
        assert decisions == {0: "v", 1: "w"}, decisions

    def test_with_distrust_same_driver_is_safe(self):
        processes = {p: AnucProcess(PROPOSALS[p]) for p in range(3)}
        system, _ = run_scenario_with(processes)
        assert system.contexts[0].decision == "v"
        assert system.contexts[1].decision == "v"


class TestQuorumAwarenessAblation:
    def test_gate_delays_decisions(self):
        """With the gate, nobody decides in round 1; without it, the same
        benign run decides in round 1."""
        pattern = FailurePattern(3, {})
        proposals = {p: "v" for p in range(3)}
        detector = PairedDetector(Omega(), SigmaNuPlus())

        def run(enable_gate):
            history = detector.sample_history(pattern, random.Random(123))
            processes = {
                p: AnucProcess(
                    proposals[p], enable_quorum_awareness=enable_gate
                )
                for p in range(3)
            }
            system = System(processes, pattern, history, seed=7)
            system.run(
                max_steps=20000, stop_when=lambda s: s.all_correct_decided()
            )
            return [processes[p].trace.decided_round for p in range(3)]

        gated = run(True)
        ungated = run(False)
        assert all(r is None or r >= 2 for r in gated)
        assert any(r == 1 for r in ungated)

    def test_ungated_still_decides_on_benign_runs(self):
        pattern = FailurePattern(4, {3: 15})
        proposals = {p: p % 2 for p in range(4)}
        detector = PairedDetector(Omega(), SigmaNuPlus())
        history = detector.sample_history(pattern, random.Random(5))
        processes = {
            p: AnucProcess(proposals[p], enable_quorum_awareness=False)
            for p in range(4)
        }
        system = System(processes, pattern, history, seed=5)
        result = system.run(
            max_steps=30000, stop_when=lambda s: s.all_correct_decided()
        )
        report = check_nonuniform_consensus(consensus_outcome(result, proposals))
        assert report.ok
