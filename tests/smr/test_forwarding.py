"""Client-to-leader forwarding: the noop-contention regression.

Before forwarding, a command submitted at a non-leader replica was never
proposed by the leader, so the leader padded every slot with noops while
the laggard's command starved — the liveness gap the layer's docstring
documented.  These tests pin the fixed decided-log shape (commands from
every origin get chosen) and keep the degraded ``forward=False`` behaviour
as the regression baseline.
"""

import random

import pytest

from repro.kernel.failures import FailurePattern
from repro.smr import check_service_log, check_smr, run_replicated_log
from repro.smr.replicated_log import NOOP, ReplicatedLogProcess


def _non_noop(log):
    return [e for e in log if e is not None and e[0] != "noop"]


class TestForwarding:
    def test_non_leader_commands_get_decided(self):
        """Commands pending only at non-leader replicas reach the log."""
        pattern = FailurePattern(3, {})
        commands = {p: [("append", p, k) for k in range(2)] for p in range(3)}
        result, procs = run_replicated_log(
            pattern, commands, slots=8, seed=11, max_steps=200000
        )
        assert result.stop_reason == "stop_condition"
        report = check_smr(pattern, procs, commands)
        assert report.ok, report.violations
        decided = _non_noop(procs[0].log)
        submitted = {c for cmds in commands.values() for c in cmds}
        # Every submitted command was chosen: no origin starves.
        assert set(decided) == submitted

    def test_decided_log_shape_pinned(self):
        """The fixed shape for one seeded run: all six commands, no starved
        origin, and strictly fewer noop slots than the degraded baseline."""
        pattern = FailurePattern(3, {})
        commands = {p: [("append", p, k) for k in range(2)] for p in range(3)}

        _, fixed = run_replicated_log(
            pattern, commands, slots=8, seed=3, max_steps=200000
        )
        _, degraded = run_replicated_log(
            pattern, commands, slots=8, seed=3, max_steps=200000,
            forward=False,
        )
        fixed_cmds = _non_noop(fixed[0].log)
        degraded_cmds = _non_noop(degraded[0].log)
        assert len(fixed_cmds) == 6
        # The degraded baseline starves at least one non-leader origin
        # within the same slot budget (this is the documented gap).
        assert len(degraded_cmds) < len(fixed_cmds)
        origins_fixed = {c[1] for c in fixed_cmds}
        assert origins_fixed == {0, 1, 2}

    def test_forwarding_under_crashes(self):
        """Forwarded commands survive leader-irrelevant crashes."""
        pattern = FailurePattern(4, {3: 5})
        commands = {p: [("append", p, 0)] for p in range(4)}
        _, procs = run_replicated_log(
            pattern, commands, slots=6, seed=7, max_steps=250000
        )
        report = check_smr(pattern, procs, commands)
        assert report.ok, report.violations
        decided = set(_non_noop(procs[0].log))
        # Correct origins' commands all commit; the early-crashed origin's
        # command may or may not make it (it might crash pre-forward).
        for p in pattern.correct:
            assert ("append", p, 0) in decided

    def test_forwarding_is_rate_limited(self):
        """One FWD per (command, leader): a stable leader sees each pending
        command forwarded exactly once."""
        proc = ReplicatedLogProcess([("append", 1, 0)], slots=4)

        class FakeCtx:
            pid = 1
            sent = []

            def send(self, dest, payload):
                self.sent.append((dest, payload))

        ctx = FakeCtx()
        proc._maybe_forward(ctx, (0, frozenset({0, 1})))
        proc._maybe_forward(ctx, (0, frozenset({0, 1})))
        assert len(ctx.sent) == 1
        assert ctx.sent[0] == (0, ("FWD", ("append", 1, 0)))
        # A leader change re-forwards once to the new leader.
        proc._maybe_forward(ctx, (2, frozenset({1, 2})))
        assert len(ctx.sent) == 2
        assert ctx.sent[1][0] == 2


class TestFeedAndBatches:
    def test_feed_dedups(self):
        proc = ReplicatedLogProcess([], slots=None)
        assert proc.feed(("append", 0, 0))
        assert not proc.feed(("append", 0, 0))
        assert proc.pending_commands() == [("append", 0, 0)]

    def test_batch_proposals_follow_seq_order(self):
        proc = ReplicatedLogProcess([], slots=None)
        b0 = ("batch", "svc", 0, ((0, 0, "x"),))
        b1 = ("batch", "svc", 1, ((0, 1, "y"),))
        proc.feed(b1)
        proc.feed(b0)
        # Out-of-order feed: seq 1 is ineligible until seq 0 is in the log.
        assert proc._next_proposal() == b0
        proc.log.append(b0)
        proc._purge_chosen(b0)
        assert proc._next_proposal() == b1
        proc.log.append(b1)
        proc._purge_chosen(b1)
        assert proc._next_proposal() == NOOP

    def test_check_service_log_flags_bad_shapes(self):
        good = [
            ("batch", "svc", 0, (("s1", 0, "a"), ("s1", 1, "b"))),
            ("noop", -1),
            ("batch", "svc", 1, (("s2", 0, "c"),)),
        ]
        assert check_service_log(good).ok
        dup = good + [("batch", "svc", 2, (("s1", 0, "a"),))]
        report = check_service_log(dup)
        assert not report.ok
        assert any("duplication" in v for v in report.violations)
        skipped = [("batch", "svc", 1, (("s1", 0, "a"),))]
        report = check_service_log(skipped)
        assert not report.ok
        assert any("batch-order" in v for v in report.violations)

    @pytest.mark.parametrize("seed", range(3))
    def test_seeded_sweep_with_forwarding(self, seed):
        rng = random.Random(f"fwd/{seed}")
        n = rng.choice([3, 4, 5])
        crashed = rng.sample(range(n), rng.randrange(0, (n - 1) // 2 + 1))
        pattern = FailurePattern(n, {p: rng.randrange(0, 40) for p in crashed})
        commands = {
            p: [("append", p, k) for k in range(rng.randrange(0, 3))]
            for p in range(n)
        }
        _, procs = run_replicated_log(
            pattern, commands, slots=6, seed=seed, max_steps=250000
        )
        report = check_smr(pattern, procs, commands)
        assert report.ok, report.violations
