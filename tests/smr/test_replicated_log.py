"""The replicated log (SMR) built on A_nuc instances."""

import random

import pytest

from repro.kernel.failures import FailurePattern
from repro.smr import check_smr, run_replicated_log


def commands_for(n, per=2):
    return {p: [("append", p, i) for i in range(per)] for p in range(n)}


@pytest.mark.parametrize("seed", range(4))
class TestSmrSweep:
    def test_safety_across_random_environments(self, seed):
        rng = random.Random(f"smr/{seed}")
        n = rng.randint(2, 4)
        crashed = rng.sample(range(n), rng.randint(0, n - 1))
        pattern = FailurePattern(n, {p: rng.randint(20, 80) for p in crashed})
        commands = commands_for(n)
        result, procs = run_replicated_log(
            pattern, commands, slots=3, seed=seed
        )
        assert result.stop_reason == "stop_condition", pattern
        report = check_smr(pattern, procs, commands)
        assert report.ok, report.violations[:3]


class TestSmrBehaviour:
    def test_correct_replicas_share_the_log(self):
        pattern = FailurePattern(3, {})
        commands = commands_for(3)
        _, procs = run_replicated_log(pattern, commands, slots=4, seed=2)
        logs = [procs[p].log for p in range(3)]
        assert logs[0] == logs[1] == logs[2]
        assert len(logs[0]) == 4

    def test_minority_correct_still_replicates(self):
        pattern = FailurePattern(4, {0: 30, 1: 45, 2: 60})
        commands = commands_for(4)
        result, procs = run_replicated_log(
            pattern, commands, slots=3, seed=3, max_steps=200000
        )
        assert result.stop_reason == "stop_condition"
        assert len(procs[3].log) == 3
        assert check_smr(pattern, procs, commands).ok

    def test_chosen_commands_apply_in_order(self):
        pattern = FailurePattern(2, {})
        commands = commands_for(2, per=3)
        _, procs = run_replicated_log(pattern, commands, slots=5, seed=4)
        for p in range(2):
            expected = [
                e for e in procs[p].log if e is not None and e[0] != "noop"
            ]
            assert procs[p].applied == expected

    def test_no_command_twice(self):
        pattern = FailurePattern(3, {1: 50})
        commands = commands_for(3, per=3)
        _, procs = run_replicated_log(pattern, commands, slots=6, seed=5)
        report = check_smr(pattern, procs, commands)
        assert report.ok
        chosen = [
            e
            for e in procs[0].log
            if e is not None and e[0] != "noop"
        ]
        assert len(set(chosen)) == len(chosen)


class TestSmrChecker:
    class FakeProc:
        def __init__(self, log, applied=None):
            self.log = log
            self.applied = (
                applied
                if applied is not None
                else [e for e in log if e and e[0] != "noop"]
            )

    def test_divergent_logs_flagged(self):
        pattern = FailurePattern(2, {})
        procs = {
            0: self.FakeProc([("append", 0, 0)]),
            1: self.FakeProc([("append", 1, 0)]),
        }
        report = check_smr(pattern, procs, {0: [("append", 0, 0)], 1: [("append", 1, 0)]})
        assert not report.ok
        assert any("agreement" in v for v in report.violations)

    def test_prefix_logs_allowed(self):
        pattern = FailurePattern(2, {})
        full = [("append", 0, 0), ("append", 0, 1)]
        procs = {0: self.FakeProc(full), 1: self.FakeProc(full[:1])}
        assert check_smr(pattern, procs, {0: full}).ok

    def test_unsubmitted_command_flagged(self):
        pattern = FailurePattern(1, {})
        procs = {0: self.FakeProc([("append", 9, 9)])}
        report = check_smr(pattern, procs, {0: []})
        assert any("validity" in v for v in report.violations)

    def test_duplicate_command_flagged(self):
        pattern = FailurePattern(1, {})
        cmd = ("append", 0, 0)
        procs = {0: self.FakeProc([cmd, cmd])}
        report = check_smr(pattern, procs, {0: [cmd]})
        assert any("duplication" in v for v in report.violations)

    def test_misapplied_state_machine_flagged(self):
        pattern = FailurePattern(1, {})
        cmd = ("append", 0, 0)
        procs = {0: self.FakeProc([cmd], applied=[])}
        report = check_smr(pattern, procs, {0: [cmd]})
        assert any("application" in v for v in report.violations)
