"""RPR5xx: the store-signature soundness hole, demonstrated end to end.

``repro.store.signature`` keys cached results on the *static* import
closure of the task function's module.  The ``proj_dynamic`` fixture
loads its plugin with ``importlib.import_module``, which that closure
cannot see.  This file proves both halves of the contract:

* the **stale hit**: editing the dynamically-loaded plugin does not move
  the loading module's signature, so a store keyed on it would happily
  serve rows computed against the old plugin;
* the **lint guard**: RPR501 flags exactly the dynamic-import call site
  (with the sweep-registration evidence chain), so the hole is caught at
  review time instead of as a silently wrong table.
"""

import os
import shutil

from repro.lint.engine import run_lint
from repro.store.signature import ModuleSignatureIndex

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")

LOADER = "repro.harness.plugins"
PLUGIN = "repro.harness.plugin_fast"


def deploy(tmp_path):
    shutil.copytree(
        os.path.join(FIXTURES, "proj_dynamic"), tmp_path, dirs_exist_ok=True
    )
    return str(tmp_path)


class TestSignatureBlindSpot:
    def test_dynamic_import_is_outside_the_static_closure(self, tmp_path):
        tree = deploy(tmp_path)
        index = ModuleSignatureIndex({"repro": tree})
        closure = index.closure(LOADER)
        assert LOADER in closure
        assert PLUGIN not in closure  # the hole RPR501 polices

    def test_editing_the_plugin_is_a_stale_hit(self, tmp_path):
        tree = deploy(tmp_path)
        index = ModuleSignatureIndex({"repro": tree})
        before = index.signature(LOADER)
        assert before is not None

        plugin_path = os.path.join(
            tree, "repro", "harness", "plugin_fast.py"
        )
        with open(plugin_path, "w") as fh:
            fh.write("def apply(payload):\n    return [i * 3 for i in payload]\n")
        index.refresh()
        # The plugin's behaviour changed, the signature did not: any row
        # keyed on it would be served stale.
        assert index.signature(LOADER) == before

    def test_editing_a_static_dependency_does_move_it(self, tmp_path):
        tree = deploy(tmp_path)
        index = ModuleSignatureIndex({"repro": tree})
        before = index.signature(LOADER)

        loader_path = os.path.join(tree, "repro", "harness", "plugins.py")
        with open(loader_path, "a") as fh:
            fh.write("\n# touched\n")
        index.refresh()
        assert index.signature(LOADER) != before


class TestRpr501Guard:
    def test_flags_exactly_the_dynamic_import_site(self, tmp_path):
        tree = deploy(tmp_path)
        result = run_lint([tree])
        dynamic = [f for f in result.findings if f.code == "RPR501"]
        assert len(dynamic) == 1
        (finding,) = dynamic
        assert finding.module == LOADER
        assert "import_module" in finding.snippet
        assert finding.evidence  # chain back to the SweepTask registration

    def test_plugin_module_itself_lints_clean(self, tmp_path):
        tree = deploy(tmp_path)
        plugin_path = os.path.join(
            tree, "repro", "harness", "plugin_fast.py"
        )
        assert run_lint([plugin_path]).findings == []
