"""End-to-end CLI tests for ``python -m repro lint``.

Includes the two acceptance gates: the repository lints clean under
``--strict``, and the committed fixture of seeded violations exits nonzero
naming every rule code.
"""

import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.cli import main
from repro.lint.registry import known_codes

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
FIXTURE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "fixtures",
    "kernel_violations.py.txt",
)


def run_cli(*argv, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


class TestSelfLint:
    def test_src_lints_clean_strict(self):
        proc = run_cli("lint", "src", "--strict")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_src_lints_clean_against_committed_baseline(self):
        proc = run_cli(
            "lint", "src", "--strict", "--baseline", "lint-baseline.json"
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestSeededFixture:
    @pytest.fixture()
    def fixture_file(self, tmp_path):
        # Under a repro/kernel/ directory so package-scoped rules fire.
        pkg = tmp_path / "repro" / "kernel"
        pkg.mkdir(parents=True)
        target = pkg / "seeded_violations.py"
        shutil.copyfile(FIXTURE, target)
        return target

    def test_every_code_fires_and_exit_is_nonzero(self, fixture_file):
        proc = run_cli("lint", str(fixture_file), "--format", "json")
        assert proc.returncode == 1
        report = json.loads(proc.stdout)
        fired = {f["code"] for f in report["findings"]}
        assert fired == set(known_codes())

    def test_text_report_names_every_code(self, fixture_file):
        proc = run_cli("lint", str(fixture_file))
        assert proc.returncode == 1
        for code in known_codes():
            assert code in proc.stdout


class TestCliOptions:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in known_codes():
            assert code in out

    def test_json_format_is_valid_and_versioned(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target), "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro-lint/2"
        assert report["summary"]["files_checked"] == 1

    def test_sarif_format_is_valid_2_1_0(self, tmp_path, capsys):
        pkg = tmp_path / "repro" / "kernel"
        pkg.mkdir(parents=True)
        target = pkg / "dirty.py"
        target.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(target), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)

        assert log["version"] == "2.1.0"
        assert log["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == sorted(set(rule_ids))  # unique, sorted
        assert set(rule_ids) == set(known_codes())

        (result,) = run["results"]
        assert result["ruleId"] == "RPR102"
        assert rule_ids[result["ruleIndex"]] == "RPR102"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 2
        assert location["region"]["startColumn"] >= 1
        assert "dirty.py" in location["artifactLocation"]["uri"]
        assert result["partialFingerprints"]["reproLintFingerprint/v1"]

    def test_sarif_marks_suppressed_findings(self, tmp_path, capsys):
        pkg = tmp_path / "repro" / "kernel"
        pkg.mkdir(parents=True)
        target = pkg / "noqa.py"
        target.write_text(
            "import time\nt = time.time()  # repro: noqa RPR102 -- test\n"
        )
        assert main(["lint", str(target), "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        (result,) = log["runs"][0]["results"]
        assert result["suppressions"] == [{"kind": "inSource"}]

    def test_output_artifact_written(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        artifact = tmp_path / "report.json"
        code = main(["lint", str(target), "--output", str(artifact)])
        capsys.readouterr()
        assert code == 0
        assert json.loads(artifact.read_text())["schema"] == "repro-lint/2"

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "no/such/path"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_baseline_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        code = main(["lint", str(target), "--baseline", str(bad)])
        capsys.readouterr()
        assert code == 2

    def test_write_baseline_then_lint_clean(self, tmp_path, capsys):
        pkg = tmp_path / "repro" / "kernel"
        pkg.mkdir(parents=True)
        target = pkg / "dirty.py"
        target.write_text("import time\nt = time.time()\n")
        baseline = tmp_path / "baseline.json"

        assert main(["lint", str(target)]) == 1
        assert main(["lint", str(target), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["lint", str(target), "--baseline", str(baseline)]) == 0
