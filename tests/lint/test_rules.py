"""Per-rule positive/negative fixtures, driven through ``lint_source``.

Every violating snippet lives inside a string literal so the repository's
own lint run (which covers ``tests/``) never trips over this file.
"""

import textwrap

from repro.lint import lint_source

KERNEL = "repro.kernel.fixture"  # inside every package-scoped rule's scope
TESTS = "tests.test_fixture"  # outside the kernel-adjacent packages


def codes(source, module=KERNEL):
    return [f.code for f in lint_source(textwrap.dedent(source), module=module)]


class TestGlobalRandom:
    def test_module_level_call_flagged(self):
        src = """
        import random
        x = random.random()
        """
        assert codes(src) == ["RPR101"]

    def test_from_import_flagged(self):
        src = """
        from random import choice
        y = choice([1, 2])
        """
        # the import and the call are both flagged
        assert codes(src) == ["RPR101", "RPR101"]

    def test_unseeded_random_instance_flagged(self):
        assert codes("import random\nrng = random.Random()\n") == ["RPR101"]

    def test_seeded_instance_clean(self):
        src = """
        import random
        rng = random.Random(7)
        x = rng.random()
        """
        assert codes(src) == []

    def test_random_class_import_clean(self):
        assert codes("from random import Random\nrng = Random(3)\n") == []

    def test_applies_everywhere(self):
        src = "import random\nx = random.random()\n"
        assert codes(src, module=TESTS) == ["RPR101"]

    def test_aliased_module_flagged(self):
        src = "import random as rnd\nx = rnd.shuffle([1])\n"
        assert codes(src) == ["RPR101"]


class TestWallClock:
    def test_time_time_flagged(self):
        assert codes("import time\nt = time.time()\n") == ["RPR102"]

    def test_os_environ_flagged(self):
        assert codes("import os\nv = os.environ['HOME']\n") == ["RPR102"]

    def test_os_urandom_flagged(self):
        assert codes("import os\nb = os.urandom(8)\n") == ["RPR102"]

    def test_datetime_now_flagged(self):
        src = """
        from datetime import datetime
        d = datetime.now()
        """
        assert codes(src) == ["RPR102"]

    def test_datetime_module_chain_flagged(self):
        src = """
        import datetime
        d = datetime.datetime.now()
        """
        assert codes(src) == ["RPR102"]

    def test_from_import_of_clock_fn_flagged(self):
        src = """
        from time import perf_counter
        t = perf_counter()
        """
        assert codes(src) == ["RPR102"]

    def test_outside_kernel_packages_clean(self):
        assert codes("import time\nt = time.time()\n", module=TESTS) == []

    def test_os_path_clean(self):
        assert codes("import os\np = os.path.join('a', 'b')\n") == []


class TestUnorderedIteration:
    def test_for_over_set_literal_flagged(self):
        src = """
        def f():
            for x in {3, 1, 2}:
                pass
        """
        assert codes(src) == ["RPR103"]

    def test_comprehension_over_set_call_flagged(self):
        src = """
        def f(items):
            s = set(items)
            return [x for x in s]
        """
        assert codes(src) == ["RPR103"]

    def test_list_of_set_flagged(self):
        src = """
        def f(items):
            s = frozenset(items)
            return list(s)
        """
        assert codes(src) == ["RPR103"]

    def test_set_pop_flagged(self):
        src = """
        def f(items):
            s = set(items)
            return s.pop()
        """
        assert codes(src) == ["RPR103"]

    def test_bare_keys_iteration_flagged(self):
        src = """
        def f(d):
            for k in d.keys():
                pass
        """
        assert codes(src) == ["RPR103"]

    def test_annotated_set_parameter_flagged(self):
        src = """
        from typing import Set

        def f(pids: Set[int]):
            return [p for p in pids]
        """
        assert codes(src) == ["RPR103"]

    def test_sorted_iteration_clean(self):
        src = """
        def f(items):
            s = set(items)
            return [x for x in sorted(s)]
        """
        assert codes(src) == []

    def test_order_insensitive_sink_clean(self):
        src = """
        def f(items):
            s = set(items)
            return sum(x for x in s), len(s), min(s)
        """
        assert codes(src) == []

    def test_rebound_name_not_flagged(self):
        # a name later rebound to a list is tainted, not evidently a set
        src = """
        def f(items):
            s = set(items)
            s = sorted(s)
            return [x for x in s]
        """
        assert codes(src) == []

    def test_outside_kernel_packages_clean(self):
        src = """
        def f():
            for x in {3, 1, 2}:
                pass
        """
        assert codes(src, module=TESTS) == []


class TestIdentityOrdering:
    def test_id_call_flagged(self):
        src = """
        def key(obj):
            return id(obj)
        """
        assert codes(src) == ["RPR104"]

    def test_outside_kernel_packages_clean(self):
        assert codes("x = id(object())\n", module=TESTS) == []


class TestFloatEquality:
    def test_float_literal_equality_flagged(self):
        src = """
        def decided(ratio):
            return ratio == 0.5
        """
        assert codes(src) == ["RPR105"]

    def test_division_equality_flagged(self):
        src = """
        def quorum(count, n, half):
            return count / n == half
        """
        assert codes(src) == ["RPR105"]

    def test_float_cast_inequality_flagged(self):
        src = """
        def f(x, y):
            return float(x) != y
        """
        assert codes(src) == ["RPR105"]

    def test_integer_arithmetic_clean(self):
        src = """
        def quorum(count, n):
            return 2 * count >= n
        """
        assert codes(src) == []

    def test_int_equality_clean(self):
        assert codes("def f(x):\n    return x == 1\n") == []

    def test_float_ordering_clean(self):
        # only == / != are representation traps; < and >= are judgement calls
        assert codes("def f(x):\n    return x < 0.5\n") == []


class TestAutomatonPurity:
    def test_print_in_step_flagged(self):
        src = """
        class Leaky(Automaton):
            def step(self, state, observation):
                print(state)
                return state
        """
        assert codes(src) == ["RPR201"]

    def test_module_global_mutation_flagged(self):
        src = """
        SEEN = []

        class Leaky(Automaton):
            def step(self, state, observation):
                SEEN.append(state)
                return state
        """
        assert codes(src) == ["RPR201"]

    def test_global_statement_flagged(self):
        src = """
        COUNT = 0

        class Leaky(Automaton):
            def step(self, state, observation):
                global COUNT
                COUNT += 1
                return state
        """
        assert codes(src) == ["RPR201"]

    def test_sys_stdout_flagged(self):
        src = """
        import sys

        class Leaky(Automaton):
            def step(self, state, observation):
                sys.stdout.write("x")
                return state
        """
        assert codes(src) == ["RPR201"]

    def test_pure_step_clean(self):
        src = """
        class Pure(Automaton):
            def step(self, state, observation):
                return state.advance(observation)
        """
        assert codes(src) == []

    def test_non_automaton_class_clean(self):
        src = """
        class Reporter:
            def step(self, state):
                print(state)
        """
        assert codes(src) == []

    def test_transitive_subclass_flagged(self):
        src = """
        class Base(Automaton):
            pass

        class Leaf(Base):
            def step(self, state, observation):
                print(state)
                return state
        """
        assert codes(src) == ["RPR201"]


class TestDetectorCacheKey:
    def test_unkeyable_attr_without_cache_key_flagged(self):
        src = """
        class Custom(FailureDetector):
            def __init__(self, n):
                self.n = n
                self.history = []
        """
        assert codes(src, module="repro.detectors.custom") == ["RPR202"]

    def test_cache_key_override_clean(self):
        src = """
        class Custom(FailureDetector):
            def __init__(self, n):
                self.history = []

            def cache_key(self):
                return None
        """
        assert codes(src, module="repro.detectors.custom") == []

    def test_hashable_config_clean(self):
        src = """
        class Custom(FailureDetector):
            def __init__(self, n, seed):
                self.n = n
                self.seed = seed
        """
        assert codes(src, module="repro.detectors.custom") == []


class TestCopyStateCompleteness:
    def test_missing_field_flagged(self):
        src = """
        class State:
            def __init__(self, round_no, estimate):
                self.round_no = round_no
                self.estimate = estimate

            def copy_state(self):
                return State(round_no=self.round_no)
        """
        assert codes(src) == ["RPR203"]

    def test_all_fields_clean(self):
        src = """
        class State:
            def __init__(self, round_no, estimate):
                self.round_no = round_no
                self.estimate = estimate

            def copy_state(self):
                return State(round_no=self.round_no, estimate=self.estimate)
        """
        assert codes(src) == []

    def test_kwargs_forwarding_clean(self):
        src = """
        class State:
            def __init__(self, round_no, estimate):
                self.round_no = round_no
                self.estimate = estimate

            def copy_state(self):
                return State(**self.__dict__)
        """
        assert codes(src) == []


class TestGuardedInstrumentation:
    def test_unguarded_metrics_flagged(self):
        src = """
        from repro import obs

        def step():
            obs.metrics().inc("kernel.steps")
        """
        assert codes(src) == ["RPR301"]

    def test_guard_by_if_clean(self):
        src = """
        from repro import obs

        def step():
            if obs._ENABLED:
                obs.metrics().inc("kernel.steps")
        """
        assert codes(src) == []

    def test_early_bailout_clean(self):
        src = """
        from repro import obs as _obs

        def step():
            if not _obs._ENABLED:
                return
            _obs.tracer().event("step")
        """
        assert codes(src) == []

    def test_obs_package_itself_exempt(self):
        src = """
        from repro import obs

        def flush():
            obs.metrics().snapshot()
        """
        assert codes(src, module="repro.obs.export") == []

    def test_outside_repro_clean(self):
        src = """
        from repro import obs

        def report():
            obs.metrics().snapshot()
        """
        assert codes(src, module=TESTS) == []

    def test_store_module_unguarded_flagged(self):
        # The result store grew store.hit/miss/digest counters; RPR301
        # must police that module like any other repro.* package.
        src = """
        from repro import obs as _obs

        def key_for(fn, kwargs):
            _obs.metrics().inc("store.digest")
        """
        assert codes(src, module="repro.store.store") == ["RPR301"]

    def test_store_module_guarded_clean(self):
        src = """
        from repro import obs as _obs

        def key_for(fn, kwargs):
            if _obs._ENABLED:
                _obs.metrics().inc("store.digest")
        """
        assert codes(src, module="repro.store.store") == []

    def test_spec_module_unguarded_flagged(self):
        # Sweep specs root the trace path tree with a sweep.spec span.
        src = """
        from repro import obs as _obs

        def run(self):
            with _obs.tracer().span("sweep.spec"):
                pass
        """
        assert codes(src, module="repro.harness.spec") == ["RPR301"]

    def test_spec_module_guarded_clean(self):
        src = """
        from repro import obs as _obs

        def run(self):
            if _obs._ENABLED:
                with _obs.tracer().span("sweep.spec"):
                    return 1
            return 1
        """
        assert codes(src, module="repro.harness.spec") == []

    def test_conditional_expression_guard_clean(self):
        # The `x if _obs._ENABLED else None` idiom used by the sweep
        # driver's store path counts as a guard.
        src = """
        from repro import obs as _obs

        def lookup():
            tracer = _obs.tracer() if _obs._ENABLED else None
            return tracer
        """
        assert codes(src, module="repro.harness.parallel") == []


class TestRegistry:
    def test_all_nine_single_file_codes_registered(self):
        from repro.lint.registry import all_rules

        expected = {
            "RPR101",
            "RPR102",
            "RPR103",
            "RPR104",
            "RPR105",
            "RPR201",
            "RPR202",
            "RPR203",
            "RPR301",
        }
        assert {rule.code for rule in all_rules()} == expected

    def test_known_codes_include_whole_program_families(self):
        from repro.lint.registry import known_codes

        codes = known_codes()
        assert codes == sorted(codes)
        assert len(codes) == 14
        assert {"RPR401", "RPR402", "RPR403", "RPR501", "RPR502"} <= set(codes)

    def test_flow_companions_share_single_file_codes(self):
        from repro.lint.registry import all_project_rules

        project_codes = {rule.code for rule in all_project_rules()}
        assert {"RPR101", "RPR102", "RPR103", "RPR201"} <= project_codes

    def test_rules_sorted_by_code(self):
        from repro.lint.registry import all_rules

        rule_codes = [rule.code for rule in all_rules()]
        assert rule_codes == sorted(rule_codes)


class TestBatchModuleScope:
    """The batched kernel and its lane planner sit inside the determinism
    rules' scope: RPR101 is global, RPR102-RPR105 name them explicitly."""

    BATCH_MODULES = ("repro.kernel.batch", "repro.harness.batch")

    def test_determinism_rules_apply_to_batch_modules(self):
        from repro.lint.registry import all_rules

        determinism = [
            r for r in all_rules() if r.code in
            ("RPR101", "RPR102", "RPR103", "RPR104", "RPR105")
        ]
        assert len(determinism) == 5
        for module in self.BATCH_MODULES:
            for rule in determinism:
                assert rule.applies_to(module), (rule.code, module)

    def test_scoped_rule_fires_inside_batch_modules(self):
        src = """
        import time
        t = time.time()
        """
        for module in self.BATCH_MODULES:
            assert codes(src, module=module) == ["RPR102"]
        assert codes(src, module=TESTS) == []
