"""Lint fixture: an automaton subclass only class-hierarchy analysis sees.

``LoggingLeaf`` extends ``MiddleMachine`` from another module; nothing in
this file names ``Automaton``, so the single-file RPR201 pass never
recognizes the class at all.
"""

from repro.harness.machines import MiddleMachine


class LoggingLeaf(MiddleMachine):
    name = "logging-leaf"

    def transition(self, state, pid, msg, d):
        print("step", pid)
        return state
