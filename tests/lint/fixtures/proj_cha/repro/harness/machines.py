"""Lint fixture: the intermediate layer of a cross-module class hierarchy.

``MiddleMachine`` subclasses ``Automaton`` but adds no methods, so it
lints clean; its job is to carry the ancestry into another file.
"""

from repro.kernel.automaton import Automaton


class MiddleMachine(Automaton):
    name = "middle-machine"
