"""Lint fixture: the other half of the import cycle."""

import repro.harness.alpha as alpha


def pong(depth):
    if depth <= 0:
        return alpha.entropy()
    return alpha.ping(depth - 1)
