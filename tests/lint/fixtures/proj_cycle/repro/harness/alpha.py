"""Lint fixture: one half of an import cycle carrying ambient-state taint."""

import os

import repro.harness.beta as beta


def ping(depth):
    if depth <= 0:
        return 0
    return beta.pong(depth - 1)


def entropy():
    return os.getpid()
