"""Lint fixture: kernel code calling into a cyclic module pair whose
depths eventually read process identity."""

import repro.harness.beta as beta


def advance(k):
    return beta.pong(k)
