"""Lint fixture: a sweep worker that loads its plugin dynamically.

``repro.store.signature`` keys cached rows on the *static* import closure
of the task function's module.  ``importlib.import_module`` below is
invisible to that closure, so editing ``plugin_fast.py`` does not move
this module's signature — the store would serve stale rows.  RPR501
exists to flag exactly this call site; the paired test in
``tests/lint/test_store_soundness.py`` demonstrates the stale hit.
"""

import importlib

from repro.harness.parallel import SweepTask


def run_plugin(name, payload):
    mod = importlib.import_module(f"repro.harness.plugin_{name}")
    return mod.apply(payload)


TASK = SweepTask(name="plugin", fn=run_plugin)
