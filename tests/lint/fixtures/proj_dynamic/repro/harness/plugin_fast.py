"""Lint fixture: the dynamically-loaded plugin the signature cannot see."""


def apply(payload):
    return [item * 2 for item in payload]
