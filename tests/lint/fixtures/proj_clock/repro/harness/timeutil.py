"""Lint fixture: a wall-clock read in a non-kernel helper module.

RPR102's single-file pass is scoped to kernel packages, so this file lints
clean on its own; the defect only exists once kernel code calls it.
"""

import time


def stamp():
    return time.time()
