"""Lint fixture: kernel code pulling the wall clock in via a helper call."""

from repro.harness.timeutil import stamp


def mark(state):
    state["observed_at"] = stamp()
    return state
