"""Lint fixture: a cross-module value binding of the global RNG.

``pick`` is an *assignment*, not a call — the single-file RPR101 pass has
nothing to flag here, and the kernel-side caller never mentions ``random``
at all.  Only whole-program resolution connects the two.
"""

import random

pick = random.choice
