"""Lint fixture: kernel code drawing randomness through a re-exported
binding (``pick = random.choice`` two modules away)."""

from repro.harness.randutil import pick


def choose_next(candidates):
    return pick(candidates)
