"""Lint fixture: an order-sensitive sink parameter in another module.

``items`` is iterated by a for-loop whose visit order shapes the result;
nothing in this file says callers will pass a set, so the single-file pass
has nothing to flag in either file alone.
"""


def fold(items):
    out = []
    for item in items:
        out.append(item * 31 + len(out))
    return out
