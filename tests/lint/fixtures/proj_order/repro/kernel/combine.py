"""Lint fixture: kernel code passing an evident set into a cross-module
order-observing sink."""

from repro.harness.agg import fold


def combine_quorum():
    return fold({3, 1, 2})
