"""Engine behaviour: suppressions, baselines, fingerprints, reporters."""

import json

import pytest

from repro.lint import lint_source
from repro.lint.baseline import SCHEMA, Baseline
from repro.lint.engine import collect_files, run_lint
from repro.lint.findings import Finding, assign_occurrences
from repro.lint.noqa import parse_suppressions
from repro.lint.reporters import JSON_SCHEMA, render_json, render_text

KERNEL = "repro.kernel.fixture"

VIOLATION = "import time\nt = time.time()\n"


def write_kernel_file(tmp_path, source, name="fixture.py"):
    """Place ``source`` under a ``repro/kernel/`` directory so the module
    name resolves inside the package-scoped rules' scope."""
    pkg = tmp_path / "repro" / "kernel"
    pkg.mkdir(parents=True, exist_ok=True)
    target = pkg / name
    target.write_text(source)
    return target


class TestNoqa:
    def test_bare_noqa_suppresses_everything(self):
        src = "import time\nt = time.time()  # repro: noqa\n"
        assert lint_source(src, module=KERNEL) == []

    def test_code_specific_noqa_suppresses_that_code(self):
        src = "import time\nt = time.time()  # repro: noqa RPR102 -- test\n"
        assert lint_source(src, module=KERNEL) == []

    def test_wrong_code_does_not_suppress(self):
        src = "import time\nt = time.time()  # repro: noqa RPR103 -- test\n"
        assert [f.code for f in lint_source(src, module=KERNEL)] == ["RPR102"]

    def test_noqa_on_other_line_does_not_suppress(self):
        src = "import time  # repro: noqa\nt = time.time()\n"
        assert [f.code for f in lint_source(src, module=KERNEL)] == ["RPR102"]

    def test_multiple_codes(self):
        supps = parse_suppressions(
            ["x = 1  # repro: noqa RPR102, RPR103 -- two birds"]
        )
        assert supps[1].codes == frozenset({"RPR102", "RPR103"})
        assert supps[1].reason == "two birds"

    def test_reason_parsed(self):
        supps = parse_suppressions(
            ["x  # repro: noqa RPR104 -- identity memo over pinned states"]
        )
        assert supps[1].reason == "identity memo over pinned states"

    def test_bare_marker_without_reason(self):
        supps = parse_suppressions(["x  # repro: noqa"])
        assert supps[1].codes == frozenset()
        assert supps[1].reason == ""

    def test_plain_comment_is_not_a_suppression(self):
        assert parse_suppressions(["x = 1  # a normal comment"]) == {}


class TestRunLint:
    def test_finding_surfaces(self, tmp_path):
        target = write_kernel_file(tmp_path, VIOLATION)
        result = run_lint([str(target)])
        assert [f.code for f in result.findings] == ["RPR102"]
        assert result.files_checked == 1
        assert result.exit_code() == 1

    def test_clean_file_exits_zero(self, tmp_path):
        target = write_kernel_file(tmp_path, "x = 1\n")
        result = run_lint([str(target)])
        assert result.findings == []
        assert result.exit_code(strict=True) == 0

    def test_syntax_error_reported_not_raised(self, tmp_path):
        target = write_kernel_file(tmp_path, "def broken(:\n")
        result = run_lint([str(target)])
        assert result.parse_errors
        assert result.exit_code() == 1

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint(["no/such/dir"])

    def test_unreasoned_noqa_strict_only(self, tmp_path):
        src = "import time\nt = time.time()  # repro: noqa RPR102\n"
        target = write_kernel_file(tmp_path, src)
        result = run_lint([str(target)])
        assert result.findings == []
        assert len(result.unreasoned_noqa) == 1
        assert result.exit_code(strict=False) == 0
        assert result.exit_code(strict=True) == 1

    def test_collect_files_sorted_and_deduped(self, tmp_path):
        write_kernel_file(tmp_path, "x = 1\n", name="b.py")
        write_kernel_file(tmp_path, "x = 1\n", name="a.py")
        (tmp_path / "repro" / "kernel" / "__pycache__").mkdir()
        (tmp_path / "repro" / "kernel" / "__pycache__" / "a.py").write_text("")
        files = collect_files([str(tmp_path), str(tmp_path)])
        names = [f.rsplit("/", 1)[-1] for f in files]
        assert names == ["a.py", "b.py"]


class TestBaseline:
    def test_round_trip(self, tmp_path):
        target = write_kernel_file(tmp_path, VIOLATION)
        first = run_lint([str(target)])
        assert len(first.findings) == 1

        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(first.findings).save(str(baseline_path))
        loaded = Baseline.load(str(baseline_path))

        second = run_lint([str(target)], baseline=loaded)
        assert second.findings == []
        assert len(second.baselined) == 1
        assert second.stale_baseline == []
        assert second.exit_code(strict=True) == 0

    def test_fixed_finding_leaves_stale_entry(self, tmp_path):
        target = write_kernel_file(tmp_path, VIOLATION)
        baseline = Baseline.from_findings(run_lint([str(target)]).findings)

        target.write_text("x = 1\n")  # violation fixed, entry now stale
        result = run_lint([str(target)], baseline=baseline)
        assert result.findings == []
        assert len(result.stale_baseline) == 1
        assert result.exit_code(strict=False) == 0
        assert result.exit_code(strict=True) == 1

    def test_schema_enforced_on_load(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/9", "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(str(bad))

    def test_saved_schema_marker(self, tmp_path):
        path = tmp_path / "b.json"
        Baseline().save(str(path))
        assert json.loads(path.read_text())["schema"] == SCHEMA

    def test_fingerprint_survives_line_shift(self):
        src = "import time\nt = time.time()\n"
        shifted = "import time\n\n\n\nt = time.time()\n"
        first = lint_source(src, module=KERNEL)
        second = lint_source(shifted, module=KERNEL)
        assign_occurrences(first)
        assign_occurrences(second)
        assert first[0].fingerprint == second[0].fingerprint
        assert first[0].line != second[0].line

    def test_occurrences_distinguish_identical_lines(self):
        finding = dict(
            code="RPR102",
            path="p.py",
            module=KERNEL,
            line=1,
            col=0,
            message="m",
            snippet="t = time.time()",
        )
        twins = [Finding(**finding), Finding(**finding)]
        assign_occurrences(twins)
        assert twins[0].fingerprint != twins[1].fingerprint


class TestReporters:
    def test_json_schema_and_shape(self, tmp_path):
        target = write_kernel_file(tmp_path, VIOLATION)
        result = run_lint([str(target)])
        report = json.loads(render_json(result))
        assert report["schema"] == JSON_SCHEMA
        assert report["summary"]["findings"] == 1
        assert report["summary"]["by_code"] == {"RPR102": 1}
        (entry,) = report["findings"]
        for key in ("code", "path", "module", "line", "message", "fingerprint"):
            assert key in entry
        assert entry["code"] == "RPR102"

    def test_text_report_names_code_and_location(self, tmp_path):
        target = write_kernel_file(tmp_path, VIOLATION)
        text = render_text(run_lint([str(target)]))
        assert "RPR102" in text
        assert f"{target}:2:" in text
        assert "1 finding(s)" in text

    def test_verbose_lists_suppressions(self, tmp_path):
        src = "import time\nt = time.time()  # repro: noqa RPR102 -- why\n"
        target = write_kernel_file(tmp_path, src)
        text = render_text(run_lint([str(target)]), verbose=True)
        assert "suppressed RPR102" in text
        assert "why" in text
