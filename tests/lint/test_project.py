"""Whole-program lint: cross-module flow rules, CHA, cycle tolerance,
the RPR4xx/RPR5xx families, and the incremental facts cache.

Every ``proj_*`` fixture under ``tests/lint/fixtures/`` is a small
committed module tree.  Each flow-aware scenario asserts two things:

* **the old pass provably missed it** — linting every file of the tree
  *individually* yields no findings;
* **the whole-program pass catches it** — linting the tree together
  yields the expected code, at the expected module, with an evidence
  chain that crosses files.
"""

import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.lint import lint_source
from repro.lint.engine import collect_files, run_lint
from repro.lint.project.cache import FactsCache
from repro.lint.reporters import render_json, report_sarif
from repro.store.store import ResultStore

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def deploy(tmp_path, scenario):
    """Copy a committed fixture tree into ``tmp_path`` and return it."""
    shutil.copytree(
        os.path.join(FIXTURES, scenario), tmp_path, dirs_exist_ok=True
    )
    return str(tmp_path)


def per_file_findings(tree):
    """Findings from linting every file of the tree *individually* —
    exactly what the pre-whole-program linter could see."""
    out = []
    for path in collect_files([tree]):
        out.extend(run_lint([path]).findings)
    return out


class TestCrossModuleFlow:
    def test_rng_binding_reexport_only_whole_program_sees(self, tmp_path):
        tree = deploy(tmp_path, "proj_rng")
        assert per_file_findings(tree) == []

        findings = run_lint([tree]).findings
        assert [f.code for f in findings] == ["RPR101"]
        (finding,) = findings
        assert finding.module == "repro.kernel.stepper"
        assert finding.rule_name == "global-random-flow"
        assert "random.choice" in finding.message
        assert finding.evidence

    def test_clock_taint_through_helper_call(self, tmp_path):
        tree = deploy(tmp_path, "proj_clock")
        assert per_file_findings(tree) == []

        findings = run_lint([tree]).findings
        assert [f.code for f in findings] == ["RPR102"]
        (finding,) = findings
        assert finding.module == "repro.kernel.clocked"
        assert finding.rule_name == "wall-clock-flow"
        # The chain bottoms out at the concrete read in the helper module.
        assert finding.evidence[-1]["module"] == "repro.harness.timeutil"
        assert "time.time" in finding.evidence[-1]["snippet"]

    def test_set_into_cross_module_order_sink(self, tmp_path):
        tree = deploy(tmp_path, "proj_order")
        assert per_file_findings(tree) == []

        findings = run_lint([tree]).findings
        assert [f.code for f in findings] == ["RPR103"]
        (finding,) = findings
        assert finding.module == "repro.kernel.combine"
        assert finding.rule_name == "unordered-iteration-flow"
        assert finding.evidence[-1]["module"] == "repro.harness.agg"

    def test_cha_discovers_automaton_two_modules_deep(self, tmp_path):
        tree = deploy(tmp_path, "proj_cha")
        assert per_file_findings(tree) == []

        findings = run_lint([tree]).findings
        assert [f.code for f in findings] == ["RPR201"]
        (finding,) = findings
        assert finding.module == "repro.harness.leaf"
        assert finding.rule_name == "automaton-purity-flow"
        assert "LoggingLeaf" in finding.message

    def test_import_cycle_tolerated_and_still_traced(self, tmp_path):
        tree = deploy(tmp_path, "proj_cycle")
        assert per_file_findings(tree) == []

        findings = run_lint([tree]).findings
        assert [f.code for f in findings] == ["RPR102"]
        (finding,) = findings
        assert finding.module == "repro.kernel.user"
        assert finding.evidence[-1]["module"] == "repro.harness.alpha"
        assert "getpid" in finding.evidence[-1]["snippet"]

    def test_evidence_survives_into_sarif_related_locations(self, tmp_path):
        tree = deploy(tmp_path, "proj_clock")
        sarif = report_sarif(run_lint([tree]))
        (result,) = sarif["runs"][0]["results"]
        related = result["relatedLocations"]
        assert any(
            "timeutil" in loc["physicalLocation"]["artifactLocation"]["uri"]
            for loc in related
        )


class TestParallelSafetyRules:
    WORKER = (
        "from repro.harness.parallel import SweepTask\n"
        "\n"
        "_TALLY = {}\n"
        "\n"
        "\n"
        "def worker(seed):\n"
        "    _TALLY[seed] = seed\n"
        "    return seed\n"
        "\n"
        "\n"
        "TASK = SweepTask(name='t', fn=worker)\n"
    )

    def test_rpr401_worker_reachable_global_write(self):
        codes = [
            f.code
            for f in lint_source(self.WORKER, module="repro.harness.work")
        ]
        assert "RPR401" in codes

    def test_rpr401_silent_outside_the_cone(self):
        src = self.WORKER.replace("fn=worker", "fn=other")
        codes = [f.code for f in lint_source(src, module="repro.harness.work")]
        assert "RPR401" not in codes

    def test_rpr402_lambda_registered_as_task_fn(self):
        src = (
            "from repro.harness.parallel import SweepTask\n"
            "TASK = SweepTask(name='t', fn=lambda seed: seed)\n"
        )
        findings = lint_source(src, module="repro.harness.work")
        assert [f.code for f in findings] == ["RPR402"]

    def test_rpr402_local_closure_passed_to_run_sweep(self):
        src = (
            "from repro.harness.parallel import run_sweep\n"
            "\n"
            "\n"
            "def launch(tasks):\n"
            "    def fold(row):\n"
            "        return row\n"
            "    return run_sweep(tasks, fold)\n"
        )
        findings = lint_source(src, module="repro.harness.work")
        assert [f.code for f in findings] == ["RPR402"]
        assert "fold" in findings[0].message

    def test_rpr403_out_of_band_registry_reset(self):
        src = (
            "from repro import obs\n"
            "\n"
            "\n"
            "def clear():\n"
            "    obs.metrics().reset()\n"
        )
        codes = [f.code for f in lint_source(src, module="repro.harness.work")]
        assert "RPR403" in codes

    def test_rpr403_allowed_inside_protocol_modules(self):
        src = (
            "from repro import obs\n"
            "\n"
            "\n"
            "def clear():\n"
            "    obs.metrics().reset()\n"
        )
        codes = [
            f.code for f in lint_source(src, module="repro.harness.parallel")
        ]
        assert "RPR403" not in codes


class TestStoreSoundnessRules:
    def test_rpr502_module_monkey_patch_in_kernel_scope(self):
        src = (
            "import random\n"
            "\n"
            "\n"
            "def pin():\n"
            "    random.seed = lambda s: None\n"
        )
        codes = [f.code for f in lint_source(src, module="repro.kernel.x")]
        assert "RPR502" in codes

    def test_rpr502_silent_outside_cone_and_kernel(self):
        src = (
            "import random\n"
            "\n"
            "\n"
            "def pin():\n"
            "    random.seed = lambda s: None\n"
        )
        codes = [f.code for f in lint_source(src, module="repro.analysis.x")]
        assert "RPR502" not in codes


class TestFactsCache:
    def test_warm_run_is_byte_identical_and_all_hits(self, tmp_path):
        tree = deploy(tmp_path / "tree", "proj_rng")
        store_root = str(tmp_path / "store")

        cold_cache = FactsCache(ResultStore(store_root))
        cold = run_lint([tree], cache=cold_cache)
        assert cold.cache_stats == {
            "hits": 0,
            "misses": cold.files_checked,
        }

        warm_cache = FactsCache(ResultStore(store_root))
        warm = run_lint([tree], cache=warm_cache)
        assert warm.cache_stats == {"hits": warm.files_checked, "misses": 0}
        assert render_json(warm) == render_json(cold)

    def test_edited_file_misses_unchanged_files_hit(self, tmp_path):
        tree = deploy(tmp_path / "tree", "proj_rng")
        store_root = str(tmp_path / "store")
        run_lint([tree], cache=FactsCache(ResultStore(store_root)))

        kernel_file = os.path.join(tree, "repro", "kernel", "stepper.py")
        with open(kernel_file, "a") as fh:
            fh.write("\n\nEXTRA = 1\n")
        result = run_lint([tree], cache=FactsCache(ResultStore(store_root)))
        assert result.cache_stats == {"hits": 1, "misses": 1}
        assert [f.code for f in result.findings] == ["RPR101"]

    def test_cli_changed_double_run_byte_identical(self, tmp_path):
        tree = deploy(tmp_path / "tree", "proj_cycle")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        env["REPRO_STORE_DIR"] = str(tmp_path / "store")

        def run():
            return subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "lint",
                    tree,
                    "--changed",
                    "--format",
                    "json",
                ],
                capture_output=True,
                text=True,
                cwd=REPO_ROOT,
                env=env,
            )

        first, second = run(), run()
        assert first.returncode == second.returncode == 1
        assert first.stdout == second.stdout
        assert "miss" in first.stderr and "hit" in second.stderr
        report = json.loads(second.stdout)
        files = report["summary"]["files_checked"]
        assert f"{files} hit(s), 0 miss(es)" in second.stderr
