"""The ABD register emulation over Σ quorums: safety across random runs."""

import random

import pytest

from repro.detectors import Sigma
from repro.kernel.failures import FailurePattern
from repro.registers import RegisterHarness, check_register_safety


def random_scripts(n, rng, ops_per_client=3):
    scripts = {}
    counter = 0
    for p in range(n):
        script = []
        for _ in range(ops_per_client):
            if rng.random() < 0.5:
                counter += 1
                script.append(("write", f"v{p}.{counter}"))
            else:
                script.append(("read",))
        scripts[p] = script
    return scripts


def run_abd(pattern, scripts, seed, strategy="pivot"):
    history = Sigma(strategy).sample_history(pattern, random.Random(seed + 11))
    harness = RegisterHarness(
        pattern=pattern, history=history, scripts=scripts, seed=seed
    )
    return harness.run()


@pytest.mark.parametrize("seed", range(6))
class TestAtomicityUnderSigma:
    def test_random_scripts_random_patterns(self, seed):
        rng = random.Random(f"abd/{seed}")
        n = rng.randint(3, 5)
        crashed = rng.sample(range(n), rng.randint(0, n - 1))
        pattern = FailurePattern(n, {p: rng.randint(20, 60) for p in crashed})
        scripts = random_scripts(n, rng)
        result, records, procs = run_abd(pattern, scripts, seed)
        completed_by_correct = [
            r for r in records if r.pid in pattern.correct
        ]
        assert completed_by_correct, "correct clients must finish"
        from repro.registers import RegisterHarness

        report = check_register_safety(
            records, RegisterHarness.incomplete_writes(procs)
        )
        assert report.ok, report.violations[:3]


class TestBehaviour:
    def test_read_sees_prior_write(self):
        pattern = FailurePattern(3, {})
        scripts = {0: [("write", "hello")], 1: [("read",), ("read",)], 2: []}
        result, records, _ = run_abd(pattern, scripts, seed=1)
        reads = [r for r in records if r.kind == "read"]
        write = next(r for r in records if r.kind == "write")
        late_reads = [r for r in reads if r.invoked_at > write.responded_at]
        for r in late_reads:
            assert r.value == "hello"

    def test_initial_reads_return_none(self):
        pattern = FailurePattern(3, {})
        scripts = {0: [("read",)], 1: [], 2: []}
        _, records, _ = run_abd(pattern, scripts, seed=2)
        assert records[0].value is None
        assert records[0].ts == (0, -1)

    def test_writes_get_distinct_increasing_timestamps(self):
        pattern = FailurePattern(3, {})
        scripts = {
            0: [("write", "a"), ("write", "b")],
            1: [("write", "c")],
            2: [],
        }
        _, records, _ = run_abd(pattern, scripts, seed=3)
        writes = [r for r in records if r.kind == "write"]
        stamps = [w.ts for w in writes]
        assert len(set(stamps)) == len(stamps)

    def test_works_with_shrinking_quorums(self):
        pattern = FailurePattern(4, {3: 30})
        rng = random.Random(4)
        scripts = random_scripts(4, rng, ops_per_client=2)
        result, records, procs = run_abd(pattern, scripts, seed=4, strategy="shrinking")
        from repro.registers import RegisterHarness

        assert check_register_safety(
            records, RegisterHarness.incomplete_writes(procs)
        ).ok

    def test_unknown_operation_rejected_at_construction(self):
        from repro.registers import RegisterClient

        with pytest.raises(ValueError, match="unknown register operation"):
            RegisterClient([("cas", 1, 2)])
        with pytest.raises(ValueError, match="exactly one value"):
            RegisterClient([("write",)])


class TestSafetyChecker:
    def make(self, kind, ts, value, invoked, responded, pid=0):
        from repro.registers import OperationRecord

        return OperationRecord(
            pid=pid, kind=kind, value=value, ts=ts,
            invoked_at=invoked, responded_at=responded,
        )

    def test_unwritten_timestamp_flagged(self):
        records = [self.make("read", (5, 1), "ghost", 0, 1)]
        report = check_register_safety(records)
        assert not report.ok
        assert "never-written" in report.violations[0]

    def test_wrong_value_for_timestamp_flagged(self):
        records = [
            self.make("write", (1, 0), "real", 0, 1),
            self.make("read", (1, 0), "fake", 2, 3),
        ]
        assert not check_register_safety(records).ok

    def test_duplicate_write_timestamps_flagged(self):
        records = [
            self.make("write", (1, 0), "a", 0, 1),
            self.make("write", (1, 0), "b", 2, 3, pid=1),
        ]
        report = check_register_safety(records)
        assert any("uniqueness" in v for v in report.violations)

    def test_stale_read_flagged(self):
        records = [
            self.make("write", (1, 0), "new", 0, 5),
            self.make("read", (0, -1), None, 6, 8, pid=1),
        ]
        report = check_register_safety(records)
        assert any("stale read" in v for v in report.violations)

    def test_overlapping_operations_unconstrained(self):
        records = [
            self.make("write", (1, 0), "new", 0, 10),
            self.make("read", (0, -1), None, 5, 8, pid=1),  # overlaps
        ]
        assert check_register_safety(records).ok


class TestCheckerAgainstSequentialHistories:
    """Property: any *sequential* history built by replaying operations on a
    real register one at a time is accepted by the safety checker."""

    def test_random_sequential_histories_pass(self):
        import random

        from repro.registers import OperationRecord

        for seed in range(25):
            rng = random.Random(f"seq/{seed}")
            ts = (0, -1)
            value = None
            counter = 0
            clock = 0
            records = []
            for _ in range(rng.randint(1, 12)):
                pid = rng.randrange(4)
                invoked = clock
                clock += rng.randint(1, 3)
                if rng.random() < 0.5:
                    counter += 1
                    ts = (counter, pid)
                    value = f"v{counter}"
                    records.append(
                        OperationRecord(pid, "write", value, ts, invoked, clock)
                    )
                else:
                    records.append(
                        OperationRecord(pid, "read", value, ts, invoked, clock)
                    )
                clock += rng.randint(1, 3)
            report = check_register_safety(records)
            assert report.ok, (seed, report.violations)
