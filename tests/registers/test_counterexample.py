"""Σν cannot implement registers: the lost-write scenario and its control."""

import pytest

from repro.registers import run_lost_write_scenario
from repro.registers.counterexample import run_sigma_control_arm


@pytest.fixture(scope="module")
def report():
    return run_lost_write_scenario(seed=0)


class TestLostWrite:
    def test_anomaly_manifests(self, report):
        assert report.violated
        assert not report.safety.ok
        assert any("stale read" in v for v in report.safety.violations)

    def test_write_completed_before_read_invoked(self, report):
        assert report.write.responded_at < report.stale_read.invoked_at

    def test_read_returned_pre_write_state(self, report):
        assert report.stale_read.ts < report.write.ts
        assert report.stale_read.value is None

    def test_history_is_legal_sigma_nu_but_not_sigma(self, report):
        assert report.sigma_nu_check.ok, report.sigma_nu_check.violations
        assert not report.sigma_check.ok

    def test_links_remained_reliable(self, report):
        """The write is eventually visible at every correct replica — the
        register's *ordering* broke, not the links."""
        assert report.eventually_visible

    def test_writer_really_crashed(self, report):
        assert report.crash_time is not None

    @pytest.mark.parametrize("seed", [1, 2])
    def test_robust_across_seeds(self, seed):
        assert run_lost_write_scenario(seed=seed).violated


class TestSigmaControlArm:
    def test_intersecting_quorum_blocks_the_isolated_write(self):
        """Under Σ the writer's quorum {0,1} forces contact with a replica
        that readers will consult; isolated, the write cannot complete."""
        assert run_sigma_control_arm(seed=0)
