"""Tables, summaries and run metrics."""

import math

import pytest

from repro.analysis.metrics import collect_metrics
from repro.analysis.stats import Summary, rate, summarize
from repro.analysis.tables import Table


class TestTable:
    def test_render_contains_title_columns_rows(self):
        table = Table("My results", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", frozenset({3, 1}))
        text = table.render()
        assert "My results" in text
        assert "a" in text and "b" in text
        assert "2.50" in text
        assert "{1,3}" in text

    def test_bools_render_yes_no(self):
        table = Table("t", ["ok"])
        table.add_row(True)
        table.add_row(False)
        assert "yes" in table.render()
        assert "no" in table.render()

    def test_row_arity_checked(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_notes_render(self):
        table = Table("t", ["a"])
        table.add_note("caveat emptor")
        assert "note: caveat emptor" in table.render()

    def test_markdown_shape(self):
        table = Table("t", ["col1", "col2"])
        table.add_row(1, 2)
        md = table.to_markdown()
        assert "| col1 | col2 |" in md
        assert "| 1 | 2 |" in md


class TestSummaries:
    def test_summarize_basic(self):
        s = summarize([1, 2, 3, 4])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1 and s.maximum == 4
        assert s.median == 2.5

    def test_summarize_odd_median(self):
        assert summarize([5, 1, 3]).median == 3

    def test_summarize_empty_is_nan(self):
        s = summarize([])
        assert s.count == 0
        assert math.isnan(s.mean)

    def test_std(self):
        s = summarize([2, 2, 2])
        assert s.std == 0.0

    def test_rate(self):
        assert rate(3, 4) == 0.75
        assert math.isnan(rate(0, 0))


class TestRunMetrics:
    def test_collect_from_real_run(self):
        import random

        from repro.harness.runner import random_binary_proposals, run_nuc
        from repro.kernel.failures import FailurePattern

        pattern = FailurePattern(3, {2: 10})
        proposals = random_binary_proposals(3, random.Random(0))
        outcome = run_nuc(pattern, proposals, seed=0)
        metrics = outcome.metrics
        assert metrics.steps > 0
        assert metrics.decided_correct == 2
        assert metrics.correct_count == 2
        assert metrics.all_correct_decided
        assert metrics.first_decision_time <= metrics.last_decision_time
        assert metrics.messages_per_step > 0


class TestMessageBreakdown:
    def test_stack_breakdown_unwraps_channels(self):
        import random

        from repro.analysis.metrics import message_breakdown
        from repro.harness.runner import run_stack
        from repro.kernel.failures import FailurePattern

        pattern = FailurePattern(2, {})
        outcome = run_stack(pattern, {0: "a", 1: "a"}, seed=1)
        counts = message_breakdown(outcome.result)
        assert counts.get("DAG", 0) > 0  # booster traffic
        assert counts.get("LEAD", 0) > 0  # A_nuc traffic
        assert counts.get("REP", 0) > 0

    def test_anuc_breakdown_tags(self):
        import random

        from repro.analysis.metrics import message_breakdown
        from repro.harness.runner import run_nuc
        from repro.kernel.failures import FailurePattern

        pattern = FailurePattern(3, {})
        outcome = run_nuc(pattern, {p: "x" for p in range(3)}, seed=2)
        counts = message_breakdown(outcome.result)
        for tag in ("LEAD", "REP", "PROP", "SAW", "ACK"):
            assert counts.get(tag, 0) > 0, counts
