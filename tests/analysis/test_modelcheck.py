"""Bounded exhaustive exploration of tiny systems.

These tests prove safety over *every* schedule prefix up to a step bound —
a different kind of evidence than the sampled sweeps: agreement and
validity cannot be broken by any interleaving or delivery choice the bound
reaches.
"""

import pytest

from repro.analysis.modelcheck import (
    agreement_invariant,
    conjoin,
    explore,
    validity_invariant,
)
from repro.consensus.quorum_mr import QuorumMR
from repro.kernel.automaton import Automaton, TransitionOutcome
from repro.kernel.failures import FailurePattern


def constant_history(leader, quorum):
    return lambda p, t: (leader, quorum)


class TestExploreMachinery:
    def test_counts_configurations(self):
        pattern = FailurePattern(2, {})
        report = explore(
            QuorumMR(),
            pattern,
            {0: "a", 1: "a"},
            constant_history(0, frozenset({0, 1})),
            invariant=lambda d, v: None,
            max_depth=4,
        )
        assert report.ok
        assert report.configurations > 4
        assert report.transitions >= report.configurations - 1

    def test_depth_bound_respected(self):
        pattern = FailurePattern(2, {})
        shallow = explore(
            QuorumMR(),
            pattern,
            {0: "a", 1: "b"},
            constant_history(0, frozenset({0, 1})),
            invariant=lambda d, v: None,
            max_depth=3,
        )
        deep = explore(
            QuorumMR(),
            pattern,
            {0: "a", 1: "b"},
            constant_history(0, frozenset({0, 1})),
            invariant=lambda d, v: None,
            max_depth=5,
        )
        assert deep.configurations > shallow.configurations

    def test_crashed_processes_never_step(self):
        pattern = FailurePattern(2, {1: 0})

        class Stepper(Automaton):
            def initial_state(self, pid, n, proposal):
                return {"pid": pid, "steps": 0}

            def transition(self, state, pid, msg, d):
                state["steps"] += 1
                assert pid == 0, "crashed process stepped!"
                return TransitionOutcome(state=state, sends=[])

            def snapshot(self, state):
                return (state["pid"], state["steps"])

        report = explore(
            Stepper(),
            pattern,
            {0: None, 1: None},
            lambda p, t: None,
            invariant=lambda d, v: None,
            max_depth=4,
        )
        assert report.ok

    def test_violation_reported_with_trace(self):
        class DecideOwn(Automaton):
            """Every process instantly decides its own proposal: agreement
            violations are reachable immediately."""

            def initial_state(self, pid, n, proposal):
                return {"decided": None, "x": proposal, "steps": 0}

            def transition(self, state, pid, msg, d):
                state["steps"] += 1
                state["decided"] = state["x"]
                return TransitionOutcome(state=state, sends=[])

            def decision(self, state):
                return state["decided"]

            def snapshot(self, state):
                return (state["x"], state["decided"], state["steps"])

        pattern = FailurePattern(2, {})
        report = explore(
            DecideOwn(),
            pattern,
            {0: "a", 1: "b"},
            lambda p, t: None,
            invariant=agreement_invariant(pattern.correct),
            max_depth=4,
        )
        assert not report.ok
        # DFS order may find a deep witness first; the trace matches depth.
        assert len(report.violation.trace) == report.violation.depth
        assert "disagree" in report.violation.detail


class TestQuorumMRSafetyExhaustive:
    """Every schedule prefix of quorum-MR under a fixed Sigma history keeps
    uniform agreement and validity (n=2, bounded depth)."""

    @pytest.mark.parametrize(
        "proposals", [{0: 0, 1: 1}, {0: 1, 1: 1}]
    )
    def test_failure_free(self, proposals):
        pattern = FailurePattern(2, {})
        invariant = conjoin(
            agreement_invariant(pattern.correct, uniform=True),
            validity_invariant(frozenset(proposals.values())),
        )
        report = explore(
            QuorumMR(),
            pattern,
            proposals,
            constant_history(0, frozenset({0, 1})),
            invariant=invariant,
            max_depth=9,
            max_configs=150_000,
        )
        assert report.ok, report.violation
        assert report.configurations > 100

    def test_one_crash(self):
        pattern = FailurePattern(2, {1: 3})
        invariant = conjoin(
            agreement_invariant(pattern.correct, uniform=True),
            validity_invariant(frozenset({0, 1})),
        )
        report = explore(
            QuorumMR(),
            pattern,
            {0: 0, 1: 1},
            constant_history(0, frozenset({0})),
            invariant=invariant,
            max_depth=9,
        )
        assert report.ok, report.violation


class TestNaiveAlgorithmBoundedCounterexample:
    def test_split_quorums_reach_disagreement(self):
        """Under a Sigma^nu history with disjoint singleton quorums and
        per-process self-leaders, the naive algorithm reaches a uniform
        disagreement within a few steps — found exhaustively, not crafted."""
        from repro.consensus.quorum_mr import NaiveSigmaNuConsensus

        pattern = FailurePattern(2, {1: 10**6})  # 1 is faulty, far future

        def history(p, t):
            return (p, frozenset({p}))  # everyone leads and quorums itself

        report = explore(
            NaiveSigmaNuConsensus(),
            pattern,
            {0: "a", 1: "b"},
            history,
            invariant=agreement_invariant(frozenset({0, 1}), uniform=True),
            max_depth=8,
        )
        assert not report.ok
        assert "disagree" in report.violation.detail
        # nonuniform agreement over the *correct* set alone is untouched:
        report2 = explore(
            NaiveSigmaNuConsensus(),
            pattern,
            {0: "a", 1: "b"},
            history,
            invariant=agreement_invariant(pattern.correct),
            max_depth=8,
        )
        assert report2.ok


class TestAnucBoundedExploration:
    def test_anuc_nonuniform_agreement_over_all_prefixes(self):
        """Every schedule prefix of native A_nuc under a split-quorum
        Sigma^nu+ history keeps nonuniform agreement and validity (n=2,
        process 1 faulty-by-declaration, bounded depth)."""
        from repro.core.nuc_automaton import AnucAutomaton

        pattern = FailurePattern(2, {1: 10**6})

        def history(p, t):
            return (p, frozenset({p}))  # both lead & quorum themselves

        invariant = conjoin(
            agreement_invariant(pattern.correct),
            validity_invariant(frozenset({"a", "b"})),
        )
        report = explore(
            AnucAutomaton(),
            pattern,
            {0: "a", 1: "b"},
            history,
            invariant=invariant,
            max_depth=8,
            max_configs=120_000,
        )
        assert report.ok, report.violation
        assert report.configurations > 50

    def test_anuc_uniform_gap_visible_to_explorer(self):
        """With the awareness gate off, the explorer can reach a uniform
        disagreement (faulty process deciding its own value) while
        nonuniform agreement still holds on every prefix."""
        from repro.core.nuc_automaton import AnucAutomaton

        pattern = FailurePattern(2, {1: 10**6})

        def history(p, t):
            return (p, frozenset({p}))

        uniform = explore(
            AnucAutomaton(enable_quorum_awareness=False),
            pattern,
            {0: "a", 1: "b"},
            history,
            invariant=agreement_invariant(frozenset({0, 1}), uniform=True),
            max_depth=8,
            max_configs=120_000,
        )
        assert not uniform.ok
        nonuniform = explore(
            AnucAutomaton(enable_quorum_awareness=False),
            pattern,
            {0: "a", 1: "b"},
            history,
            invariant=agreement_invariant(pattern.correct),
            max_depth=8,
            max_configs=120_000,
        )
        assert nonuniform.ok
