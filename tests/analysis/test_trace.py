"""Run transcripts (presentation helpers)."""

import random

import pytest

from repro.analysis.trace import (
    decision_summary,
    format_step,
    summarize_detector,
    summarize_payload,
    transcript,
)
from repro.consensus import QuorumMR
from repro.core.dag import DagCore
from repro.detectors import Omega, PairedDetector, Sigma
from repro.kernel.automaton import AutomatonProcess
from repro.kernel.failures import FailurePattern
from repro.kernel.system import System


@pytest.fixture(scope="module")
def sample_run():
    pattern = FailurePattern(3, {2: 15})
    detector = PairedDetector(Omega(), Sigma("pivot"))
    history = detector.sample_history(pattern, random.Random(1))
    proposals = {p: f"v{p}" for p in range(3)}
    processes = {p: AutomatonProcess(QuorumMR(), proposals[p]) for p in range(3)}
    system = System(processes, pattern, history, seed=1)
    return system.run(max_steps=4000, stop_when=lambda s: s.all_correct_decided())


class TestPayloadSummaries:
    def test_dag_payload_compact(self):
        core = DagCore(0, 2)
        for i in range(5):
            core.sample(i)
        assert summarize_payload(core.dag) == "DAG[5]"

    def test_channel_wrapped_dag(self):
        core = DagCore(0, 2)
        core.sample(0)
        assert summarize_payload(("B", core.dag)) == "(B, DAG[1])"

    def test_tagged_tuple(self):
        text = summarize_payload(("REP", 3, "v"))
        assert text.startswith("(REP, 3,")

    def test_frozensets_sorted(self):
        assert summarize_payload(("LEAD", frozenset({2, 0}))) == "(LEAD, {0,2})"

    def test_long_payloads_truncated(self):
        text = summarize_payload(("TAG", "x" * 500))
        assert len(text) <= 60

    def test_detector_pair(self):
        assert summarize_detector((1, frozenset({0, 1}))) == "(1, {0,1})"


class TestTranscript:
    def test_every_step_rendered(self, sample_run):
        text = transcript(sample_run)
        assert text.count("t=") == len(sample_run.steps)

    def test_decision_markers_present(self, sample_run):
        text = transcript(sample_run)
        for p, v in sample_run.decisions.items():
            assert f"process {p} DECIDES {v!r}" in text

    def test_crash_marker_present(self, sample_run):
        text = transcript(sample_run)
        assert "process 2 crashes" in text

    def test_limit_truncates(self, sample_run):
        text = transcript(sample_run, limit=5)
        assert text.count("t=") == 5
        assert "steps total" in text

    def test_pid_filter(self, sample_run):
        text = transcript(sample_run, pids=[0])
        for line in text.splitlines():
            if line.startswith("t="):
                assert " p0 " in line

    def test_window_start(self, sample_run):
        text = transcript(sample_run, start=10)
        first = next(l for l in text.splitlines() if l.startswith("t="))
        assert int(first.split()[0][2:]) >= 10


class TestDecisionSummary:
    def test_lists_all_processes(self, sample_run):
        text = decision_summary(sample_run)
        assert text.count("p") >= 3
        assert "correct" in text and "faulty" in text

    def test_undecided_marked(self):
        pattern = FailurePattern(2, {})
        from repro.detectors.base import FunctionalHistory
        from repro.kernel.automaton import Process

        class Idle(Process):
            def program(self, ctx):
                while True:
                    yield from ctx.take_step()

        system = System(
            {0: Idle(), 1: Idle()},
            pattern,
            FunctionalHistory(lambda p, t: None),
            seed=0,
        )
        result = system.run(max_steps=10)
        assert decision_summary(result).count("undecided") == 2
