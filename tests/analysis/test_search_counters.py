"""Edge cases of collect_search_counters and its registry hand-off."""

from repro import obs
from repro.analysis.metrics import collect_search_counters


class _Plain:
    """A process with no search_counters method at all."""


class _Counting:
    def __init__(self, counters):
        self._counters = counters

    def search_counters(self):
        return self._counters


class TestCollect:
    def test_no_counter_bearing_processes(self):
        assert collect_search_counters([_Plain(), _Plain()]) is None

    def test_empty_iterable(self):
        assert collect_search_counters([]) is None

    def test_all_empty_dicts_collapse_to_none(self):
        procs = [_Counting({}), _Counting(None), _Plain()]
        assert collect_search_counters(procs) is None

    def test_overlapping_keys_are_summed(self):
        procs = [
            _Counting({"nodes": 3, "hits": 1}),
            _Counting({"nodes": 4}),
            _Plain(),
        ]
        assert collect_search_counters(procs) == {"nodes": 7, "hits": 1}

    def test_mixed_empty_and_nonempty(self):
        procs = [_Counting({}), _Counting({"nodes": 2})]
        assert collect_search_counters(procs) == {"nodes": 2}


class TestRegistryHandoff:
    def test_absorbed_into_metrics_when_enabled(self):
        obs.disable()
        obs.reset_metrics()
        try:
            with obs.tracing("unit"):
                collect_search_counters([_Counting({"nodes": 5})])
                assert obs.metrics().counters() == {"search.nodes": 5}
        finally:
            obs.disable()
            obs.reset_metrics()

    def test_not_absorbed_when_disabled(self):
        obs.disable()
        obs.reset_metrics()
        collect_search_counters([_Counting({"nodes": 5})])
        assert obs.metrics().counters() == {}
