"""Theorem 7.1 ONLY IF: the two-run partition adversary."""

import pytest

from repro.separation.adversary import run_partition_adversary
from repro.separation.from_scratch_sigma import FromScratchSigma


def factory_for(n, t):
    return lambda pid: FromScratchSigma(n, t)


class TestAdversaryBreaksHalfOrMore:
    @pytest.mark.parametrize("n,t", [(2, 1), (4, 2), (5, 3), (6, 3)])
    def test_intersection_violated(self, n, t):
        verdict = run_partition_adversary(factory_for(n, t), n, t, seed=3)
        assert verdict.violated, verdict.reason
        assert verdict.a_quorum and verdict.b_quorum
        assert not (verdict.a_quorum & verdict.b_quorum)
        assert verdict.a_quorum <= verdict.partition_a
        assert verdict.b_quorum <= verdict.partition_b

    def test_replay_consistency(self):
        verdict = run_partition_adversary(factory_for(4, 2), 4, 2, seed=1)
        assert verdict.replay_consistent
        assert verdict.notes == []

    def test_partition_sizes_within_t(self):
        verdict = run_partition_adversary(factory_for(6, 3), 6, 3, seed=0)
        assert len(verdict.partition_a) <= 3
        assert len(verdict.partition_b) <= 3
        assert verdict.partition_a | verdict.partition_b == set(range(6))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_deterministic_per_seed_and_robust_across(self, seed):
        verdict = run_partition_adversary(factory_for(4, 2), 4, 2, seed=seed)
        assert verdict.violated


class TestAdversaryInapplicableBelowHalf:
    @pytest.mark.parametrize("n,t", [(3, 1), (5, 2), (7, 3)])
    def test_no_partition_exists(self, n, t):
        verdict = run_partition_adversary(factory_for(n, t), n, t, seed=0)
        assert not verdict.violated
        assert "no partition" in verdict.reason


class TestAdversaryAgainstStubbornTransformations:
    def test_never_outputting_partition_quorum_survives_r(self):
        """A 'transformation' that always outputs Pi never exposes a
        partition-contained quorum; the adversary reports that it survived
        run R (of course, such an algorithm is not a Sigma transformation —
        it fails completeness, which the report spells out)."""
        from repro.kernel.automaton import Process

        class AlwaysPi(Process):
            def __init__(self, n):
                self.n = n

            def initial_output(self):
                return frozenset(range(self.n))

            def program(self, ctx):
                while True:
                    yield from ctx.take_step()

        verdict = run_partition_adversary(lambda pid: AlwaysPi(4), 4, 2, seed=0)
        assert not verdict.violated
        assert "never" in verdict.reason

    def test_give_up_completeness_survives_intersection_attack(self):
        """An algorithm that outputs only its own partition-view after run R
        but refuses to shrink in R' keeps intersection by sacrificing
        completeness — the other horn of the theorem's dilemma."""
        from repro.kernel.automaton import Process

        class StubbornHalf(Process):
            """Outputs {0,1} exactly once, whoever it is; never again."""

            def __init__(self, n, pid):
                self.n = n
                self.pid = pid

            def initial_output(self):
                return frozenset(range(self.n))

            def program(self, ctx):
                yield from ctx.take_step()
                if ctx.pid in (0, 1):
                    ctx.output(frozenset({0, 1}))
                while True:
                    yield from ctx.take_step()

        verdict = run_partition_adversary(
            lambda pid: StubbornHalf(4, pid), 4, 2, seed=0
        )
        assert not verdict.violated
        assert "completeness" in verdict.reason
