"""Section 6.3 contamination: the naive algorithm falls, A_nuc stands."""

import pytest

from repro.separation.contamination import (
    PROPOSALS,
    run_contamination_scenario,
)


@pytest.fixture(scope="module")
def naive_report():
    return run_contamination_scenario("naive", seed=0)


@pytest.fixture(scope="module")
def anuc_report():
    return run_contamination_scenario("anuc", seed=0)


class TestNaiveContamination:
    def test_nonuniform_agreement_violated(self, naive_report):
        assert naive_report.contaminated
        assert naive_report.decisions[0] == "v"
        assert naive_report.decisions[1] == "w"

    def test_violation_is_between_correct_processes(self, naive_report):
        correct = naive_report.pattern.correct
        assert {0, 1} <= correct
        assert naive_report.decisions[0] != naive_report.decisions[1]

    def test_history_was_legal_omega(self, naive_report):
        assert naive_report.omega_check.ok, naive_report.omega_check.violations

    def test_history_was_legal_sigma_nu(self, naive_report):
        assert naive_report.sigma_check.ok, naive_report.sigma_check.violations

    def test_crash_occurred_mid_run(self, naive_report):
        assert naive_report.crash_time is not None
        assert 0 < naive_report.crash_time < naive_report.steps

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_robust_across_seeds(self, seed):
        report = run_contamination_scenario("naive", seed=seed)
        assert report.contaminated
        assert report.omega_check.ok and report.sigma_check.ok


class TestAnucResists:
    def test_no_contamination(self, anuc_report):
        assert not anuc_report.contaminated
        assert anuc_report.decisions[0] == "v"
        assert anuc_report.decisions[1] == "v"

    def test_distrust_mechanism_engaged(self, anuc_report):
        """The defense is active, not accidental: correct processes
        distrusted the faulty leader."""
        assert any(q == 2 for _, q in anuc_report.distrust_events)

    def test_history_family_is_valid_sigma_nu_plus(self, anuc_report):
        assert anuc_report.sigma_check.ok, anuc_report.sigma_check.violations
        assert anuc_report.omega_check.ok

    @pytest.mark.parametrize("seed", [1, 2])
    def test_robust_across_seeds(self, seed):
        report = run_contamination_scenario("anuc", seed=seed)
        assert not report.contaminated
        assert report.decisions[0] == report.decisions[1] == "v"


class TestScenarioShape:
    def test_proposals_fixed(self):
        assert PROPOSALS == {0: "v", 1: "v", 2: "w"}

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            run_contamination_scenario("bogus")

    def test_faulty_process_may_decide_differently(self, naive_report):
        """Process 2's 'w' decision is allowed by nonuniform consensus —
        the violation is solely 0 vs 1."""
        assert naive_report.decisions.get(2) in (None, "w")
