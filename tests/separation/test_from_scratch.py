"""Theorem 7.1 IF: implementing Sigma with no detector when t < n/2."""

import random

import pytest

from repro.detectors import check_sigma, check_sigma_nu
from repro.harness.runner import run_from_scratch_sigma
from repro.kernel.failures import FailurePattern
from repro.separation.from_scratch_sigma import FromScratchSigma


def majority_cases():
    return [(3, 1), (4, 1), (5, 2), (7, 3)]


class TestFromScratchSigmaMajority:
    @pytest.mark.parametrize("n,t", majority_cases())
    def test_valid_sigma_in_majority_environment(self, n, t):
        rng = random.Random(f"fs/{n}/{t}")
        for trial in range(2):
            crashed = rng.sample(range(n), rng.randint(0, t))
            pattern = FailurePattern(n, {p: rng.randint(0, 30) for p in crashed})
            outcome = run_from_scratch_sigma(n, t, pattern, seed=trial)
            assert outcome.result.stop_reason == "stop_condition", pattern
            assert outcome.check.ok, (pattern, outcome.check.violations[:2])

    def test_quorums_have_size_n_minus_t(self):
        outcome = run_from_scratch_sigma(5, 2, FailurePattern(5, {0: 10}), seed=0)
        for p in range(5):
            for _, quorum in outcome.result.outputs[p][1:]:
                assert len(quorum) == 3

    def test_no_detector_consulted(self):
        """The algorithm must not read the (null) detector value."""
        outcome = run_from_scratch_sigma(3, 1, FailurePattern(3), seed=1)
        assert outcome.result.stop_reason == "stop_condition"


class TestFromScratchSigmaMinorityCorrect:
    def test_intersection_can_fail_when_t_at_least_half(self):
        """With t >= n/2 the same algorithm can emit disjoint quorums: run
        it with only half the processes stepping (the rest crashed), then
        observe a quorum inside that half; by symmetry the other half can do
        the same — the adversary test drives the full two-run argument, here
        we just watch one half produce a minority quorum."""
        n, t = 4, 2
        pattern = FailurePattern.initial_crashes(n, [2, 3])
        outcome = run_from_scratch_sigma(n, t, pattern, seed=0)
        quorums = [
            frozenset(q) for _, q in outcome.result.outputs[0][1:]
        ]
        assert any(q <= {0, 1} for q in quorums)

    def test_validation_parameters(self):
        with pytest.raises(ValueError):
            FromScratchSigma(3, 3)
        with pytest.raises(ValueError):
            FromScratchSigma(3, -1)

    def test_initial_output_is_pi(self):
        assert FromScratchSigma(4, 1).initial_output() == frozenset(range(4))
