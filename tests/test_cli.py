"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_crash_parsing(self):
        args = build_parser().parse_args(
            ["consensus", "--crash", "1:5", "--crash", "2:10"]
        )
        from repro.cli import _parse_crashes

        assert _parse_crashes(args.crash) == {1: 5, 2: 10}

    def test_bad_crash_spec_rejected(self):
        from repro.cli import _parse_crashes

        with pytest.raises(SystemExit):
            _parse_crashes(["nonsense"])


class TestCommands:
    def test_consensus_anuc(self, capsys):
        code = main(["consensus", "--n", "3", "--crash", "2:10", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "decided" in out
        assert "nonuniform: ok" in out

    def test_consensus_stack_with_transcript(self, capsys):
        code = main(
            [
                "consensus",
                "--n",
                "2",
                "--algorithm",
                "stack",
                "--transcript",
                "3",
                "--seed",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "emulated Sigma^nu+" in out
        assert "t=0" in out

    def test_adversary_breaks_half(self, capsys):
        code = main(["adversary", "--n", "4", "--t", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "VIOLATED" in out

    def test_adversary_survives_minority(self, capsys):
        code = main(["adversary", "--n", "5", "--t", "2"])
        assert code == 0
        assert "survived" in capsys.readouterr().out

    def test_contamination_naive(self, capsys):
        code = main(["contamination", "naive"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CONTAMINATED (as the paper predicts)" in out

    def test_contamination_anuc(self, capsys):
        code = main(["contamination", "anuc"])
        out = capsys.readouterr().out
        assert code == 0
        assert "safe (as the paper predicts)" in out

    def test_experiment_quick(self, capsys):
        code = main(["experiment", "exp5", "--quick"])
        out = capsys.readouterr().out
        assert code == 0
        assert "EXP-5" in out

    def test_extract(self, capsys):
        code = main(["extract", "--n", "3", "--crash", "2:15"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Thm 5.4" in out and "ok" in out


class TestTraceCommand:
    def test_experiment_trace_roundtrip(self, capsys, tmp_path):
        trace_file = tmp_path / "exp6.jsonl"
        code = main(
            ["experiment", "exp6", "--quick", "--trace-out", str(trace_file)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trace:" in out
        assert trace_file.exists()

        code = main(["trace", str(trace_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "experiment:exp6" in out
        assert "span aggregates" in out
        # exp6 merges abstract runs (no live kernel), so its trace shows
        # the sweep span plus automaton round counters
        assert "exp.exp6" in out
        assert "consensus.rounds.quorum-mr" in out

    def test_extract_trace_roundtrip(self, capsys, tmp_path):
        trace_file = tmp_path / "extract.jsonl"
        code = main(
            [
                "extract",
                "--n",
                "3",
                "--crash",
                "2:15",
                "--trace-out",
                str(trace_file),
            ]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["trace", str(trace_file), "--no-timeline"]) == 0
        out = capsys.readouterr().out
        assert "extract.quorum" in out

    def test_trace_rejects_invalid_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "sid": 0}\n')
        assert main(["trace", str(bad)]) == 1
        assert "invalid" in capsys.readouterr().out

    def test_tracing_left_disabled_after_command(self, tmp_path):
        from repro import obs

        trace_file = tmp_path / "t.jsonl"
        main(["experiment", "exp6", "--quick", "--trace-out", str(trace_file)])
        assert not obs.enabled()


class TestReproduceCommand:
    def test_quick_report_covers_all_experiments(self, capsys, tmp_path):
        out_file = tmp_path / "report.txt"
        code = main(["reproduce", "--quick", "--output", str(out_file)])
        assert code == 0
        report = out_file.read_text()
        for i in range(1, 10):
            assert f"EXP-{i}" in report
        assert "REPRODUCTION REPORT" in report


class TestChaosCommand:
    FIXTURE = "tests/chaos/fixtures/split-quorums-nonuniform-agreement-seed0.json"

    def test_list_configs(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        assert "split-quorums" in out
        assert "[honest]" in out and "[injected]" in out

    def test_unknown_config_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["chaos", "--config", "martian"])

    def test_single_config_matrix(self, capsys):
        code = main(
            ["chaos", "--config", "omega-crashed", "--budget", "35000"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "omega-crashed" in out
        assert "matrix exact" in out

    def test_replay_fixture(self, capsys):
        code = main(["chaos", "--replay", self.FIXTURE])
        out = capsys.readouterr().out
        assert code == 0
        assert "reproduced" in out
        assert "nonuniform agreement" in out

    def test_shrink_writes_artifact(self, capsys, tmp_path):
        code = main(
            [
                "chaos",
                "--config",
                "omega-crashed",
                "--budget",
                "35000",
                "--shrink",
                "--out",
                str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "shrunk" in out
        artifacts = list(tmp_path.glob("*.json"))
        assert len(artifacts) == 1
        from repro.chaos import load_counterexample

        document = load_counterexample(artifacts[0])
        assert document["config"] == "omega-crashed"
        assert document["property"] == "termination"


class TestSweepCommand:
    SPEC = """
[sweep]
name = "exp6-cli"
experiment = "exp6"

[params]
seeds = [0, 1]
"""

    def write_spec(self, tmp_path):
        spec = tmp_path / "sweep.toml"
        spec.write_text(self.SPEC)
        return str(spec)

    def test_cold_then_warm(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        store_dir = str(tmp_path / "store")
        assert main(["sweep", spec, "--store-dir", store_dir]) == 0
        cold = capsys.readouterr().out
        assert "2 miss(es)" in cold and "2 written" in cold

        code = main(
            ["sweep", spec, "--store-dir", store_dir, "--require-warm", "0.99"]
        )
        warm = capsys.readouterr().out
        assert code == 0
        assert "2 hit(s)" in warm
        # The rendered table (everything above the stats line) is identical.
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("store:")
        ]
        assert strip(warm) == strip(cold)

    def test_require_warm_fails_cold(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        code = main(
            [
                "sweep",
                spec,
                "--store-dir",
                str(tmp_path / "store"),
                "--require-warm",
                "0.99",
            ]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "warm-cache requirement failed" in err

    def test_no_store_runs_without_touching_disk(self, capsys, tmp_path):
        spec = self.write_spec(tmp_path)
        store_dir = tmp_path / "store"
        code = main(
            ["sweep", spec, "--no-store", "--store-dir", str(store_dir)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "store:" not in out
        assert not store_dir.exists()

    def test_output_and_stats_json(self, capsys, tmp_path):
        import json

        spec = self.write_spec(tmp_path)
        table_file = tmp_path / "table.txt"
        stats_file = tmp_path / "stats.json"
        code = main(
            [
                "sweep",
                spec,
                "--store-dir",
                str(tmp_path / "store"),
                "--output",
                str(table_file),
                "--stats-json",
                str(stats_file),
            ]
        )
        capsys.readouterr()
        assert code == 0
        stats = json.loads(stats_file.read_text())
        assert stats["sweeps"] == ["exp6-cli"]
        assert stats["misses"] == 2
        import hashlib

        rendered = table_file.read_text()
        assert stats["table_sha256"] == hashlib.sha256(
            rendered.encode("utf-8")
        ).hexdigest()

    def test_bad_spec_is_usage_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.toml"
        bad.write_text("[sweep]\nexperiment = 'exp42'\n")
        assert main(["sweep", str(bad)]) == 2
        assert "exp42" in capsys.readouterr().err


class TestStoreCommand:
    def populate(self, tmp_path, capsys):
        spec = tmp_path / "sweep.toml"
        spec.write_text(TestSweepCommand.SPEC)
        store_dir = str(tmp_path / "store")
        assert main(["sweep", str(spec), "--store-dir", store_dir]) == 0
        capsys.readouterr()
        return str(spec), store_dir

    def test_ls(self, capsys, tmp_path):
        _, store_dir = self.populate(tmp_path, capsys)
        assert main(["store", "ls", "--store-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "objects: 2 record(s)" in out

    def test_ls_json(self, capsys, tmp_path):
        import json

        _, store_dir = self.populate(tmp_path, capsys)
        assert main(["store", "ls", "--json", "--store-dir", store_dir]) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["objects"]) == 2
        assert document["bench"] == []

    def test_diff_reports_cached_rows(self, capsys, tmp_path):
        spec, store_dir = self.populate(tmp_path, capsys)
        assert main(["store", "diff", spec, "--store-dir", store_dir]) == 0
        out = capsys.readouterr().out
        assert "2 cached, 0 new" in out
        assert "would execute 0 task(s)" in out

    def test_diff_requires_spec(self, capsys, tmp_path):
        assert main(["store", "diff", "--store-dir", str(tmp_path)]) == 2
        assert "needs a spec" in capsys.readouterr().err

    def test_gc_all(self, capsys, tmp_path):
        spec, store_dir = self.populate(tmp_path, capsys)
        assert main(["store", "gc", "--all", "--store-dir", store_dir]) == 0
        assert "removed 2 record(s)" in capsys.readouterr().out
        assert main(["store", "diff", spec, "--store-dir", store_dir]) == 0
        assert "2 new" in capsys.readouterr().out


class TestExperimentStoreFlag:
    def test_experiment_store_roundtrip(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        args = [
            "experiment",
            "exp6",
            "--quick",
            "--store",
            "--store-dir",
            store_dir,
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "miss(es)" in cold
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 miss(es)" in warm and "hit rate 100.0%" in warm


class TestTraceAnalyticsCommands:
    def _trace(self, tmp_path, capsys, name="a.jsonl"):
        path = tmp_path / name
        assert (
            main(["experiment", "exp6", "--quick", "--trace-out", str(path)])
            == 0
        )
        capsys.readouterr()
        return str(path)

    def test_diff_same_seed_run_is_tick_exact(self, capsys, tmp_path):
        a = self._trace(tmp_path, capsys, "a.jsonl")
        b = self._trace(tmp_path, capsys, "b.jsonl")
        assert main(["trace", "diff", a, b, "--expect-equal-ticks"]) == 0
        out = capsys.readouterr().out
        assert "EXACT" in out
        assert "0 differ" in out.split("wall noise floor")[0]

    def test_diff_different_workloads_fails_equal_ticks_gate(
        self, capsys, tmp_path
    ):
        a = self._trace(tmp_path, capsys, "a.jsonl")
        other = tmp_path / "extract.jsonl"
        assert (
            main(
                ["extract", "--n", "3", "--crash", "2:15",
                 "--trace-out", str(other)]
            )
            == 0
        )
        capsys.readouterr()
        code = main(["trace", "diff", a, str(other), "--expect-equal-ticks"])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out

    def test_diff_needs_exactly_two_traces(self, capsys, tmp_path):
        a = self._trace(tmp_path, capsys)
        with pytest.raises(SystemExit, match="TRACE_A TRACE_B"):
            main(["trace", "diff", a])

    def test_flame_renders_path_tree(self, capsys, tmp_path):
        a = self._trace(tmp_path, capsys)
        assert main(["trace", "flame", a]) == 0
        out = capsys.readouterr().out
        assert "flame (" in out
        assert "exp.exp6" in out
        assert "#" in out

    def test_plain_file_form_rejects_extra_arguments(self, capsys, tmp_path):
        a = self._trace(tmp_path, capsys)
        with pytest.raises(SystemExit, match="unexpected extra"):
            main(["trace", a, a])

    def test_diff_rejects_invalid_trace(self, capsys, tmp_path):
        a = self._trace(tmp_path, capsys)
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "sid": 0}\n')
        assert main(["trace", "diff", a, str(bad)]) == 1
        assert "invalid" in capsys.readouterr().out


class TestObsReportCommand:
    def test_report_is_written_and_self_contained(self, capsys, tmp_path):
        trace = tmp_path / "exp6.jsonl"
        assert (
            main(
                ["experiment", "exp6", "--quick", "--trace-out", str(trace)]
            )
            == 0
        )
        capsys.readouterr()
        out_html = tmp_path / "obs.html"
        assert (
            main(
                [
                    "obs", "report",
                    "--trace", str(trace),
                    "--no-store",
                    "--output", str(out_html),
                    "--title", "unit report",
                ]
            )
            == 0
        )
        assert "report written" in capsys.readouterr().out
        html = out_html.read_text()
        assert html.lstrip().lower().startswith("<!doctype html")
        assert "unit report" in html
        assert "exp.exp6" in html
        # Self-contained: no external scripts, stylesheets or images.
        for marker in ("<script src=", "http://", "https://", "<img src="):
            assert marker not in html

    def test_report_notes_unreadable_inputs_instead_of_failing(
        self, capsys, tmp_path
    ):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "sid": 0}\n')
        out_html = tmp_path / "obs.html"
        assert (
            main(
                [
                    "obs", "report",
                    "--trace", str(bad),
                    "--bench-kernel", str(tmp_path / "absent.json"),
                    "--no-store",
                    "--output", str(out_html),
                ]
            )
            == 0
        )
        html = out_html.read_text()
        assert "skipped" in html


class TestStoreDiffCounters:
    def test_untraced_rows_report_no_telemetry(self, capsys, tmp_path):
        spec = tmp_path / "sweep.toml"
        spec.write_text(TestSweepCommand.SPEC)
        store_dir = str(tmp_path / "store")
        assert main(["sweep", str(spec), "--store-dir", store_dir]) == 0
        capsys.readouterr()
        assert (
            main(
                ["store", "diff", str(spec), "--store-dir", store_dir,
                 "--counters"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "no rows carry telemetry under both signatures" in out

    def test_counter_delta_summation(self, capsys):
        from repro.store.cli import _print_counter_deltas

        entry = {
            "tasks": [
                {
                    "telemetry": {"counters": {"x": 5, "y": 3}},
                    "previous_telemetry": {"counters": {"x": 2, "y": 3}},
                },
                {
                    "telemetry": {"counters": {"x": 1}},
                    "previous_telemetry": {"counters": {"x": 0}},
                },
                {"telemetry": None, "previous_telemetry": None},
            ]
        }
        _print_counter_deltas(entry)
        out = capsys.readouterr().out
        assert "counter deltas over 2 telemetry row(s)" in out
        assert "2 -> 6 (+4)" in out  # x summed across rows
        # unchanged counters are elided
        assert not any(line.strip().startswith("y") for line in out.splitlines())

    def test_identical_telemetry_reports_identical(self, capsys):
        from repro.store.cli import _print_counter_deltas

        entry = {
            "tasks": [
                {
                    "telemetry": {"counters": {"x": 5}},
                    "previous_telemetry": {"counters": {"x": 5}},
                }
            ]
        }
        _print_counter_deltas(entry)
        assert "identical across 1" in capsys.readouterr().out
