"""The parallel sweep driver: ordering, inline fast path, table parity."""

import pytest

from repro import obs
from repro.harness.parallel import SweepTask, default_jobs, run_sweep


def _square(x):
    return x * x


def _describe(label, seed):
    return f"{label}:{seed}"


def _metered(x):
    """Worker body that records metrics (top-level so it pickles)."""
    reg = obs.metrics()
    reg.inc("work.calls")
    reg.inc("work.total", x)
    reg.gauge("work.peak", x)
    return x * x


class TestSweepTask:
    def test_runs_fn_with_kwargs(self):
        task = SweepTask(_describe, {"label": "a", "seed": 3})
        assert task.run() == "a:3"


class TestRunSweep:
    def test_results_in_task_order_inline(self):
        tasks = [SweepTask(_square, {"x": x}) for x in range(10)]
        assert run_sweep(tasks, jobs=1) == [x * x for x in range(10)]

    def test_results_in_task_order_parallel(self):
        tasks = [SweepTask(_square, {"x": x}) for x in range(20)]
        assert run_sweep(tasks, jobs=2) == [x * x for x in range(20)]

    def test_parallel_equals_inline(self):
        tasks = [
            SweepTask(_describe, {"label": chr(97 + i % 4), "seed": i})
            for i in range(12)
        ]
        assert run_sweep(tasks, jobs=1) == run_sweep(tasks, jobs=3)

    def test_empty_and_singleton(self):
        assert run_sweep([], jobs=4) == []
        assert run_sweep([SweepTask(_square, {"x": 7})], jobs=4) == [49]

    def test_jobs_none_uses_default(self):
        tasks = [SweepTask(_square, {"x": x}) for x in range(4)]
        assert run_sweep(tasks, jobs=None) == [0, 1, 4, 9]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestMetricsParity:
    """Worker metrics merged across processes equal the inline registry."""

    def _sweep_snapshot(self, jobs):
        tasks = [SweepTask(_metered, {"x": x}) for x in range(8)]
        obs.disable()
        obs.reset_metrics()
        try:
            with obs.tracing("parity"):
                results = run_sweep(tasks, jobs=jobs)
                snapshot = obs.metrics().snapshot()
        finally:
            obs.disable()
            obs.reset_metrics()
        return results, snapshot

    def test_jobs1_vs_jobs2_identical_metrics(self):
        results1, snap1 = self._sweep_snapshot(jobs=1)
        results2, snap2 = self._sweep_snapshot(jobs=2)
        assert results1 == results2 == [x * x for x in range(8)]
        assert snap1["counters"] == snap2["counters"]
        assert snap1["gauges"] == snap2["gauges"]
        assert snap1["counters"]["work.calls"] == 8
        assert snap1["counters"]["work.total"] == sum(range(8))
        assert snap1["counters"]["sweep.tasks"] == 8
        assert snap1["gauges"]["work.peak"] == 7

    def test_disabled_sweep_records_nothing(self):
        obs.disable()
        obs.reset_metrics()
        tasks = [SweepTask(_metered, {"x": x}) for x in range(4)]
        assert run_sweep(tasks, jobs=2) == [0, 1, 4, 9]
        assert obs.metrics().counters() == {}


class TestExperimentParity:
    """Sweeps must render identical tables for every job count."""

    @pytest.mark.parametrize("name", ["exp1", "exp6"])
    def test_quick_table_identical_serial_vs_parallel(self, name):
        from repro.harness import experiments

        runner, kwargs = {
            "exp1": (
                experiments.exp1_nuc_sufficiency,
                dict(ns=(2, 3), seeds=(0,)),
            ),
            "exp6": (experiments.exp6_merging, dict(seeds=range(3))),
        }[name]
        serial = runner(**kwargs, jobs=1).render()
        parallel = runner(**kwargs, jobs=2).render()
        assert serial == parallel
