"""The experiment harness: runners, merging helper, experiment tables."""

import random

import pytest

from repro.harness.merging import (
    partitioned_history,
    random_mergeable_pair_report,
    synthesize_group_run,
)
from repro.harness.runner import (
    random_binary_proposals,
    random_pattern,
    run_boosting,
    run_nuc,
)
from repro.kernel.failures import FailurePattern
from repro.kernel.runs import validate_run


class TestRunnerHelpers:
    def test_random_pattern_respects_bound(self):
        rng = random.Random(0)
        for _ in range(20):
            pattern = random_pattern(5, rng, max_faulty=2)
            assert len(pattern.faulty) <= 2

    def test_random_binary_proposals_cover_all(self):
        props = random_binary_proposals(6, random.Random(1))
        assert set(props) == set(range(6))
        assert set(props.values()) <= {0, 1}

    def test_run_nuc_outcome_shape(self):
        pattern = FailurePattern(3, {1: 5})
        outcome = run_nuc(pattern, {0: 0, 1: 1, 2: 0}, seed=0)
        assert outcome.ok
        assert outcome.metrics.steps == outcome.result.step_count

    def test_run_boosting_outcome_shape(self):
        outcome = run_boosting(FailurePattern(3), seed=0)
        assert outcome.ok
        assert outcome.recorded.horizon >= 0


class TestMergingHelper:
    def test_synthesized_group_run_is_valid(self):
        from repro.consensus.quorum_mr import QuorumMR

        history = partitioned_history([0, 1], [2, 3])
        pattern = FailurePattern(4, {2: 10**5, 3: 10**5})
        run = synthesize_group_run(
            QuorumMR(),
            4,
            group=[0, 1],
            proposals={p: 0 for p in range(4)},
            pattern=pattern,
            history=history,
            time_of=lambda i: 2 * i,
        )
        assert validate_run(run) == []
        sim = run.simulator()
        sim.run_schedule(run.schedule, run.times)
        assert sim.decision(0) == 0 and sim.decision(1) == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_random_mergeable_pairs(self, seed):
        report = random_mergeable_pair_report(n=5, seed=seed)
        assert report.merged_valid, report.violations
        assert report.states_preserved
        # each group's decisions survive into the merged run
        for p, v in report.decisions0.items():
            assert report.merged_decisions.get(p) == v
        for p, v in report.decisions1.items():
            assert report.merged_decisions.get(p) == v

    def test_merged_run_decides_both_values(self):
        """The Lemma 5.3 shape: one run of the algorithm in which group 0
        decides 0 and (formally faulty) group 1 decides 1 — legal for
        nonuniform consensus precisely because group 1 is faulty."""
        report = random_mergeable_pair_report(n=5, seed=2)
        values = set(report.merged_decisions.values())
        assert values == {0, 1}


class TestExperimentTables:
    def test_exp5_table_smoke(self):
        from repro.harness.experiments import exp5_contamination

        table = exp5_contamination(seeds=(0,))
        text = table.render()
        assert "naive" in text and "anuc" in text

    def test_exp6_table_smoke(self):
        from repro.harness.experiments import exp6_merging

        table = exp6_merging(seeds=range(2))
        assert "merged is run" in table.render()

    def test_exp4_table_smoke(self):
        from repro.harness.experiments import exp4_separation

        table = exp4_separation(cases=((2, 1), (3, 1)), seeds=(0,))
        text = table.render()
        assert "VIOLATED" in text
        assert "inapplicable" in text
