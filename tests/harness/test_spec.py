"""Declarative sweep specs: parsing, validation, execution parity."""

import pytest

from repro.harness.spec import (
    EXPERIMENT_SUFFIXES,
    SpecError,
    SweepSpec,
    _parse_cell,
    load_specs,
)


def write(path, text):
    path.write_text(text)
    return str(path)


# ----------------------------------------------------------------------
# TOML
# ----------------------------------------------------------------------


def test_toml_basic(tmp_path):
    spec_path = write(
        tmp_path / "s.toml",
        """
        [sweep]
        name = "exp6-unit"
        experiment = "exp6"

        [params]
        seeds = [0, 1]
        n = 4
        """,
    )
    (spec,) = load_specs(spec_path)
    assert spec.name == "exp6-unit"
    assert spec.experiment == "exp6"
    assert spec.params == {"seeds": [0, 1], "n": 4}


def test_toml_range_shorthand(tmp_path):
    spec_path = write(
        tmp_path / "s.toml",
        """
        [sweep]
        experiment = "exp6"

        [params]
        seeds = { range = 4 }
        """,
    )
    (spec,) = load_specs(spec_path)
    assert spec.params["seeds"] == [0, 1, 2, 3]
    assert spec.name == "exp6"  # defaults to the experiment


def test_toml_start_stop_shorthand(tmp_path):
    spec_path = write(
        tmp_path / "s.toml",
        """
        [sweep]
        experiment = "exp6"

        [params]
        seeds = { start = 2, stop = 5 }
        """,
    )
    (spec,) = load_specs(spec_path)
    assert spec.params["seeds"] == [2, 3, 4]


def test_toml_unknown_table_value_rejected(tmp_path):
    spec_path = write(
        tmp_path / "s.toml",
        """
        [sweep]
        experiment = "exp6"

        [params]
        seeds = { frobnicate = 3 }
        """,
    )
    with pytest.raises(SpecError, match="frobnicate"):
        load_specs(spec_path)


def test_toml_missing_sweep_table(tmp_path):
    spec_path = write(tmp_path / "s.toml", "[params]\nseeds = [0]\n")
    with pytest.raises(SpecError, match="sweep"):
        load_specs(spec_path)


def test_toml_syntax_error_reported_with_path(tmp_path):
    spec_path = write(tmp_path / "bad.toml", "[sweep\n")
    with pytest.raises(SpecError, match="bad.toml"):
        load_specs(spec_path)


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------


def test_csv_rows_and_cells(tmp_path):
    spec_path = write(
        tmp_path / "s.csv",
        "experiment,name,ns,seeds\n"
        'exp1,one,"(2, 3)",range(2)\n'
        "\n"
        'exp6,,,"range(1, 4)"\n',
    )
    one, two = load_specs(spec_path)
    assert one.name == "one"
    assert one.params == {"ns": (2, 3), "seeds": [0, 1]}
    assert two.name.startswith("exp6@")  # default name carries the line
    assert two.params == {"seeds": [1, 2, 3]}


def test_csv_requires_experiment_column(tmp_path):
    spec_path = write(tmp_path / "s.csv", "name,seeds\nx,range(2)\n")
    with pytest.raises(SpecError, match="experiment"):
        load_specs(spec_path)


def test_csv_unquoted_comma_rejected(tmp_path):
    spec_path = write(
        tmp_path / "s.csv",
        "experiment,seeds\nexp6,range(1, 4)\n",
    )
    with pytest.raises(SpecError, match="quote"):
        load_specs(spec_path)


def test_csv_no_rows(tmp_path):
    spec_path = write(tmp_path / "s.csv", "experiment,seeds\n\n")
    with pytest.raises(SpecError, match="no sweep rows"):
        load_specs(spec_path)


def test_parse_cell_forms():
    assert _parse_cell("range(3)") == [0, 1, 2]
    assert _parse_cell("range(2, 5)") == [2, 3, 4]
    assert _parse_cell("(1, 2)") == (1, 2)
    assert _parse_cell("true_strings_stay_strings") == "true_strings_stay_strings"
    assert _parse_cell("True") is True
    assert _parse_cell(" 7 ") == 7


def test_unknown_extension(tmp_path):
    spec_path = write(tmp_path / "s.yaml", "experiment: exp1\n")
    with pytest.raises(SpecError, match="yaml"):
        load_specs(spec_path)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def test_unknown_experiment_rejected():
    with pytest.raises(SpecError, match="exp42"):
        SweepSpec(experiment="exp42")


def test_unknown_param_rejected_before_running():
    spec = SweepSpec(experiment="exp6", params={"seedz": [0]})
    with pytest.raises(SpecError, match="seedz"):
        spec.validate()


def test_reserved_execution_params_rejected():
    for reserved in ("jobs", "batch", "store"):
        spec = SweepSpec(experiment="exp6", params={reserved: 1})
        with pytest.raises(SpecError):
            spec.validate()


def test_every_experiment_has_a_runner():
    for experiment in EXPERIMENT_SUFFIXES:
        assert callable(SweepSpec(experiment=experiment).runner())


# ----------------------------------------------------------------------
# Execution parity
# ----------------------------------------------------------------------


def test_spec_run_matches_direct_call():
    from repro.harness.experiments import exp6_merging

    spec = SweepSpec(experiment="exp6", params={"seeds": [0, 1]})
    assert spec.run().render() == exp6_merging(seeds=[0, 1]).render()


def test_curated_specs_parse_and_validate():
    import glob
    import os

    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    spec_files = sorted(
        glob.glob(os.path.join(repo_root, "benchmarks", "specs", "*.toml"))
    ) + sorted(glob.glob(os.path.join(repo_root, "benchmarks", "specs", "*.csv")))
    assert len(spec_files) >= 10  # exp1..exp9 + exp1-large + quick.csv
    for path in spec_files:
        for spec in load_specs(path):
            spec.validate()
