"""Store-backed sweeps: the re-run-only-what-moved contract.

The acceptance properties of the result store, end to end through
``run_sweep``:

* a warm sweep returns byte-identical results to the cold sweep that
  filled the store, for every ``jobs`` value;
* editing one module re-executes exactly the rows whose task functions
  depend on it — untouched rows keep hitting;
* store obs counters are identical for serial and parallel warm runs;
* unstorable rows execute every time but never poison results.
"""

import importlib
import sys
import time
from types import SimpleNamespace

import pytest

from repro import obs
from repro.harness.parallel import SweepTask, run_sweep
from repro.store import ResultStore
from repro.store.signature import ModuleSignatureIndex

ALPHA_V1 = '''
def alpha_task(seed, log):
    with open(log, "a") as fh:
        fh.write(f"alpha:{seed}\\n")
    return ("alpha-v1", seed)
'''

ALPHA_V2 = '''
def alpha_task(seed, log):
    with open(log, "a") as fh:
        fh.write(f"alpha:{seed}\\n")
    return ("alpha-v2", seed)
'''

BETA_V1 = '''
def beta_task(seed, log):
    with open(log, "a") as fh:
        fh.write(f"beta:{seed}\\n")
    return ("beta-v1", seed)
'''

HEAVY = '''
def heavy_task(seed):
    total = 0
    for i in range(60000):
        total = (total + (seed + i) * 31) % 1000003
    return total
'''

_MODULES = ("sweeppkg", "sweeppkg.alpha", "sweeppkg.beta", "sweeppkg.heavy")


@pytest.fixture
def fakepkg(tmp_path, monkeypatch):
    """A throwaway importable package whose sources the tests can edit."""
    pkg_dir = tmp_path / "sweeppkg"
    pkg_dir.mkdir()
    (pkg_dir / "__init__.py").write_text("")
    (pkg_dir / "alpha.py").write_text(ALPHA_V1)
    (pkg_dir / "beta.py").write_text(BETA_V1)
    (pkg_dir / "heavy.py").write_text(HEAVY)
    monkeypatch.syspath_prepend(str(tmp_path))
    for name in _MODULES:
        sys.modules.pop(name, None)
    ns = SimpleNamespace(
        dir=pkg_dir,
        root=str(tmp_path),
        alpha=importlib.import_module("sweeppkg.alpha"),
        beta=importlib.import_module("sweeppkg.beta"),
        heavy=importlib.import_module("sweeppkg.heavy"),
    )
    yield ns
    for name in _MODULES:
        sys.modules.pop(name, None)


def pkg_store(fakepkg, tmp_path) -> ResultStore:
    return ResultStore(
        str(tmp_path / "store"),
        index=ModuleSignatureIndex({"sweeppkg": fakepkg.root}),
    )


def mixed_tasks(fakepkg, log, seeds=range(4)):
    """Fresh task list bound to the *currently imported* module objects."""
    return [
        SweepTask(fakepkg.alpha.alpha_task, {"seed": s, "log": log})
        for s in seeds
    ] + [
        SweepTask(fakepkg.beta.beta_task, {"seed": s, "log": log})
        for s in seeds
    ]


def executions(log_path):
    try:
        return log_path.read_text().splitlines()
    except FileNotFoundError:
        return []


# ----------------------------------------------------------------------
# Warm == cold
# ----------------------------------------------------------------------


def test_warm_sweep_identical_and_executes_nothing(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    log = tmp_path / "runs.log"
    cold = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
    assert len(executions(log)) == 8
    assert store.stats.misses == 8 and store.stats.writes == 8

    log.unlink()
    warm = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
    assert warm == cold
    assert executions(log) == []  # nothing re-executed
    assert store.stats.hits == 8


def test_warm_parallel_equals_cold_serial(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    log = tmp_path / "runs.log"
    cold = run_sweep(mixed_tasks(fakepkg, str(log)), jobs=1, store=store)
    warm = run_sweep(mixed_tasks(fakepkg, str(log)), jobs=2, store=store)
    assert warm == cold


def test_experiment_table_byte_identical_warm(tmp_path):
    from repro.harness.experiments import exp6_merging

    store = ResultStore(str(tmp_path / "store"))
    cold = exp6_merging(seeds=range(3), store=store).render()
    warm = exp6_merging(seeds=range(3), store=store).render()
    assert warm == cold
    assert store.stats.hits == 3 and store.stats.misses == 3


# ----------------------------------------------------------------------
# The tentpole property: only moved rows re-execute
# ----------------------------------------------------------------------


def test_editing_one_module_reexecutes_only_its_rows(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    log = tmp_path / "runs.log"
    cold = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
    assert cold[:4] == [("alpha-v1", s) for s in range(4)]

    # Touch alpha only; rebind tasks to the reloaded module.
    (fakepkg.dir / "alpha.py").write_text(ALPHA_V2)
    fakepkg.alpha = importlib.reload(fakepkg.alpha)
    store.refresh_signatures()
    store.stats.reset()
    log.unlink()

    after = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
    # Exactly the four alpha rows re-executed ...
    assert sorted(executions(log)) == [f"alpha:{s}" for s in range(4)]
    # ... with the new code's results; beta rows came from the store.
    assert after[:4] == [("alpha-v2", s) for s in range(4)]
    assert after[4:] == cold[4:]
    assert store.stats.invalidated == 4
    assert store.stats.hits == 4
    assert store.stats.misses == 0

    # Both signatures now coexist: a third run is fully warm again.
    log.unlink()
    again = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
    assert again == after
    assert executions(log) == []


def test_unrelated_edit_keeps_everything_warm(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    log = tmp_path / "runs.log"
    cold = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)

    # heavy.py is imported by neither alpha nor beta tasks.
    (fakepkg.dir / "heavy.py").write_text(HEAVY + "\nEXTRA = 1\n")
    store.refresh_signatures()
    store.stats.reset()
    log.unlink()

    warm = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
    assert warm == cold
    assert executions(log) == []
    assert store.stats.hits == 8 and store.stats.invalidated == 0


# ----------------------------------------------------------------------
# Unstorable rows
# ----------------------------------------------------------------------


def test_undigestable_kwarg_counts_skipped_and_runs(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)

    class NotDigestable:
        def __str__(self):
            return "nd"

    log = tmp_path / "runs.log"
    tasks = [
        SweepTask(
            fakepkg.alpha.alpha_task,
            {"seed": NotDigestable(), "log": str(log)},
        ),
        SweepTask(fakepkg.alpha.alpha_task, {"seed": 1, "log": str(log)}),
    ]
    first = run_sweep(tasks, store=store)
    second = run_sweep(tasks, store=store)
    assert first[1] == second[1] == ("alpha-v1", 1)
    assert store.stats.skipped == 2  # the unstorable row, both sweeps
    assert len(executions(log)) == 3  # unstorable twice + storable once


# ----------------------------------------------------------------------
# Obs counters: serial == parallel
# ----------------------------------------------------------------------


def store_counters():
    return {
        k: v
        for k, v in obs.metrics().counters().items()
        if k.startswith("store.")
    }


def test_store_counters_identical_serial_vs_parallel(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    log = tmp_path / "runs.log"
    run_sweep(mixed_tasks(fakepkg, str(log)), store=store)  # prepopulate

    obs.enable(label="store-parity", fresh_metrics=True)
    try:
        serial = run_sweep(
            mixed_tasks(fakepkg, str(log)), jobs=1, store=store
        )
        counters_serial = store_counters()
    finally:
        obs.disable()

    obs.enable(label="store-parity", fresh_metrics=True)
    try:
        parallel = run_sweep(
            mixed_tasks(fakepkg, str(log)), jobs=2, store=store
        )
        counters_parallel = store_counters()
    finally:
        obs.disable()

    assert serial == parallel
    assert counters_serial == counters_parallel
    assert counters_serial["store.hit"] == 8
    assert counters_serial.get("store.miss", 0) == 0


def test_cold_run_counts_misses_and_writes(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    log = tmp_path / "runs.log"
    obs.enable(label="store-cold", fresh_metrics=True)
    try:
        run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
        counters = store_counters()
    finally:
        obs.disable()
    assert counters["store.miss"] == 8
    assert counters["store.write"] == 8
    assert counters.get("store.hit", 0) == 0


# ----------------------------------------------------------------------
# Scale: >= 1000 rows, >= 10x warm speedup
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_thousand_row_warm_sweep_is_10x_faster(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    tasks = [
        SweepTask(fakepkg.heavy.heavy_task, {"seed": s}) for s in range(1200)
    ]
    start = time.perf_counter()
    cold = run_sweep(tasks, store=store)
    cold_wall = time.perf_counter() - start
    assert store.stats.misses == 1200

    start = time.perf_counter()
    warm = run_sweep(tasks, store=store)
    warm_wall = time.perf_counter() - start
    assert warm == cold
    assert store.stats.hits == 1200
    assert warm_wall * 10 <= cold_wall, (
        f"warm {warm_wall:.3f}s not >=10x faster than cold {cold_wall:.3f}s"
    )


# ----------------------------------------------------------------------
# Stored telemetry and trace attribution
# ----------------------------------------------------------------------


def _record_bodies(store):
    import json
    import os

    bodies = []
    for entry in store.ls():
        with open(os.path.join(store.root, entry["path"])) as fh:
            bodies.append(json.load(fh))
    return bodies


def test_traced_cold_sweep_stores_row_telemetry(tmp_path):
    from repro.harness.experiments import exp6_merging

    store = ResultStore(str(tmp_path / "store"))
    obs.enable(label="telemetry", fresh_metrics=True)
    try:
        exp6_merging(seeds=range(2), store=store)
    finally:
        obs.disable()
    bodies = _record_bodies(store)
    assert bodies
    for record in bodies:
        telemetry = record.get("telemetry")
        assert telemetry and telemetry.get("counters")
        # wall_ms is stripped from stored path aggregates so concurrent
        # writers racing on one key still write byte-identical records
        for agg in (telemetry.get("paths") or {}).values():
            assert "wall_ms" not in agg


def test_untraced_sweep_stores_no_telemetry(tmp_path):
    from repro.harness.experiments import exp6_merging

    store = ResultStore(str(tmp_path / "store"))
    exp6_merging(seeds=range(2), store=store)
    assert all("telemetry" not in r for r in _record_bodies(store))


def test_traced_parallel_cold_sweep_stores_counter_telemetry(tmp_path):
    from repro.harness.experiments import exp6_merging

    store = ResultStore(str(tmp_path / "store"))
    obs.enable(label="telemetry-pool", fresh_metrics=True)
    try:
        exp6_merging(seeds=range(2), store=store, jobs=2)
    finally:
        obs.disable()
    bodies = _record_bodies(store)
    assert bodies
    for record in bodies:
        telemetry = record.get("telemetry")
        # worker spans stay in the workers: pool rows carry counters only
        assert telemetry and telemetry.get("counters")
        assert "paths" not in telemetry


def test_traced_store_sweep_table_matches_untraced(tmp_path):
    from repro.harness.experiments import exp6_merging

    plain_store = ResultStore(str(tmp_path / "plain"))
    plain = exp6_merging(seeds=range(2), store=plain_store).render()

    traced_store = ResultStore(str(tmp_path / "traced"))
    obs.enable(label="oracle", fresh_metrics=True)
    try:
        cold = exp6_merging(seeds=range(2), store=traced_store).render()
        warm = exp6_merging(seeds=range(2), store=traced_store).render()
    finally:
        obs.disable()
    assert cold == plain
    assert warm == plain


def test_cold_vs_warm_trace_attributes_saved_work_to_store_execute(tmp_path):
    from repro.harness.experiments import exp3_extraction
    from repro.obs.analyze import diff_traces
    from repro.obs.export import trace_records

    store = ResultStore(str(tmp_path / "store"))

    def traced(label):
        obs.enable(label=label, fresh_metrics=True)
        try:
            exp3_extraction(ns=(3,), seeds=(0,), store=store)
            return trace_records(obs.tracer(), registry=obs.metrics())
        finally:
            obs.disable()

    cold = traced("cold")
    store.stats.reset()
    warm = traced("warm")
    assert store.stats.hits and not store.stats.misses  # warm run all hits

    diff = diff_traces(cold, warm)
    moved = [d for d in diff.significant() if d.tick_significant]
    assert moved  # the warm run did strictly less deterministic work
    execute_paths = [d.path for d in moved if "store.execute" in d.path]
    assert execute_paths
    # Every tick shift is the execute phase itself or an ancestor of it:
    # the lookup phase costs no logical ticks either way.
    for delta in moved:
        assert "store.execute" in delta.path or any(
            p.startswith(delta.path + "/") for p in execute_paths
        ), delta.path
        assert delta.tick_delta <= 0
    # The kernel ran only in the cold sweep.
    a, b = diff.counter_deltas["kernel.steps"]
    assert a > b == 0


def test_diff_tasks_with_telemetry_pairs_signatures(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    log = str(tmp_path / "runs.log")
    task = (fakepkg.alpha.alpha_task, {"seed": 0, "log": log})
    key = store.key_for(*task)
    store.store(key, ("alpha-v1", 0), telemetry={"counters": {"work": 3}})

    (fakepkg.dir / "alpha.py").write_text(ALPHA_V2)
    fakepkg.alpha = importlib.reload(fakepkg.alpha)
    store.refresh_signatures()
    task_v2 = (fakepkg.alpha.alpha_task, {"seed": 0, "log": log})
    key_v2 = store.key_for(*task_v2)
    assert key_v2.digest == key.digest and key_v2.signature != key.signature
    store.store(key_v2, ("alpha-v2", 0), telemetry={"counters": {"work": 7}})

    diff = store.diff_tasks([task_v2], with_telemetry=True)
    row = diff["tasks"][0]
    assert row["status"] == "hit"
    assert row["telemetry"] == {"counters": {"work": 7}}
    assert row["previous_telemetry"] == {"counters": {"work": 3}}

    without = store.diff_tasks([task_v2])
    assert "telemetry" not in without["tasks"][0]
