"""Store-backed sweeps: the re-run-only-what-moved contract.

The acceptance properties of the result store, end to end through
``run_sweep``:

* a warm sweep returns byte-identical results to the cold sweep that
  filled the store, for every ``jobs`` value;
* editing one module re-executes exactly the rows whose task functions
  depend on it — untouched rows keep hitting;
* store obs counters are identical for serial and parallel warm runs;
* unstorable rows execute every time but never poison results.
"""

import importlib
import sys
import time
from types import SimpleNamespace

import pytest

from repro import obs
from repro.harness.parallel import SweepTask, run_sweep
from repro.store import ResultStore
from repro.store.signature import ModuleSignatureIndex

ALPHA_V1 = '''
def alpha_task(seed, log):
    with open(log, "a") as fh:
        fh.write(f"alpha:{seed}\\n")
    return ("alpha-v1", seed)
'''

ALPHA_V2 = '''
def alpha_task(seed, log):
    with open(log, "a") as fh:
        fh.write(f"alpha:{seed}\\n")
    return ("alpha-v2", seed)
'''

BETA_V1 = '''
def beta_task(seed, log):
    with open(log, "a") as fh:
        fh.write(f"beta:{seed}\\n")
    return ("beta-v1", seed)
'''

HEAVY = '''
def heavy_task(seed):
    total = 0
    for i in range(60000):
        total = (total + (seed + i) * 31) % 1000003
    return total
'''

_MODULES = ("sweeppkg", "sweeppkg.alpha", "sweeppkg.beta", "sweeppkg.heavy")


@pytest.fixture
def fakepkg(tmp_path, monkeypatch):
    """A throwaway importable package whose sources the tests can edit."""
    pkg_dir = tmp_path / "sweeppkg"
    pkg_dir.mkdir()
    (pkg_dir / "__init__.py").write_text("")
    (pkg_dir / "alpha.py").write_text(ALPHA_V1)
    (pkg_dir / "beta.py").write_text(BETA_V1)
    (pkg_dir / "heavy.py").write_text(HEAVY)
    monkeypatch.syspath_prepend(str(tmp_path))
    for name in _MODULES:
        sys.modules.pop(name, None)
    ns = SimpleNamespace(
        dir=pkg_dir,
        root=str(tmp_path),
        alpha=importlib.import_module("sweeppkg.alpha"),
        beta=importlib.import_module("sweeppkg.beta"),
        heavy=importlib.import_module("sweeppkg.heavy"),
    )
    yield ns
    for name in _MODULES:
        sys.modules.pop(name, None)


def pkg_store(fakepkg, tmp_path) -> ResultStore:
    return ResultStore(
        str(tmp_path / "store"),
        index=ModuleSignatureIndex({"sweeppkg": fakepkg.root}),
    )


def mixed_tasks(fakepkg, log, seeds=range(4)):
    """Fresh task list bound to the *currently imported* module objects."""
    return [
        SweepTask(fakepkg.alpha.alpha_task, {"seed": s, "log": log})
        for s in seeds
    ] + [
        SweepTask(fakepkg.beta.beta_task, {"seed": s, "log": log})
        for s in seeds
    ]


def executions(log_path):
    try:
        return log_path.read_text().splitlines()
    except FileNotFoundError:
        return []


# ----------------------------------------------------------------------
# Warm == cold
# ----------------------------------------------------------------------


def test_warm_sweep_identical_and_executes_nothing(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    log = tmp_path / "runs.log"
    cold = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
    assert len(executions(log)) == 8
    assert store.stats.misses == 8 and store.stats.writes == 8

    log.unlink()
    warm = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
    assert warm == cold
    assert executions(log) == []  # nothing re-executed
    assert store.stats.hits == 8


def test_warm_parallel_equals_cold_serial(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    log = tmp_path / "runs.log"
    cold = run_sweep(mixed_tasks(fakepkg, str(log)), jobs=1, store=store)
    warm = run_sweep(mixed_tasks(fakepkg, str(log)), jobs=2, store=store)
    assert warm == cold


def test_experiment_table_byte_identical_warm(tmp_path):
    from repro.harness.experiments import exp6_merging

    store = ResultStore(str(tmp_path / "store"))
    cold = exp6_merging(seeds=range(3), store=store).render()
    warm = exp6_merging(seeds=range(3), store=store).render()
    assert warm == cold
    assert store.stats.hits == 3 and store.stats.misses == 3


# ----------------------------------------------------------------------
# The tentpole property: only moved rows re-execute
# ----------------------------------------------------------------------


def test_editing_one_module_reexecutes_only_its_rows(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    log = tmp_path / "runs.log"
    cold = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
    assert cold[:4] == [("alpha-v1", s) for s in range(4)]

    # Touch alpha only; rebind tasks to the reloaded module.
    (fakepkg.dir / "alpha.py").write_text(ALPHA_V2)
    fakepkg.alpha = importlib.reload(fakepkg.alpha)
    store.refresh_signatures()
    store.stats.reset()
    log.unlink()

    after = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
    # Exactly the four alpha rows re-executed ...
    assert sorted(executions(log)) == [f"alpha:{s}" for s in range(4)]
    # ... with the new code's results; beta rows came from the store.
    assert after[:4] == [("alpha-v2", s) for s in range(4)]
    assert after[4:] == cold[4:]
    assert store.stats.invalidated == 4
    assert store.stats.hits == 4
    assert store.stats.misses == 0

    # Both signatures now coexist: a third run is fully warm again.
    log.unlink()
    again = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
    assert again == after
    assert executions(log) == []


def test_unrelated_edit_keeps_everything_warm(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    log = tmp_path / "runs.log"
    cold = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)

    # heavy.py is imported by neither alpha nor beta tasks.
    (fakepkg.dir / "heavy.py").write_text(HEAVY + "\nEXTRA = 1\n")
    store.refresh_signatures()
    store.stats.reset()
    log.unlink()

    warm = run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
    assert warm == cold
    assert executions(log) == []
    assert store.stats.hits == 8 and store.stats.invalidated == 0


# ----------------------------------------------------------------------
# Unstorable rows
# ----------------------------------------------------------------------


def test_undigestable_kwarg_counts_skipped_and_runs(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)

    class NotDigestable:
        def __str__(self):
            return "nd"

    log = tmp_path / "runs.log"
    tasks = [
        SweepTask(
            fakepkg.alpha.alpha_task,
            {"seed": NotDigestable(), "log": str(log)},
        ),
        SweepTask(fakepkg.alpha.alpha_task, {"seed": 1, "log": str(log)}),
    ]
    first = run_sweep(tasks, store=store)
    second = run_sweep(tasks, store=store)
    assert first[1] == second[1] == ("alpha-v1", 1)
    assert store.stats.skipped == 2  # the unstorable row, both sweeps
    assert len(executions(log)) == 3  # unstorable twice + storable once


# ----------------------------------------------------------------------
# Obs counters: serial == parallel
# ----------------------------------------------------------------------


def store_counters():
    return {
        k: v
        for k, v in obs.metrics().counters().items()
        if k.startswith("store.")
    }


def test_store_counters_identical_serial_vs_parallel(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    log = tmp_path / "runs.log"
    run_sweep(mixed_tasks(fakepkg, str(log)), store=store)  # prepopulate

    obs.enable(label="store-parity", fresh_metrics=True)
    try:
        serial = run_sweep(
            mixed_tasks(fakepkg, str(log)), jobs=1, store=store
        )
        counters_serial = store_counters()
    finally:
        obs.disable()

    obs.enable(label="store-parity", fresh_metrics=True)
    try:
        parallel = run_sweep(
            mixed_tasks(fakepkg, str(log)), jobs=2, store=store
        )
        counters_parallel = store_counters()
    finally:
        obs.disable()

    assert serial == parallel
    assert counters_serial == counters_parallel
    assert counters_serial["store.hit"] == 8
    assert counters_serial.get("store.miss", 0) == 0


def test_cold_run_counts_misses_and_writes(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    log = tmp_path / "runs.log"
    obs.enable(label="store-cold", fresh_metrics=True)
    try:
        run_sweep(mixed_tasks(fakepkg, str(log)), store=store)
        counters = store_counters()
    finally:
        obs.disable()
    assert counters["store.miss"] == 8
    assert counters["store.write"] == 8
    assert counters.get("store.hit", 0) == 0


# ----------------------------------------------------------------------
# Scale: >= 1000 rows, >= 10x warm speedup
# ----------------------------------------------------------------------


@pytest.mark.slow
def test_thousand_row_warm_sweep_is_10x_faster(fakepkg, tmp_path):
    store = pkg_store(fakepkg, tmp_path)
    tasks = [
        SweepTask(fakepkg.heavy.heavy_task, {"seed": s}) for s in range(1200)
    ]
    start = time.perf_counter()
    cold = run_sweep(tasks, store=store)
    cold_wall = time.perf_counter() - start
    assert store.stats.misses == 1200

    start = time.perf_counter()
    warm = run_sweep(tasks, store=store)
    warm_wall = time.perf_counter() - start
    assert warm == cold
    assert store.stats.hits == 1200
    assert warm_wall * 10 <= cold_wall, (
        f"warm {warm_wall:.3f}s not >=10x faster than cold {cold_wall:.3f}s"
    )
