"""``run_sweep(batch=...)`` and chunking parity: plans never change results.

The batch planner registry turns plannable sweep tasks into lanes of one
:class:`~repro.kernel.batch.BatchSystem`; everything here asserts the only
observable difference is speed — results stay in task order and equal the
unbatched (and unchunked) sweep byte for byte.
"""

import random

import pytest

from repro.consensus.quorum_mr import QuorumMR
from repro.detectors import Omega, PairedDetector, Sigma
from repro.harness.batch import execute_batched, plan_task
from repro.harness.parallel import SweepTask, run_sweep
from repro.harness.runner import random_pattern, run_consensus_algorithm
from repro.kernel.scheduler import RoundRobinScheduler


def _tasks(count=6, scheduler_every=None):
    """Consensus sweep tasks; every ``scheduler_every``-th is unplannable."""
    tasks = []
    for i in range(count):
        rng = random.Random(i)
        pattern = random_pattern(4, rng, max_faulty=1)
        kwargs = {
            "automaton": QuorumMR(),
            "detector": PairedDetector(Omega(), Sigma("pivot")),
            "pattern": pattern,
            "proposals": {p: p % 2 for p in range(4)},
            "seed": i,
            "max_steps": 2000,
        }
        if scheduler_every and i % scheduler_every == 0:
            kwargs["scheduler"] = RoundRobinScheduler()
        tasks.append(SweepTask(run_consensus_algorithm, kwargs))
    return tasks


class TestBatchedSweep:
    def test_batch_equals_serial_results(self):
        tasks = _tasks()
        assert run_sweep(tasks, batch=True) == run_sweep(tasks, batch=False)

    def test_mixed_planned_and_unplanned_keep_task_order(self):
        tasks = _tasks(count=8, scheduler_every=3)
        plans = [plan_task(t) for t in tasks]
        assert any(p is None for p in plans) and any(
            p is not None for p in plans
        )
        # Fresh tasks per sweep: the unplannable ones carry stateful
        # scheduler instances that a run mutates in place.
        assert run_sweep(tasks, batch=True) == run_sweep(
            _tasks(count=8, scheduler_every=3), batch=False
        )

    def test_execute_batched_reports_unplanned_indices(self):
        tasks = _tasks(count=6, scheduler_every=2)
        results, unplanned = execute_batched(tasks)
        assert unplanned == [0, 2, 4]
        for i, result in enumerate(results):
            assert (result is None) == (i in unplanned)

    def test_exp7_table_identical_with_and_without_batch(self):
        from repro.harness import experiments

        kwargs = dict(ns=(2, 3), seeds=(0, 1), jobs=1)
        batched = experiments.exp7_scaling(**kwargs, batch=True).render()
        serial = experiments.exp7_scaling(**kwargs, batch=False).render()
        assert batched == serial


class TestChunkingParity:
    """Results are byte-identical for every chunk size and job count."""

    @pytest.mark.parametrize("chunksize", [None, 1, 3, 7])
    def test_chunksize_never_changes_results(self, chunksize):
        tasks = _tasks(count=7)
        baseline = run_sweep(tasks, jobs=1)
        assert run_sweep(tasks, jobs=2, chunksize=chunksize) == baseline

    def test_chunked_batched_and_serial_agree(self):
        tasks = _tasks(count=6)
        assert (
            run_sweep(tasks, jobs=1)
            == run_sweep(tasks, jobs=2, chunksize=2)
            == run_sweep(tasks, batch=True)
        )
