"""Every example script must run clean and say something.

The examples double as executable documentation; a refactor that breaks
one breaks the README's promises.  Each script is executed in-process
(``runpy``, fresh ``__main__`` namespace) so failures surface as ordinary
test failures with full tracebacks, and its stdout must be nonempty.
"""

import io
import runpy
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 9


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs_clean_with_output(script):
    buffer = io.StringIO()
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(script), run_name="__main__")
    except SystemExit as exc:  # an explicit sys.exit(0) is success
        assert not exc.code, f"{script.name} exited with {exc.code!r}"
    output = buffer.getvalue()
    assert output.strip(), f"{script.name} printed nothing"
