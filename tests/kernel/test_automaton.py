"""Process formalisms: contexts, coroutine runtime, adapters (Section 2.4)."""

import pytest

from repro.kernel.automaton import (
    Automaton,
    AutomatonProcess,
    CoroutineRuntime,
    DeliveredMessage,
    Observation,
    Process,
    ProcessContext,
    ReplayAutomaton,
    TransitionOutcome,
)


def obs(message=None, d=None, time=0):
    return Observation(message=message, detector_value=d, time=time)


class EchoProcess(Process):
    """Replies 'echo:<payload>' to every received message."""

    def program(self, ctx):
        while True:
            o = yield from ctx.take_step()
            if o.message is not None:
                ctx.send(o.message.sender, f"echo:{o.message.payload}")


class CountingProcess(Process):
    """Decides after seeing `threshold` messages; outputs its step count."""

    def __init__(self, threshold=2):
        self.threshold = threshold

    def program(self, ctx):
        seen = 0
        while True:
            o = yield from ctx.take_step()
            ctx.output(ctx.step_count)
            if o.message is not None:
                seen += 1
                if seen >= self.threshold:
                    ctx.decide(seen)


class InitSenderProcess(Process):
    """Sends before its first take_step; sends belong to the first step."""

    def program(self, ctx):
        ctx.send_to_all("hello")
        while True:
            yield from ctx.take_step()


class TestProcessContext:
    def test_send_queues_until_step_boundary(self):
        ctx = ProcessContext(0, 3)
        runtime = CoroutineRuntime(EchoProcess(), ctx)
        sends = runtime.step(obs(DeliveredMessage(2, "hi")))
        assert sends == [(2, "echo:hi")]

    def test_send_to_all_includes_self_by_default(self):
        ctx = ProcessContext(1, 3)
        ctx.send_to_all("x")
        assert ctx._outbox == [(0, "x"), (1, "x"), (2, "x")]

    def test_send_to_all_can_exclude_self(self):
        ctx = ProcessContext(1, 3)
        ctx.send_to_all("x", include_self=False)
        assert ctx._outbox == [(0, "x"), (2, "x")]

    def test_log_and_inbox_track_messages(self):
        ctx = ProcessContext(0, 2)
        runtime = CoroutineRuntime(EchoProcess(), ctx)
        runtime.step(obs(DeliveredMessage(1, "a")))
        runtime.step(obs(None))
        runtime.step(obs(DeliveredMessage(1, "b")))
        assert [m.payload for m in ctx.log] == ["a", "b"]
        assert [m.payload for m in ctx.inbox] == ["a", "b"]

    def test_handler_consumes_messages(self):
        ctx = ProcessContext(0, 2)
        seen = []
        ctx.add_handler(lambda m: (seen.append(m.payload), True)[1])
        runtime = CoroutineRuntime(EchoProcess(), ctx)
        runtime.step(obs(DeliveredMessage(1, "consumed")))
        assert seen == ["consumed"]
        assert ctx.inbox == []  # consumed, not queued
        assert [m.payload for m in ctx.log] == ["consumed"]  # still logged

    def test_decide_is_irrevocable(self):
        ctx = ProcessContext(0, 2)
        ctx.decide("v")
        ctx.decide("v")  # idempotent
        with pytest.raises(RuntimeError):
            ctx.decide("w")

    def test_decision_time_recorded(self):
        ctx = ProcessContext(0, 2)
        runtime = CoroutineRuntime(CountingProcess(threshold=1), ctx)
        runtime.step(obs(DeliveredMessage(1, "x"), time=17))
        assert ctx.decision == 1
        assert ctx.decision_time == 17

    def test_output_appends_history(self):
        ctx = ProcessContext(0, 2)
        runtime = CoroutineRuntime(CountingProcess(), ctx)
        runtime.step(obs(None, time=3))
        runtime.step(obs(None, time=9))
        assert ctx.outputs == [(3, 1), (9, 2)]

    def test_received_queries_log(self):
        ctx = ProcessContext(0, 3)
        runtime = CoroutineRuntime(EchoProcess(), ctx)
        runtime.step(obs(DeliveredMessage(1, ("T", 1))))
        runtime.step(obs(DeliveredMessage(2, ("U", 1))))
        runtime.step(obs(DeliveredMessage(1, ("T", 2))))
        ts = ctx.received(lambda m: m.payload[0] == "T")
        assert [m.payload for m in ts] == [("T", 1), ("T", 2)]
        per_sender = ctx.received_from([1, 2], lambda m: True)
        assert per_sender[1].payload == ("T", 1)
        assert per_sender[2].payload == ("U", 1)


class TestCoroutineRuntime:
    def test_init_sends_attach_to_first_step(self):
        ctx = ProcessContext(0, 2)
        runtime = CoroutineRuntime(InitSenderProcess(), ctx)
        sends = runtime.step(obs(None))
        assert sends == [(0, "hello"), (1, "hello")]
        assert runtime.step(obs(None)) == []

    def test_halted_program_keeps_taking_noop_steps(self):
        class OneShot(Process):
            def program(self, ctx):
                yield from ctx.take_step()
                # returns => halts

        ctx = ProcessContext(0, 1)
        runtime = CoroutineRuntime(OneShot(), ctx)
        runtime.step(obs(None))
        runtime.step(obs(None))
        assert runtime.halted
        assert runtime.step(obs(DeliveredMessage(0, "late"))) == []

    def test_observation_fields_exposed_on_ctx(self):
        ctx = ProcessContext(0, 2)
        runtime = CoroutineRuntime(EchoProcess(), ctx)
        runtime.step(obs(None, d="leader-3", time=42))
        assert ctx.detector_value == "leader-3"
        assert ctx.time == 42
        assert ctx.step_count == 1


class Adder(Automaton):
    """Pure automaton summing detector values; decides past a threshold."""

    def initial_state(self, pid, n, proposal):
        return {"sum": 0, "threshold": proposal}

    def transition(self, state, pid, msg, d):
        state["sum"] += d
        sends = [(pid, "tick")] if msg is None else []
        return TransitionOutcome(state=state, sends=sends)

    def decision(self, state):
        return state["sum"] if state["sum"] >= state["threshold"] else None


class TestAutomatonProcess:
    def test_runs_automaton_and_decides(self):
        ctx = ProcessContext(0, 1)
        proc = AutomatonProcess(Adder(), proposal=5)
        runtime = CoroutineRuntime(proc, ctx)
        runtime.step(obs(None, d=2))
        assert ctx.decision is None
        runtime.step(obs(None, d=4))
        assert ctx.decision == 6

    def test_exposes_current_state(self):
        ctx = ProcessContext(0, 1)
        proc = AutomatonProcess(Adder(), proposal=100)
        runtime = CoroutineRuntime(proc, ctx)
        runtime.step(obs(None, d=3))
        assert proc.state["sum"] == 3

    def test_forwards_sends(self):
        ctx = ProcessContext(0, 1)
        proc = AutomatonProcess(Adder(), proposal=100)
        runtime = CoroutineRuntime(proc, ctx)
        sends = runtime.step(obs(None, d=0))
        assert sends == [(0, "tick")]


class TestReplayAutomaton:
    def test_replay_matches_direct_coroutine_run(self):
        history = [
            (DeliveredMessage(1, "a"), None),
            (None, None),
            (DeliveredMessage(1, "b"), None),
        ]
        # direct run
        ctx = ProcessContext(0, 2)
        runtime = CoroutineRuntime(EchoProcess(), ctx)
        direct = [runtime.step(obs(m, d)) for m, d in history]

        # replayed as a pure automaton
        replay = ReplayAutomaton(lambda proposal: EchoProcess(), n=2)
        state = replay.initial_state(0, 2, proposal=None)
        replayed = []
        for m, d in history:
            outcome = replay.transition(state, 0, m, d)
            state = outcome.state
            replayed.append(outcome.sends)
        assert replayed == direct

    def test_replay_reports_decisions(self):
        replay = ReplayAutomaton(lambda proposal: CountingProcess(2), n=2)
        state = replay.initial_state(0, 2, proposal=None)
        state = replay.transition(state, 0, DeliveredMessage(1, "x"), None).state
        assert replay.decision(state) is None
        state = replay.transition(state, 0, DeliveredMessage(1, "y"), None).state
        assert replay.decision(state) == 2

    def test_snapshot_reflects_history(self):
        replay = ReplayAutomaton(lambda proposal: EchoProcess(), n=2)
        s0 = replay.initial_state(0, 2, proposal="p")
        s1 = replay.transition(s0, 0, None, "d").state
        assert replay.snapshot(s1) == (0, "p", ((None, "d"),))


class TestRuntimeErrorContext:
    def test_process_exceptions_carry_pid_and_step(self):
        class Exploder(Process):
            def program(self, ctx):
                yield from ctx.take_step()
                yield from ctx.take_step()
                raise ValueError("boom")

        ctx = ProcessContext(3, 4)
        runtime = CoroutineRuntime(Exploder(), ctx)
        runtime.step(obs(None))  # completes the first take_step cleanly
        with pytest.raises(RuntimeError, match=r"process 3 \(Exploder\).*boom"):
            runtime.step(obs(None))
