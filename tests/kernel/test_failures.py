"""Failure patterns (Section 2.2): F(t), monotonicity, correct/faulty."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.failures import DeferredCrashPattern, FailurePattern


class TestFailurePatternBasics:
    def test_failure_free_has_everyone_correct(self):
        pattern = FailurePattern.no_failures(5)
        assert pattern.correct == frozenset(range(5))
        assert pattern.faulty == frozenset()
        assert pattern.crashed_at(10**6) == frozenset()

    def test_crash_membership_from_crash_time_onwards(self):
        pattern = FailurePattern(3, {1: 7})
        assert not pattern.is_crashed(1, 6)
        assert pattern.is_crashed(1, 7)
        assert pattern.is_crashed(1, 8)

    def test_faulty_means_crashes_at_some_time(self):
        pattern = FailurePattern(4, {0: 100, 2: 0})
        assert pattern.faulty == {0, 2}
        assert pattern.correct == {1, 3}

    def test_initial_crashes_down_from_time_zero(self):
        pattern = FailurePattern.initial_crashes(4, [1, 3])
        assert pattern.crashed_at(0) == {1, 3}

    def test_alive_at_complements_crashed_at(self):
        pattern = FailurePattern(4, {0: 2, 1: 5})
        for t in range(8):
            assert pattern.alive_at(t) | pattern.crashed_at(t) == set(range(4))
            assert not pattern.alive_at(t) & pattern.crashed_at(t)

    def test_last_crash_time(self):
        assert FailurePattern(3, {0: 4, 1: 9}).last_crash_time == 9
        assert FailurePattern.no_failures(3).last_crash_time == 0

    def test_crash_time_lookup(self):
        pattern = FailurePattern(3, {2: 11})
        assert pattern.crash_time(2) == 11
        assert pattern.crash_time(0) is None

    def test_equality_and_hash(self):
        a = FailurePattern(3, {1: 5})
        b = FailurePattern(3, {1: 5})
        c = FailurePattern(3, {1: 6})
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_rejects_unknown_process(self):
        with pytest.raises(ValueError):
            FailurePattern(3, {3: 0})

    def test_rejects_negative_crash_time(self):
        with pytest.raises(ValueError):
            FailurePattern(3, {1: -1})

    def test_rejects_empty_system(self):
        with pytest.raises(ValueError):
            FailurePattern(0)

    @given(
        st.integers(min_value=1, max_value=8).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.dictionaries(
                    st.integers(0, n - 1), st.integers(0, 50), max_size=n
                ),
            )
        ),
        st.integers(0, 60),
    )
    def test_monotone_F(self, n_and_crashes, t):
        """F(t) ⊆ F(t+1) — processes never recover."""
        n, crashes = n_and_crashes
        pattern = FailurePattern(n, crashes)
        assert pattern.crashed_at(t) <= pattern.crashed_at(t + 1)

    @given(
        st.integers(min_value=2, max_value=8),
        st.data(),
    )
    def test_union_of_F_is_faulty(self, n, data):
        crashes = data.draw(
            st.dictionaries(st.integers(0, n - 1), st.integers(0, 30), max_size=n)
        )
        pattern = FailurePattern(n, crashes)
        union = frozenset()
        for t in range(35):
            union |= pattern.crashed_at(t)
        assert union == pattern.faulty


class TestDeferredCrashPattern:
    def test_doomed_alive_until_triggered(self):
        pattern = DeferredCrashPattern(3, doomed=[2])
        assert pattern.is_alive(2, 100)
        pattern.trigger([2], 50)
        assert pattern.is_alive(2, 49)
        assert pattern.is_crashed(2, 50)

    def test_faulty_and_correct_fixed_upfront(self):
        pattern = DeferredCrashPattern(4, doomed=[1, 2])
        assert pattern.faulty == {1, 2}
        assert pattern.correct == {0, 3}

    def test_trigger_is_idempotent(self):
        pattern = DeferredCrashPattern(3, doomed=[0])
        pattern.trigger([0], 5)
        pattern.trigger([0], 9)
        assert pattern.crash_time(0) == 5

    def test_cannot_trigger_undoomed_process(self):
        pattern = DeferredCrashPattern(3, doomed=[0])
        with pytest.raises(ValueError):
            pattern.trigger([1], 5)

    def test_freeze_produces_equivalent_pattern(self):
        pattern = DeferredCrashPattern(4, doomed=[1, 3])
        pattern.trigger([1], 7)
        frozen = pattern.freeze(horizon=20)
        assert frozen.crash_time(1) == 7
        # untriggered doomed processes crash just past the horizon
        assert frozen.crash_time(3) == 21
        assert frozen.faulty == {1, 3}
        for t in range(21):
            assert frozen.crashed_at(t) == pattern.crashed_at(t)

    def test_trigger_all(self):
        pattern = DeferredCrashPattern(4, doomed=[0, 1])
        pattern.trigger_all(3)
        assert pattern.crashed_at(3) == {0, 1}
