"""Message buffer and delivery policies (Sections 2.1, 2.6, property (7))."""

import random

import pytest

from repro.kernel.messages import (
    BlockingPolicy,
    CoalescingDelivery,
    FairRandomDelivery,
    MessageBuffer,
    OldestFirstDelivery,
    PerSenderFifoDelivery,
)


def fill(buffer, triples, start_time=0):
    out = []
    for i, (sender, dest, payload) in enumerate(triples):
        out.append(buffer.send(sender, dest, payload, now=start_time + i))
    return out


class TestMessageBuffer:
    def test_send_assigns_unique_uids_per_sender(self):
        buffer = MessageBuffer()
        m1 = buffer.send(0, 1, "a", now=0)
        m2 = buffer.send(0, 2, "b", now=0)
        m3 = buffer.send(1, 2, "c", now=0)
        assert m1.uid == (0, 0)
        assert m2.uid == (0, 1)
        assert m3.uid == (1, 0)

    def test_pending_for_is_per_destination_oldest_first(self):
        buffer = MessageBuffer()
        fill(buffer, [(0, 1, "a"), (0, 2, "b"), (1, 1, "c")])
        pending = buffer.pending_for(1)
        assert [m.payload for m in pending] == ["a", "c"]

    def test_deliver_removes_exactly_one(self):
        buffer = MessageBuffer()
        msgs = fill(buffer, [(0, 1, "a"), (0, 1, "a")])
        buffer.deliver(msgs[0])
        assert buffer.pending_for(1) == [msgs[1]]
        assert buffer.delivered_count == 1

    def test_deliver_unknown_raises(self):
        buffer = MessageBuffer()
        msg = buffer.send(0, 1, "a", now=0)
        buffer.deliver(msg)
        with pytest.raises(LookupError):
            buffer.deliver(msg)

    def test_supersede_counts_separately(self):
        buffer = MessageBuffer()
        msgs = fill(buffer, [(0, 1, "old"), (0, 1, "new")])
        buffer.supersede(msgs[0])
        assert buffer.superseded_count == 1
        assert buffer.delivered_count == 0
        assert buffer.pending_for(1) == [msgs[1]]

    def test_aging_counts_destination_steps(self):
        buffer = MessageBuffer()
        fill(buffer, [(0, 1, "a")])
        buffer.note_dest_step(1)
        buffer.note_dest_step(1)
        buffer.note_dest_step(2)  # unrelated destination
        (entry,) = buffer.entries_for(1)
        assert entry.age_in_dest_steps == 2

    def test_in_flight_accounting(self):
        buffer = MessageBuffer()
        msgs = fill(buffer, [(0, 1, "a"), (1, 0, "b"), (0, 2, "c")])
        assert buffer.in_flight == 3
        buffer.deliver(msgs[1])
        assert buffer.in_flight == 2
        assert buffer.sent_count == 3


class TestOldestFirstDelivery:
    def test_delivers_oldest(self):
        buffer = MessageBuffer()
        msgs = fill(buffer, [(0, 1, "a"), (2, 1, "b")])
        policy = OldestFirstDelivery()
        assert policy.choose(buffer, 1, 0, random.Random(0)) == msgs[0]

    def test_lambda_only_when_empty(self):
        buffer = MessageBuffer()
        policy = OldestFirstDelivery()
        assert policy.choose(buffer, 1, 0, random.Random(0)) is None


class TestFairRandomDelivery:
    def test_aging_forces_overdue_delivery(self):
        buffer = MessageBuffer()
        msgs = fill(buffer, [(0, 1, "a")])
        policy = FairRandomDelivery(lambda_prob=0.99, max_age=3)
        rng = random.Random(0)
        for _ in range(3):
            buffer.note_dest_step(1)
        assert policy.choose(buffer, 1, 3, rng) == msgs[0]

    def test_every_message_eventually_delivered(self):
        """Property (7) on a finite run: drain a batch under the policy."""
        buffer = MessageBuffer()
        msgs = fill(buffer, [(s, 1, f"m{s}{i}") for s in range(3) for i in range(5)])
        policy = FairRandomDelivery(lambda_prob=0.5, max_age=10)
        rng = random.Random(42)
        delivered = []
        for step in range(500):
            buffer.note_dest_step(1)
            choice = policy.choose(buffer, 1, step, rng)
            if choice is not None:
                buffer.deliver(choice)
                delivered.append(choice.uid)
            if not buffer.has_pending(1):
                break
        assert sorted(delivered) == sorted(m.uid for m in msgs)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            FairRandomDelivery(lambda_prob=1.0)
        with pytest.raises(ValueError):
            FairRandomDelivery(max_age=0)

    def test_declares_eventual_delivery(self):
        assert FairRandomDelivery().ensures_eventual_delivery()


class TestPerSenderFifoDelivery:
    def test_fifo_within_sender(self):
        buffer = MessageBuffer()
        msgs = fill(buffer, [(0, 1, "first"), (0, 1, "second")])
        policy = PerSenderFifoDelivery(lambda_prob=0.0)
        rng = random.Random(5)
        first = policy.choose(buffer, 1, 0, rng)
        assert first == msgs[0]

    def test_choice_depends_only_on_pending_sender_set(self):
        """The determinism property the Theorem 7.1 adversary needs:
        identical pending-sender sets + identical rng states => identical
        choices, regardless of buffer interleaving."""
        def run(order):
            buffer = MessageBuffer()
            for sender, payload in order:
                buffer.send(sender, 9, payload, now=0)
            policy = PerSenderFifoDelivery(lambda_prob=0.0)
            choice = policy.choose(buffer, 9, 0, random.Random("fixed"))
            return choice.sender, choice.payload

        a = run([(0, "a0"), (1, "b0"), (0, "a1")])
        b = run([(1, "b0"), (0, "a0"), (0, "a1")])
        assert a == b


class TestBlockingPolicy:
    def test_blocked_messages_invisible_until_release(self):
        buffer = MessageBuffer()
        msgs = fill(buffer, [(0, 1, "cross"), (2, 1, "local")])
        policy = BlockingPolicy(
            inner=OldestFirstDelivery(), blocked=lambda m: m.sender == 0
        )
        policy.set_now(0)
        assert policy.choose(buffer, 1, 0, random.Random(0)) == msgs[1]
        policy.release(5)
        policy.set_now(5)
        assert policy.choose(buffer, 1, 0, random.Random(0)) == msgs[0]

    def test_eventual_delivery_depends_on_release(self):
        policy = BlockingPolicy(OldestFirstDelivery(), blocked=lambda m: True)
        assert not policy.ensures_eventual_delivery()
        policy.release(0)
        assert policy.ensures_eventual_delivery()


class _FakeDag:
    """Duck-typed stand-in recognized by the coalescing predicate."""

    def add_local_sample(self):  # pragma: no cover - structural only
        pass

    @property
    def frontier(self):  # pragma: no cover - structural only
        return ()


class TestCoalescingDelivery:
    def test_supersedes_older_dags_from_same_sender(self):
        buffer = MessageBuffer()
        old = buffer.send(0, 1, _FakeDag(), now=0)
        new = buffer.send(0, 1, _FakeDag(), now=1)
        policy = CoalescingDelivery(inner=OldestFirstDelivery())
        choice = policy.choose(buffer, 1, 0, random.Random(0))
        assert choice == new
        assert buffer.superseded_count == 1

    def test_keeps_dags_from_different_senders(self):
        buffer = MessageBuffer()
        a = buffer.send(0, 1, _FakeDag(), now=0)
        b = buffer.send(2, 1, _FakeDag(), now=0)
        policy = CoalescingDelivery(inner=OldestFirstDelivery())
        policy.choose(buffer, 1, 0, random.Random(0))
        assert buffer.superseded_count == 0

    def test_ignores_non_dag_payloads(self):
        buffer = MessageBuffer()
        first = buffer.send(0, 1, ("REP", 1, "v"), now=0)
        second = buffer.send(0, 1, ("REP", 2, "v"), now=1)
        policy = CoalescingDelivery(inner=OldestFirstDelivery())
        choice = policy.choose(buffer, 1, 0, random.Random(0))
        assert choice == first
        assert buffer.superseded_count == 0

    def test_coalesces_channel_wrapped_dags(self):
        buffer = MessageBuffer()
        buffer.send(0, 1, ("B", _FakeDag()), now=0)
        newest = buffer.send(0, 1, ("B", _FakeDag()), now=1)
        policy = CoalescingDelivery(inner=OldestFirstDelivery())
        choice = policy.choose(buffer, 1, 0, random.Random(0))
        assert choice == newest
        assert buffer.superseded_count == 1
