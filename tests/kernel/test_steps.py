"""Schedules and causal precedence (Sections 2.5-2.6, Observation 2.1)."""

from repro.kernel.steps import (
    Schedule,
    Step,
    causal_edges,
    causal_past,
    causally_precedes,
    participants,
)


def s(pid, uid=None, d=None):
    return Step(pid=pid, msg_uid=uid, detector_value=d)


class TestSchedule:
    def test_len_and_indexing(self):
        sched = Schedule([s(0), s(1), s(0)])
        assert len(sched) == 3
        assert sched[1].pid == 1
        assert isinstance(sched[0:2], Schedule)
        assert len(sched[0:2]) == 2

    def test_prefix_matches_paper_notation(self):
        sched = Schedule([s(0), s(1), s(2)])
        assert list(sched.prefix(2)) == [s(0), s(1)]
        assert list(sched.prefix(0)) == []

    def test_append_and_extend_are_persistent(self):
        base = Schedule([s(0)])
        longer = base.append(s(1))
        assert len(base) == 1
        assert len(longer) == 2
        assert len(base.extend([s(1), s(2)])) == 3

    def test_participants(self):
        sched = Schedule([s(0), s(2), s(0)])
        assert participants(sched) == {0, 2}
        assert participants(Schedule()) == frozenset()

    def test_steps_of(self):
        sched = Schedule([s(0), s(1), s(0), s(2)])
        assert sched.steps_of(0) == [0, 2]

    def test_equality_and_hash(self):
        a = Schedule([s(0), s(1)])
        b = Schedule([s(0), s(1)])
        assert a == b and hash(a) == hash(b)
        assert a != Schedule([s(1), s(0)])


class TestCausalPrecedence:
    def test_program_order_edges(self):
        sched = Schedule([s(0), s(1), s(0)])
        edges = causal_edges(sched, {})
        assert (0, 2) in edges  # steps 0 and 2 are both process 0's

    def test_message_edges(self):
        # step 0 (process 0) sends uid (0,0); step 2 (process 1) receives it
        sched = Schedule([s(0), s(1), s(1, uid=(0, 0))])
        edges = causal_edges(sched, {(0, 0): 0})
        assert (0, 2) in edges

    def test_causally_precedes_transitive(self):
        # 0 sends to 1 (received at step 2), then 1's step 3 follows
        sched = Schedule([s(0), s(2), s(1, uid=(0, 0)), s(1)])
        send_indices = {(0, 0): 0}
        assert causally_precedes(sched, send_indices, 0, 2)
        assert causally_precedes(sched, send_indices, 0, 3)  # via program order
        assert not causally_precedes(sched, send_indices, 1, 3)

    def test_observation_2_1_precedence_implies_lower_index(self):
        sched = Schedule([s(0), s(0)])
        assert not causally_precedes(sched, {}, 1, 0)
        assert not causally_precedes(sched, {}, 0, 0)

    def test_concurrent_steps_unrelated(self):
        sched = Schedule([s(0), s(1)])
        assert not causally_precedes(sched, {}, 0, 1)
        assert not causally_precedes(sched, {}, 1, 0)

    def test_causal_past(self):
        sched = Schedule([s(0), s(1), s(1, uid=(0, 0)), s(2)])
        past = causal_past(sched, {(0, 0): 0}, 2)
        assert past == {0, 1}
        assert causal_past(sched, {}, 0) == frozenset()
