"""Step-selection policies and their fairness guarantees (property (6))."""

import random
from collections import Counter

from repro.kernel.scheduler import (
    RandomFairScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    WeightedScheduler,
)


class TestRoundRobin:
    def test_cycles_in_order(self):
        sched = RoundRobinScheduler()
        rng = random.Random(0)
        picks = [sched.next_process((0, 1, 2), t, rng) for t in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_crashed(self):
        sched = RoundRobinScheduler()
        rng = random.Random(0)
        picks = [sched.next_process((0, 2), t, rng) for t in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_empty_alive_returns_none(self):
        assert RoundRobinScheduler().next_process((), 0, random.Random(0)) is None


class TestRandomFair:
    def test_every_alive_process_scheduled_within_gap(self):
        sched = RandomFairScheduler(max_gap=10)
        rng = random.Random(3)
        last = {p: 0 for p in range(4)}
        for i in range(1, 400):
            pick = sched.next_process((0, 1, 2, 3), i, rng)
            gap = i - last[pick]
            last[pick] = i
        for p in range(4):
            assert 400 - last[p] <= 12 + 4  # aged within the bound

    def test_distribution_roughly_uniform(self):
        sched = RandomFairScheduler(max_gap=100)
        rng = random.Random(7)
        counts = Counter(
            sched.next_process((0, 1, 2), t, rng) for t in range(3000)
        )
        for p in range(3):
            assert 800 <= counts[p] <= 1200

    def test_rejects_bad_gap(self):
        import pytest

        with pytest.raises(ValueError):
            RandomFairScheduler(max_gap=0)


class TestWeighted:
    def test_weights_skew_schedule(self):
        sched = WeightedScheduler({0: 10.0, 1: 1.0}, max_gap=1000)
        rng = random.Random(9)
        counts = Counter(sched.next_process((0, 1), t, rng) for t in range(2000))
        assert counts[0] > 4 * counts[1]

    def test_aging_still_schedules_lightweights(self):
        sched = WeightedScheduler({0: 1000.0, 1: 0.001}, max_gap=50)
        rng = random.Random(11)
        picks = [sched.next_process((0, 1), t, rng) for t in range(500)]
        assert picks.count(1) >= 500 // 52


class TestScripted:
    def test_follows_script_then_fallback(self):
        sched = ScriptedScheduler([2, 2, 0], fallback=RoundRobinScheduler())
        rng = random.Random(0)
        picks = [sched.next_process((0, 1, 2), t, rng) for t in range(5)]
        assert picks[:3] == [2, 2, 0]
        assert picks[3:] == [0, 1]

    def test_skips_crashed_script_entries(self):
        sched = ScriptedScheduler([1, 2, 0])
        rng = random.Random(0)
        assert sched.next_process((0, 2), 0, rng) == 2
        assert sched.next_process((0, 2), 1, rng) == 0
