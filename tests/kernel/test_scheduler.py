"""Step-selection policies and their fairness guarantees (property (6))."""

import random
from collections import Counter

from repro.kernel.scheduler import (
    RandomFairScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    WeightedScheduler,
)


class TestRoundRobin:
    def test_cycles_in_order(self):
        sched = RoundRobinScheduler()
        rng = random.Random(0)
        picks = [sched.next_process((0, 1, 2), t, rng) for t in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_crashed(self):
        sched = RoundRobinScheduler()
        rng = random.Random(0)
        picks = [sched.next_process((0, 2), t, rng) for t in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_empty_alive_returns_none(self):
        assert RoundRobinScheduler().next_process((), 0, random.Random(0)) is None


class TestRandomFair:
    def test_every_alive_process_scheduled_within_gap(self):
        sched = RandomFairScheduler(max_gap=10)
        rng = random.Random(3)
        last = {p: 0 for p in range(4)}
        for i in range(1, 400):
            pick = sched.next_process((0, 1, 2, 3), i, rng)
            gap = i - last[pick]
            last[pick] = i
        for p in range(4):
            assert 400 - last[p] <= 12 + 4  # aged within the bound

    def test_distribution_roughly_uniform(self):
        sched = RandomFairScheduler(max_gap=100)
        rng = random.Random(7)
        counts = Counter(
            sched.next_process((0, 1, 2), t, rng) for t in range(3000)
        )
        for p in range(3):
            assert 800 <= counts[p] <= 1200

    def test_rejects_bad_gap(self):
        import pytest

        with pytest.raises(ValueError):
            RandomFairScheduler(max_gap=0)


class TestWeighted:
    def test_weights_skew_schedule(self):
        sched = WeightedScheduler({0: 10.0, 1: 1.0}, max_gap=1000)
        rng = random.Random(9)
        counts = Counter(sched.next_process((0, 1), t, rng) for t in range(2000))
        assert counts[0] > 4 * counts[1]

    def test_aging_still_schedules_lightweights(self):
        sched = WeightedScheduler({0: 1000.0, 1: 0.001}, max_gap=50)
        rng = random.Random(11)
        picks = [sched.next_process((0, 1), t, rng) for t in range(500)]
        assert picks.count(1) >= 500 // 52


def _reference_choices(sched, alive_by_step, rng):
    """Re-derive choices with the unamortized per-step overdue scan.

    This is the pre-watermark algorithm, kept here as the oracle: the
    amortized schedulers must make bit-identical choices (same rng draws,
    same picks), or sweep tables would silently change.
    """
    last = {}
    picks = []
    for i, alive in enumerate(alive_by_step, start=1):
        overdue = [p for p in alive if i - last.get(p, 0) > sched.max_gap]
        if overdue:
            choice = overdue[0]
        elif isinstance(sched, WeightedScheduler):
            weights = [sched.weights.get(p, 1.0) for p in alive]
            choice = rng.choices(list(alive), weights=weights, k=1)[0]
        else:
            choice = rng.choice(list(alive))
        last[choice] = i
        picks.append(choice)
    return picks


class TestFairnessRegression:
    """10k-step aging-bound regressions (guards the watermark amortization)."""

    def _max_observed_gap(self, sched, steps=10_000, n=5, seed=17):
        rng = random.Random(seed)
        alive = tuple(range(n))
        last = {p: 0 for p in alive}
        worst = 0
        for i in range(1, steps + 1):
            if i == steps // 2:  # crash one process mid-run
                alive = tuple(p for p in alive if p != n - 1)
            pick = sched.next_process(alive, i, rng)
            assert pick in alive
            worst = max(worst, i - last[pick])
            last[pick] = i
        for p in alive:  # nobody starves at the tail either
            worst = max(worst, steps - last[p])
        return worst

    def test_random_fair_no_gap_beyond_bound(self):
        n = 5
        sched = RandomFairScheduler(max_gap=32)
        # overdue processes are served one per decision, so the worst gap is
        # max_gap + (number of simultaneously-overdue peers)
        assert self._max_observed_gap(sched, n=n) <= 32 + n

    def test_weighted_no_gap_beyond_bound(self):
        n = 5
        sched = WeightedScheduler(
            {0: 100.0, 1: 10.0, 2: 1.0, 3: 0.01, 4: 0.01}, max_gap=64
        )
        assert self._max_observed_gap(sched, n=n) <= 64 + n

    def test_random_fair_matches_per_step_scan(self):
        alive_by_step = [(0, 1, 2, 3)] * 5000 + [(0, 1, 3)] * 5000
        sched = RandomFairScheduler(max_gap=16)
        rng = random.Random(23)
        picks = [
            sched.next_process(alive, i, rng)
            for i, alive in enumerate(alive_by_step, start=1)
        ]
        oracle = _reference_choices(
            RandomFairScheduler(max_gap=16), alive_by_step, random.Random(23)
        )
        assert picks == oracle

    def test_weighted_matches_per_step_scan(self):
        alive_by_step = [(0, 1, 2)] * 4000 + [(0, 2)] * 4000
        sched = WeightedScheduler({0: 50.0, 2: 0.1}, max_gap=24)
        rng = random.Random(31)
        picks = [
            sched.next_process(alive, i, rng)
            for i, alive in enumerate(alive_by_step, start=1)
        ]
        oracle = _reference_choices(
            WeightedScheduler({0: 50.0, 2: 0.1}, max_gap=24),
            alive_by_step,
            random.Random(31),
        )
        assert picks == oracle


class TestScripted:
    def test_follows_script_then_fallback(self):
        sched = ScriptedScheduler([2, 2, 0], fallback=RoundRobinScheduler())
        rng = random.Random(0)
        picks = [sched.next_process((0, 1, 2), t, rng) for t in range(5)]
        assert picks[:3] == [2, 2, 0]
        assert picks[3:] == [0, 1]

    def test_skips_crashed_script_entries(self):
        sched = ScriptedScheduler([1, 2, 0])
        rng = random.Random(0)
        assert sched.next_process((0, 2), 0, rng) == 2
        assert sched.next_process((0, 2), 1, rng) == 0
