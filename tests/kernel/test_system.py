"""The live System: stepping, crashes, stop conditions, recording."""

import pytest

from repro.detectors.base import FunctionalHistory
from repro.kernel.automaton import Process
from repro.kernel.failures import FailurePattern
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.system import System


class Broadcaster(Process):
    """Broadcasts its step count every step; decides at `threshold` receipts."""

    def __init__(self, threshold=3):
        self.threshold = threshold

    def program(self, ctx):
        received = 0
        while True:
            obs = yield from ctx.take_step()
            ctx.send_to_all(("beat", ctx.pid, ctx.step_count))
            ctx.output(ctx.step_count)
            if obs.message is not None:
                received += 1
                if received >= self.threshold and ctx.decision is None:
                    ctx.decide(("done", ctx.pid))


def make_system(n=3, crashes=None, seed=1, threshold=3):
    pattern = FailurePattern(n, crashes or {})
    history = FunctionalHistory(lambda p, t: ("d", t))
    processes = {p: Broadcaster(threshold) for p in range(n)}
    return System(processes, pattern, history, seed=seed), pattern


class TestSystemStepping:
    def test_time_advances_one_per_step(self):
        system, _ = make_system()
        for expected in range(5):
            record = system.step()
            assert record.time == expected
        assert system.time == 5

    def test_crashed_processes_take_no_steps(self):
        system, _ = make_system(crashes={0: 0})
        for _ in range(50):
            system.step()
        assert all(s.pid != 0 for s in system.steps)

    def test_crash_mid_run_stops_steps_from_then_on(self):
        system, _ = make_system(crashes={1: 10})
        for _ in range(60):
            system.step()
        late = [s for s in system.steps if s.time >= 10]
        assert all(s.pid != 1 for s in late)
        early = [s for s in system.steps if s.time < 10]
        assert any(s.pid == 1 for s in early)

    def test_all_crashed_returns_none(self):
        system, _ = make_system(n=2, crashes={0: 0, 1: 0})
        assert system.step() is None

    def test_detector_queries_recorded(self):
        system, _ = make_system()
        system.step()
        pid = system.steps[0].pid
        assert system.queried[pid] == [(0, ("d", 0))]

    def test_detector_value_follows_history_time(self):
        system, _ = make_system()
        records = [system.step() for _ in range(4)]
        for r in records:
            assert r.detector_value == ("d", r.time)


class TestSystemRun:
    def test_stop_condition_ends_run(self):
        system, _ = make_system()
        result = system.run(
            max_steps=5000, stop_when=lambda s: s.all_correct_decided()
        )
        assert result.stop_reason == "stop_condition"
        assert set(result.decisions) == {0, 1, 2}

    def test_max_steps_budget(self):
        system, _ = make_system(threshold=10**9)
        result = system.run(max_steps=40)
        assert result.stop_reason == "max_steps"
        assert result.step_count == 40

    def test_extra_steps_run_past_stop(self):
        system, _ = make_system()
        result = system.run(
            max_steps=5000,
            stop_when=lambda s: s.all_correct_decided(),
            extra_steps=25,
        )
        decided_at = max(result.decision_times.values())
        assert result.final_time >= decided_at + 25

    def test_decisions_and_times_recorded(self):
        system, _ = make_system(n=2)
        result = system.run(
            max_steps=5000, stop_when=lambda s: s.all_correct_decided()
        )
        for p, value in result.decisions.items():
            assert value == ("done", p)
            assert result.decision_times[p] is not None

    def test_outputs_recorded_per_process(self):
        system, _ = make_system(n=2)
        result = system.run(max_steps=30)
        for p in range(2):
            steps_of_p = [s for s in result.steps if s.pid == p]
            assert len(result.outputs[p]) == len(steps_of_p)

    def test_message_accounting(self):
        system, _ = make_system(n=2)
        result = system.run(max_steps=50)
        assert result.messages_sent == 2 * result.step_count
        assert result.messages_delivered <= result.messages_sent

    def test_decided_correct_filters_faulty(self):
        system, pattern = make_system(n=3, crashes={2: 4})
        result = system.run(
            max_steps=5000, stop_when=lambda s: s.all_correct_decided()
        )
        assert set(result.decided_correct()) <= {0, 1}


class TestSystemValidation:
    def test_requires_full_process_map(self):
        pattern = FailurePattern(3)
        history = FunctionalHistory(lambda p, t: None)
        with pytest.raises(ValueError):
            System({0: Broadcaster(), 1: Broadcaster()}, pattern, history)

    def test_plain_callable_history_accepted(self):
        pattern = FailurePattern(2)
        system = System(
            {0: Broadcaster(), 1: Broadcaster()},
            pattern,
            history=lambda p, t: "L",
            seed=0,
        )
        record = system.step()
        assert record.detector_value == "L"

    def test_seed_determinism(self):
        def trace(seed):
            system, _ = make_system(seed=seed)
            result = system.run(max_steps=120)
            return [(s.pid, s.message.uid if s.message else None) for s in result.steps]

        assert trace(5) == trace(5)
        assert trace(5) != trace(6)

    def test_round_robin_scheduler_honoured(self):
        pattern = FailurePattern(3)
        system = System(
            {p: Broadcaster() for p in range(3)},
            pattern,
            history=lambda p, t: None,
            scheduler=RoundRobinScheduler(),
            seed=0,
        )
        pids = [system.step().pid for _ in range(6)]
        assert pids == [0, 1, 2, 0, 1, 2]
