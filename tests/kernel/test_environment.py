"""Environments (Section 2.2): E_t, sampling, enumeration."""

import random

import pytest

from repro.kernel.environment import Environment, spread_crash_times
from repro.kernel.failures import FailurePattern


class TestEnvironmentMembership:
    def test_e_t_accepts_up_to_t_failures(self):
        env = Environment.max_failures(5, 2)
        assert FailurePattern(5, {0: 1}) in env
        assert FailurePattern(5, {0: 1, 1: 2}) in env
        assert FailurePattern(5, {0: 1, 1: 2, 2: 3}) not in env

    def test_e_0_is_failure_free_only(self):
        env = Environment.max_failures(3, 0)
        assert FailurePattern.no_failures(3) in env
        assert FailurePattern(3, {0: 5}) not in env

    def test_wrong_n_is_never_a_member(self):
        env = Environment.max_failures(5, 2)
        assert FailurePattern.no_failures(4) not in env

    def test_any_failures_requires_one_correct(self):
        env = Environment.any_failures(3)
        assert FailurePattern(3, {0: 0, 1: 0}) in env
        assert FailurePattern.initial_crashes(3, [0, 1, 2]) not in env

    def test_majority_correct_threshold(self):
        env = Environment.majority_correct(5)
        assert env.max_faulty == 2
        assert FailurePattern(5, {0: 1, 1: 1}) in env
        assert FailurePattern(5, {0: 1, 1: 1, 2: 1}) not in env

    def test_invalid_t_rejected(self):
        with pytest.raises(ValueError):
            Environment.max_failures(3, 4)
        with pytest.raises(ValueError):
            Environment.max_failures(3, -1)


class TestSamplingAndEnumeration:
    def test_sampled_patterns_are_members(self):
        env = Environment.max_failures(6, 3)
        rng = random.Random(7)
        for _ in range(50):
            assert env.sample_pattern(rng) in env

    def test_sample_respects_forced_faulty_count(self):
        env = Environment.max_failures(5, 4)
        rng = random.Random(1)
        pattern = env.sample_pattern(rng, faulty_count=3)
        assert len(pattern.faulty) == 3

    def test_enumerate_crash_sets_counts(self):
        env = Environment.max_failures(4, 2)
        sets = list(env.enumerate_crash_sets())
        # C(4,0) + C(4,1) + C(4,2) = 1 + 4 + 6
        assert len(sets) == 11
        assert all(len(s) <= 2 for s in sets)

    def test_enumerate_patterns_combines_times(self):
        env = Environment.max_failures(3, 1)
        patterns = list(env.enumerate_patterns(crash_times=[0, 5]))
        # failure-free once, plus 3 singletons x 2 times
        assert len(patterns) == 1 + 3 * 2
        assert all(p in env for p in patterns)

    def test_spread_crash_times(self):
        rng = random.Random(3)
        pattern = spread_crash_times(5, [1, 4], rng, horizon=9)
        assert pattern.faulty == {1, 4}
        assert all(0 <= pattern.crash_time(p) <= 9 for p in (1, 4))
