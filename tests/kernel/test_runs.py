"""Runs, run validation and merging (Sections 2.6, 2.10, Lemma 2.2)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel.automaton import Automaton, TransitionOutcome
from repro.kernel.failures import FailurePattern
from repro.kernel.runs import (
    PureRun,
    PureSystemSimulator,
    merge_runs,
    mergeable,
    validate_run,
)
from repro.kernel.steps import Schedule, Step


class Chatter(Automaton):
    """Broadcasts a counter on lambda steps; remembers everything received."""

    def initial_state(self, pid, n, proposal):
        return {"pid": pid, "n": n, "x": proposal, "count": 0, "seen": []}

    def transition(self, state, pid, msg, d):
        sends = []
        if msg is None:
            state["count"] += 1
            payload = ("tick", state["x"], state["count"])
            sends = [(q, payload) for q in range(state["n"])]
        else:
            state["seen"].append((msg.sender, msg.payload, d))
        return TransitionOutcome(state=state, sends=sends)

    def snapshot(self, state):
        return (
            state["pid"],
            state["x"],
            state["count"],
            tuple(state["seen"]),
        )


def lam(pid, d=None):
    return Step(pid=pid, msg_uid=None, detector_value=d)


def null_history(p, t):
    return None


class TestPureSystemSimulator:
    def setup_method(self):
        self.sim = PureSystemSimulator(Chatter(), 3, {0: "a", 1: "b", 2: "c"})

    def test_lambda_step_always_applicable(self):
        assert self.sim.is_applicable(lam(0))

    def test_receive_requires_pending_message(self):
        step = Step(pid=1, msg_uid=(0, 0), detector_value=None)
        assert not self.sim.is_applicable(step)
        self.sim.apply_step(lam(0))  # process 0 broadcasts (0,0)..(0,2)
        good = Step(pid=1, msg_uid=(0, 1), detector_value=None)
        assert self.sim.is_applicable(good)
        wrong_dest = Step(pid=2, msg_uid=(0, 1), detector_value=None)
        assert not self.sim.is_applicable(wrong_dest)

    def test_apply_removes_message_and_updates_state(self):
        self.sim.apply_step(lam(0))
        step = Step(pid=1, msg_uid=(0, 1), detector_value="D")
        self.sim.apply_step(step)
        assert self.sim.states[1]["seen"] == [(0, ("tick", "a", 1), "D")]
        assert not self.sim.is_applicable(step)

    def test_oldest_pending_uid_follows_send_order(self):
        self.sim.apply_step(lam(0))
        self.sim.apply_step(lam(2))
        assert self.sim.oldest_pending_uid(1) == (0, 1)

    def test_send_indices_recorded(self):
        self.sim.apply_step(lam(0))
        assert self.sim.send_indices[(0, 0)] == 0

    def test_inapplicable_apply_raises(self):
        with pytest.raises(ValueError):
            self.sim.apply_step(Step(pid=0, msg_uid=(9, 9), detector_value=None))


def build_run(n=2, steps=None, times=None, pattern=None, history=null_history):
    steps = steps if steps is not None else [lam(0), lam(1)]
    times = times if times is not None else list(range(len(steps)))
    return PureRun(
        automaton=Chatter(),
        n=n,
        proposals={p: p for p in range(n)},
        pattern=pattern or FailurePattern.no_failures(n),
        history=history,
        schedule=Schedule(steps),
        times=times,
    )


class TestValidateRun:
    def test_valid_run_passes(self):
        assert validate_run(build_run()) == []

    def test_length_mismatch_property_2(self):
        run = build_run(times=[0])
        assert any("property 2" in v for v in validate_run(run))

    def test_decreasing_times_property_4(self):
        run = build_run(times=[5, 3])
        assert any("property 4" in v for v in validate_run(run))

    def test_step_after_crash_property_3(self):
        run = build_run(pattern=FailurePattern(2, {1: 0}))
        assert any("property 3" in v for v in validate_run(run))

    def test_wrong_detector_value_property_3(self):
        run = build_run(history=lambda p, t: "leader")
        violations = validate_run(run)
        assert any("property 3" in v and "detector" in v for v in violations)

    def test_unapplicable_schedule_property_1(self):
        steps = [Step(pid=0, msg_uid=(5, 5), detector_value=None)]
        run = build_run(steps=steps, times=[0])
        assert any("property 1" in v for v in validate_run(run))

    def test_same_process_equal_times_property_5(self):
        run = build_run(steps=[lam(0), lam(0)], times=[3, 3])
        assert any("property 5" in v for v in validate_run(run))

    def test_message_received_at_send_time_property_5(self):
        steps = [lam(0), Step(pid=1, msg_uid=(0, 1), detector_value=None)]
        run = build_run(steps=steps, times=[4, 4])
        assert any("property 5" in v for v in validate_run(run))

    def test_concurrent_steps_of_distinct_processes_allowed(self):
        run = build_run(steps=[lam(0), lam(1)], times=[2, 2])
        assert validate_run(run) == []


class TestMerging:
    def make_pair(self, times0=(0, 2, 4), times1=(1, 3, 5)):
        run0 = build_run(
            n=4, steps=[lam(0), lam(1), lam(0)], times=list(times0)
        )
        run1 = PureRun(
            automaton=run0.automaton,
            n=4,
            proposals={0: 0, 1: 1, 2: "z2", 3: "z3"},
            pattern=run0.pattern,
            history=run0.history,
            schedule=Schedule([lam(2), lam(3), lam(2)]),
            times=list(times1),
        )
        return run0, run1

    def test_disjoint_participants_are_mergeable(self):
        run0, run1 = self.make_pair()
        assert mergeable(run0, run1)

    def test_overlapping_participants_not_mergeable(self):
        run0, _ = self.make_pair()
        assert not mergeable(run0, run0)

    def test_different_patterns_not_mergeable(self):
        run0, run1 = self.make_pair()
        run1.pattern = FailurePattern(4, {3: 99999})
        assert not mergeable(run0, run1)

    def test_merged_is_a_valid_run(self):
        run0, run1 = self.make_pair()
        merged = merge_runs(run0, run1)
        assert validate_run(merged) == []
        assert len(merged.schedule) == 6

    def test_merged_times_nondecreasing_and_complete(self):
        run0, run1 = self.make_pair(times0=(0, 2, 2), times1=(1, 2, 9))
        merged = merge_runs(run0, run1)
        assert list(merged.times) == sorted(
            list(run0.times) + list(run1.times)
        )

    def test_lemma_2_2_state_preservation(self):
        run0, run1 = self.make_pair()
        merged = merge_runs(run0, run1)
        final0, final1 = run0.final_states(), run1.final_states()
        final = merged.final_states()
        for p, snap in final0.items():
            assert final[p] == snap
        for p, snap in final1.items():
            assert final[p] == snap

    def test_merge_rejects_unmergeable(self):
        run0, _ = self.make_pair()
        with pytest.raises(ValueError):
            merge_runs(run0, run0)

    def test_random_tie_interleavings_all_valid(self):
        run0, run1 = self.make_pair(times0=(0, 1, 1), times1=(1, 1, 2))
        for seed in range(8):
            merged = merge_runs(run0, run1, rng=random.Random(seed))
            assert validate_run(merged) == []
            final = merged.final_states()
            for p, snap in run0.final_states().items():
                assert final[p] == snap

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.sampled_from([0, 1]), min_size=1, max_size=8),
        st.lists(st.sampled_from([2, 3]), min_size=1, max_size=8),
        st.integers(0, 3),
    )
    def test_lemma_2_2_property(self, pids0, pids1, seed):
        """Merging any two disjoint-participant lambda-step runs yields a
        valid run preserving participant states (Lemma 2.2)."""
        # strictly increasing times trivially satisfy properties (4)-(5)
        times0 = _strictly_increasing(len(pids0), random.Random(seed))
        times1 = _strictly_increasing(len(pids1), random.Random(seed + 1))
        run0 = build_run(n=4, steps=[lam(p) for p in pids0], times=times0)
        run1 = PureRun(
            automaton=run0.automaton,
            n=4,
            proposals={p: p * 10 for p in range(4)},
            pattern=run0.pattern,
            history=run0.history,
            schedule=Schedule([lam(p) for p in pids1]),
            times=times1,
        )
        assert validate_run(run0) == []
        assert validate_run(run1) == []
        merged = merge_runs(run0, run1, rng=random.Random(seed))
        assert validate_run(merged) == []
        final = merged.final_states()
        for p, snap in run0.final_states().items():
            assert final[p] == snap
        for p, snap in run1.final_states().items():
            assert final[p] == snap


def _strictly_increasing(length, rng):
    times = []
    t = rng.randint(0, 3)
    for _ in range(length):
        times.append(t)
        t += rng.randint(1, 3)
    return times


class TestMultiWayMerging:
    """The partition argument generalizes: pairwise merging of k disjoint
    runs stays a valid, state-preserving run."""

    def make_run(self, pids, times, proposals):
        return PureRun(
            automaton=Chatter(),
            n=6,
            proposals=proposals,
            pattern=FailurePattern.no_failures(6),
            history=null_history,
            schedule=Schedule([lam(p) for p in pids]),
            times=times,
        )

    def test_three_way_merge(self):
        proposals = {p: p * 100 for p in range(6)}
        runs = [
            self.make_run([0, 1, 0], [0, 3, 6], proposals),
            self.make_run([2, 3], [1, 4], proposals),
            self.make_run([4, 5, 5], [2, 5, 8], proposals),
        ]
        merged = merge_runs(merge_runs(runs[0], runs[1]), runs[2])
        assert validate_run(merged) == []
        final = merged.final_states()
        for run in runs:
            for p, snap in run.final_states().items():
                assert final[p] == snap

    def test_merge_order_does_not_affect_participant_states(self):
        proposals = {p: p for p in range(6)}
        r0 = self.make_run([0, 1], [0, 2], proposals)
        r1 = self.make_run([2], [1], proposals)
        r2 = self.make_run([3, 4], [3, 5], proposals)
        ab_c = merge_runs(merge_runs(r0, r1), r2)
        a_bc = merge_runs(r0, merge_runs(r1, r2))
        assert ab_c.final_states() == a_bc.final_states()
        assert list(ab_c.times) == list(a_bc.times)
