"""Cross-validation: live executions are legal runs of the formal model.

``pure_run_from_live`` lifts a live System trace into the Section 2.6 run
formalism; ``validate_run`` then re-simulates it from the initial
configuration and checks properties (1)-(5).  Passing means the live
executor (coroutine adapter, buffer, scheduler, clock) and the pure
simulator agree step for step — the strongest internal consistency check
the kernel has.
"""

import random

import pytest

from repro.consensus.flood_p import FloodSetPerfect
from repro.consensus.mostefaoui_raynal import MostefaouiRaynal
from repro.consensus.quorum_mr import QuorumMR
from repro.detectors import Omega, PairedDetector, Perfect, Sigma
from repro.kernel.automaton import AutomatonProcess
from repro.kernel.failures import FailurePattern
from repro.kernel.runs import pure_run_from_live, validate_run
from repro.kernel.scheduler import RoundRobinScheduler, WeightedScheduler
from repro.kernel.system import System


def live_run(automaton, detector, pattern, proposals, seed=0, **kwargs):
    history = detector.sample_history(pattern, random.Random(seed * 31 + 7))
    processes = {
        p: AutomatonProcess(automaton, proposals[p]) for p in range(pattern.n)
    }
    system = System(processes, pattern, history, seed=seed, **kwargs)
    result = system.run(max_steps=8000, stop_when=lambda s: s.all_correct_decided())
    return result, history


CASES = [
    (
        "quorum-mr",
        QuorumMR(),
        PairedDetector(Omega(), Sigma("pivot")),
        FailurePattern(3, {2: 20}),
    ),
    (
        "mr",
        MostefaouiRaynal(),
        Omega(),
        FailurePattern(4, {3: 15}),
    ),
    (
        "floodset",
        FloodSetPerfect(),
        Perfect(lag=3),
        FailurePattern(3, {0: 10}),
    ),
]


@pytest.mark.parametrize("name,automaton,detector,pattern", CASES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_live_runs_are_valid_model_runs(name, automaton, detector, pattern, seed):
    proposals = {p: p % 2 for p in range(pattern.n)}
    result, history = live_run(automaton, detector, pattern, proposals, seed=seed)
    run = pure_run_from_live(result, automaton, proposals, history.value)
    assert validate_run(run) == []


def test_bridge_under_round_robin():
    pattern = FailurePattern(3, {})
    proposals = {p: "x" for p in range(3)}
    result, history = live_run(
        QuorumMR(),
        PairedDetector(Omega(), Sigma("pivot")),
        pattern,
        proposals,
        seed=4,
        scheduler=RoundRobinScheduler(),
    )
    run = pure_run_from_live(result, QuorumMR(), proposals, history.value)
    assert validate_run(run) == []


def test_bridge_under_skewed_scheduler():
    pattern = FailurePattern(4, {1: 30})
    proposals = {p: p for p in range(4)}
    result, history = live_run(
        QuorumMR(),
        PairedDetector(Omega(), Sigma("full")),
        pattern,
        proposals,
        seed=5,
        scheduler=WeightedScheduler({0: 9.0, 2: 0.2}),
    )
    run = pure_run_from_live(result, QuorumMR(), proposals, history.value)
    assert validate_run(run) == []


def test_bridge_replays_decisions_identically():
    pattern = FailurePattern(3, {1: 12})
    proposals = {0: "a", 1: "b", 2: "c"}
    result, history = live_run(
        QuorumMR(),
        PairedDetector(Omega(), Sigma("pivot")),
        pattern,
        proposals,
        seed=6,
    )
    run = pure_run_from_live(result, QuorumMR(), proposals, history.value)
    sim = run.simulator()
    sim.run_schedule(run.schedule, run.times)
    assert sim.decided_pids() == result.decisions
