"""Batch/serial trace-equivalence oracle for ``repro.kernel.batch``.

The batch engine's whole contract is *bit-identity*: a fast lane must
reproduce exactly what the interpreted ``System.run()`` produces for the
same configuration and seed — the full step stream (schedule, delivered
messages, detector values, sends), the decisions with their times, the
query log and every counter.  These tests enforce that contract over
hand-picked corner configurations, the chaos fuzzer's own case space
(via hypothesis), both control-plane implementations (numpy and pure
python), and the fallback tier.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import obs
from repro.consensus.chandra_toueg import ChandraTouegS
from repro.consensus.mostefaoui_raynal import MostefaouiRaynal
from repro.consensus.quorum_mr import QuorumMR
from repro.core.dag import SampleDAG
from repro.detectors import EventuallyPerfect, Omega, PairedDetector, Sigma
from repro.detectors.base import FunctionalHistory, sample_history_cached
from repro.kernel.automaton import AutomatonProcess
from repro.kernel.batch import (
    BatchSystem,
    LaneSpec,
    build_delivery,
    build_scheduler,
    probe_spec,
)
from repro.kernel.failures import DeferredCrashPattern, FailurePattern
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.system import System, all_correct_decided
from tests.strategies import fuzz_cases

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def serial_reference(spec):
    """Run ``spec`` on the interpreted engine — the oracle's ground truth."""
    if spec.program == "dag-builder":
        from repro.core.sampling import DagBuilder

        processes = {p: DagBuilder() for p in range(spec.pattern.n)}
    else:
        processes = {
            p: AutomatonProcess(spec.automaton, spec.proposals[p])
            for p in range(spec.pattern.n)
        }
    system = System(
        processes,
        spec.pattern,
        spec.history,
        scheduler=build_scheduler(spec.scheduler) if spec.scheduler else None,
        delivery=build_delivery(spec.delivery) if spec.delivery else None,
        seed=spec.seed,
        trace=spec.trace,
    )
    stop = all_correct_decided if spec.stop == "all-correct-decided" else None
    return system.run(
        max_steps=spec.max_steps, stop_when=stop, extra_steps=spec.extra_steps
    )


def canon_payload(payload):
    # SampleDAG has no structural __eq__ (two runs build distinct objects);
    # canonicalize to the sorted node set so DAG payload equality is
    # content equality.
    if isinstance(payload, SampleDAG):
        return tuple(
            sorted((s.pid, s.k, repr(s.d), s.frontier, s.t) for s in payload.nodes())
        )
    return payload


def canon_message(m):
    if m is None:
        return None
    return (m.sender, m.dest, canon_payload(m.payload), m.uid, m.sent_at)


def canon_steps(steps):
    return [
        (
            s.index,
            s.time,
            s.pid,
            canon_message(s.message),
            s.detector_value,
            tuple(canon_message(m) for m in s.sends),
        )
        for s in steps
    ]


def assert_identical(ref, got):
    """Full RunResult equality, strictly stronger than schedule equality."""
    assert [s.pid for s in ref.steps] == [s.pid for s in got.steps]
    assert canon_steps(ref.steps) == canon_steps(got.steps)
    # items() comparisons also pin dict *insertion order*: downstream
    # consumers iterate these dicts, so byte-identity needs it.
    assert list(ref.decisions.items()) == list(got.decisions.items())
    assert list(ref.decision_times.items()) == list(got.decision_times.items())
    assert ref.queried == got.queried
    assert ref.stop_reason == got.stop_reason
    assert ref.final_time == got.final_time
    assert ref.total_steps == got.total_steps
    assert ref.messages_sent == got.messages_sent
    assert ref.messages_delivered == got.messages_delivered
    assert ref.outputs == got.outputs
    assert ref.initial_outputs == got.initial_outputs


PATTERN = FailurePattern(5, {})
PATTERN_CRASH = FailurePattern(5, {1: 40, 4: 0})
PROPS = {p: p % 2 for p in range(5)}
PAIRED = PairedDetector(Omega(), Sigma("pivot"))


def paired_history(pattern, seed):
    return sample_history_cached(PAIRED, pattern, seed)


def corner_specs():
    """One spec per row of the capability matrix, plus stop/trace corners."""
    specs = []
    for seed in (0, 3):
        h = paired_history(PATTERN, seed)
        hc = paired_history(PATTERN_CRASH, seed)
        om = sample_history_cached(Omega(), PATTERN_CRASH, seed)
        specs += [
            # Specialized quorum-MR engine, both trace modes.
            LaneSpec(PATTERN, h, seed, 400, automaton=QuorumMR(),
                     proposals=PROPS, trace="full"),
            LaneSpec(PATTERN, h, seed, 4000, automaton=QuorumMR(),
                     proposals=PROPS, trace="metrics",
                     stop="all-correct-decided"),
            # Crashes + stop condition + extra steps.
            LaneSpec(PATTERN_CRASH, hc, seed, 4000, automaton=QuorumMR(),
                     proposals=PROPS, trace="full",
                     stop="all-correct-decided", extra_steps=13),
            # Every fast scheduler/delivery pairing.
            LaneSpec(PATTERN_CRASH, hc, seed, 400, automaton=QuorumMR(),
                     proposals=PROPS, scheduler=("round-robin",),
                     delivery=("oldest-first",), trace="full"),
            LaneSpec(PATTERN, h, seed, 400, automaton=QuorumMR(),
                     proposals=PROPS,
                     scheduler=("weighted",
                                ((0, 3.0), (1, 1.0), (2, 1.0), (3, 1.0),
                                 (4, 0.5)), 128),
                     delivery=("per-sender-fifo", 0.2, 60), trace="full"),
            LaneSpec(PATTERN, h, seed, 400, automaton=QuorumMR(),
                     proposals=PROPS, scheduler=("random-fair", 16),
                     delivery=("fair-random", 0.4, 20), trace="full"),
            # Generic automaton engine (majority MR over bare Omega).
            LaneSpec(PATTERN_CRASH, om, seed, 600,
                     automaton=MostefaouiRaynal(), proposals=PROPS,
                     trace="full", stop="all-correct-decided"),
            # DAG sampling lanes, with and without coalescing.
            LaneSpec(PATTERN_CRASH, hc, seed, 300, program="dag-builder",
                     delivery=("coalescing",), trace="full"),
            LaneSpec(PATTERN, h, seed, 200, program="dag-builder",
                     trace="full"),
        ]
    return specs


class TestCornerMatrix:
    def test_every_supported_config_is_bit_identical(self):
        specs = corner_specs()
        batch = BatchSystem(specs)
        assert all(mode == "fast" for mode in batch.lane_modes())
        results = batch.run()
        for spec, got in zip(specs, results):
            assert_identical(serial_reference(spec), got)

    def test_pure_python_control_plane_matches_numpy(self):
        specs = corner_specs()[:6]
        with_np = BatchSystem(specs).run()
        without = BatchSystem(specs, use_numpy=False).run()
        for a, b in zip(with_np, without):
            assert canon_steps(a.steps) == canon_steps(b.steps)
            assert a.decisions == b.decisions
            assert a.queried == b.queried

    def test_zero_budget_and_empty_correct_set_corners(self):
        h = paired_history(PATTERN, 0)
        zero = LaneSpec(PATTERN, h, 0, 0, automaton=QuorumMR(),
                        proposals=PROPS, trace="full")
        all_faulty = FailurePattern(3, {0: 10, 1: 10, 2: 10})
        hf = paired_history(all_faulty, 1)
        crashed = LaneSpec(all_faulty, hf, 1, 500, automaton=QuorumMR(),
                           proposals={0: 0, 1: 1, 2: 0}, trace="full",
                           stop="all-correct-decided")
        for spec in (zero, crashed):
            got = BatchSystem([spec]).run()[0]
            assert_identical(serial_reference(spec), got)

    def test_lanes_retire_independently(self):
        # Different budgets per lane: early lanes must not perturb the
        # long one and results come back in spec order.
        specs = [
            LaneSpec(PATTERN, paired_history(PATTERN, s), s, steps,
                     automaton=QuorumMR(), proposals=PROPS, trace="full")
            for s, steps in ((0, 50), (1, 700), (2, 120))
        ]
        results = BatchSystem(specs, slice_ticks=32).run()
        for spec, got in zip(specs, results):
            assert_identical(serial_reference(spec), got)


class TestHypothesisOracle:
    @SETTINGS
    @given(data=st.data())
    def test_fuzz_case_space_is_bit_identical(self, data):
        """Lanes drawn from the chaos fuzzer's own case space reproduce the
        interpreted engine exactly — whichever path the probe picks."""
        case = data.draw(fuzz_cases(max_steps=400))
        pattern = FailurePattern(case.n, dict(case.crash_times))
        proposals = dict(case.proposals)
        if data.draw(st.booleans(), label="quorum_algo"):
            automaton = QuorumMR()
            detector = PairedDetector(Omega(), Sigma("pivot"))
        else:
            automaton = MostefaouiRaynal()
            detector = Omega()
        history = sample_history_cached(detector, pattern, case.run_seed())
        spec = LaneSpec(
            pattern,
            history,
            case.run_seed(),
            min(case.max_steps, 400),
            automaton=automaton,
            proposals=proposals,
            scheduler=case.scheduler,
            delivery=case.delivery,
            trace=data.draw(st.sampled_from(["full", "metrics"])),
            stop=data.draw(st.sampled_from([None, "all-correct-decided"])),
        )
        got = BatchSystem([spec]).run()[0]
        assert_identical(serial_reference(spec), got)

    @SETTINGS
    @given(data=st.data())
    def test_lane_results_do_not_depend_on_batch_packing(self, data):
        """A lane's result is identical whether it runs alone or packed
        with other lanes — lanes are genuinely independent."""
        seeds = data.draw(
            st.lists(st.integers(0, 10**6), min_size=2, max_size=5, unique=True)
        )
        specs = [
            LaneSpec(PATTERN, paired_history(PATTERN, s), s, 250,
                     automaton=QuorumMR(), proposals=PROPS, trace="full")
            for s in seeds
        ]
        packed = BatchSystem(specs, slice_ticks=17).run()
        for spec, got in zip(specs, packed):
            alone = BatchSystem([spec]).run()[0]
            assert canon_steps(alone.steps) == canon_steps(got.steps)
            assert alone.decisions == got.decisions


class TestCapabilityProbeAndFallback:
    def _spec(self, **overrides):
        base = dict(
            pattern=PATTERN,
            history=paired_history(PATTERN, 2),
            seed=2,
            max_steps=300,
            automaton=QuorumMR(),
            proposals=PROPS,
            trace="full",
        )
        base.update(overrides)
        return LaneSpec(**base)

    def test_supported_probe_is_none(self):
        assert probe_spec(self._spec()) is None

    def test_scripted_scheduler_falls_back_and_matches(self):
        spec = self._spec(
            scheduler=("scripted", (0, 1, 2, 3, 4) * 8, ("random-fair", 64))
        )
        assert probe_spec(spec) == "scheduler"
        batch = BatchSystem([spec])
        assert batch.lane_modes() == ["fallback:scheduler"]
        assert batch.stats["fallback_reasons"] == {"scheduler": 1}
        assert_identical(serial_reference(spec), batch.run()[0])

    def test_deferred_crash_pattern_falls_back(self):
        deferred = DeferredCrashPattern(5, {4: 30})
        history = PAIRED.sample_history(deferred, random.Random(2))
        spec = LaneSpec(deferred, history, 2, 200, automaton=QuorumMR(),
                        proposals=PROPS, trace="full")
        assert probe_spec(spec) == "pattern"
        batch = BatchSystem([spec])
        assert batch.lane_modes() == ["fallback:pattern"]
        # Deferred patterns are mutable; a fresh one keeps the reference run
        # independent of the fallback lane's own crash bookkeeping.
        ref_spec = LaneSpec(
            DeferredCrashPattern(5, {4: 30}),
            history, 2, 200, automaton=QuorumMR(), proposals=PROPS,
            trace="full",
        )
        got = batch.run()[0]
        ref = serial_reference(ref_spec)
        assert canon_steps(ref.steps) == canon_steps(got.steps)
        assert ref.decisions == got.decisions

    def test_functional_history_falls_back(self):
        history = FunctionalHistory(lambda p, t: 0)
        spec = LaneSpec(PATTERN, history, 1, 150, automaton=MostefaouiRaynal(),
                        proposals=PROPS, trace="full")
        assert probe_spec(spec) == "history"
        assert_identical(serial_reference(spec), BatchSystem([spec]).run()[0])

    def test_coroutine_automaton_falls_back(self):
        # ChandraTouegS is automaton-shaped, but a processes_factory lane
        # (arbitrary coroutine processes) must take the interpreted path.
        pattern = FailurePattern(3, {})
        detector = EventuallyPerfect()
        history = sample_history_cached(detector, pattern, 9)
        auto = ChandraTouegS()

        def factory():
            return {p: AutomatonProcess(auto, p % 2) for p in range(3)}

        spec = LaneSpec(pattern, history, 9, 200, processes_factory=factory,
                        trace="full")
        assert probe_spec(spec) == "processes"
        got = BatchSystem([spec]).run()[0]
        processes = factory()
        ref = System(processes, pattern, history, seed=9, trace="full").run(
            max_steps=200
        )
        assert canon_steps(ref.steps) == canon_steps(got.steps)

    def test_obs_enabled_forces_fallback_with_counter(self):
        spec = self._spec()
        obs.enable(fresh_metrics=True)
        try:
            assert probe_spec(spec) == "obs-enabled"
            batch = BatchSystem([spec])
            assert batch.lane_modes() == ["fallback:obs-enabled"]
            assert obs.metrics().snapshot()["counters"]["batch.fallback"] == 1
            batch.run()
        finally:
            obs.disable()

    def test_instances_are_rejected(self):
        with pytest.raises(ValueError, match="spec tuple"):
            self._spec(scheduler=RoundRobinScheduler())
        with pytest.raises(ValueError, match="spec tuple"):
            self._spec(delivery=build_delivery(("oldest-first",)))

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="exactly one"):
            LaneSpec(PATTERN, paired_history(PATTERN, 0), 0, 10)
        with pytest.raises(ValueError, match="proposals"):
            LaneSpec(PATTERN, paired_history(PATTERN, 0), 0, 10,
                     automaton=QuorumMR())
        with pytest.raises(ValueError, match="stop"):
            self._spec(stop="whenever")
        with pytest.raises(ValueError, match="trace"):
            self._spec(trace="everything")

    def test_stats_and_control_vectors(self):
        fast = self._spec()
        slow = self._spec(
            scheduler=("scripted", (0, 1), ("random-fair", 64))
        )
        batch = BatchSystem([fast, slow])
        assert batch.stats["lanes"] == 2
        assert batch.stats["fast"] == 1
        assert batch.stats["fallback"] == 1
        results = batch.run()
        assert batch.stats["steps"] == sum(r.total_steps for r in results)
        vectors = batch.control_vectors()
        assert list(vectors["time"]) == [r.final_time for r in results]
        assert list(vectors["decided"]) == [len(r.decisions) for r in results]


class TestWaveStats:
    """The per-wave occupancy/retirement curves ``run()`` records."""

    def test_retirement_curve_accounts_for_every_fast_lane(self):
        batch = BatchSystem(corner_specs())
        batch.run()
        stats = batch.stats
        occupancy, retired = stats["wave_occupancy"], stats["wave_retired"]
        assert stats["waves"] == len(occupancy) == len(retired) >= 1
        assert occupancy[0] == stats["fast"]
        assert sum(retired) == stats["fast"]
        # Lanes only ever leave the batch: each wave's exits are exactly
        # the next wave's shrinkage.
        for i in range(len(occupancy) - 1):
            assert occupancy[i] - retired[i] == occupancy[i + 1]

    def test_curves_are_deterministic(self):
        specs = corner_specs()[:6]
        a, b = BatchSystem(specs), BatchSystem(specs)
        a.run()
        b.run()
        assert a.stats["wave_occupancy"] == b.stats["wave_occupancy"]
        assert a.stats["wave_retired"] == b.stats["wave_retired"]

    def test_traced_batch_bit_identical_with_span_and_fallback_events(self):
        specs = corner_specs()[:4]
        ref = BatchSystem(specs).run()
        obs.enable(fresh_metrics=True)
        try:
            batch = BatchSystem(specs)
            got = batch.run()
            records = list(obs.tracer().records)
        finally:
            obs.disable()
        for r, g in zip(ref, got):
            assert canon_steps(r.steps) == canon_steps(g.steps)
            assert r.decisions == g.decisions
        # Tracing demotes every lane, so the batch has no fused waves ...
        assert batch.stats["fallback"] == len(specs)
        assert batch.stats["waves"] == 0
        assert batch.stats["wave_occupancy"] == []
        # ... but the trace names the run and each demoted lane.
        spans = [
            r for r in records
            if r.get("type") == "span" and r["name"] == "batch.run"
        ]
        assert len(spans) == 1
        assert spans[0]["attrs"]["fallback"] == len(specs)
        events = [
            r for r in records
            if r.get("type") == "event" and r["name"] == "batch.fallback"
        ]
        assert [e["attrs"]["lane"] for e in events] == list(range(len(specs)))
        assert {e["attrs"]["reason"] for e in events} == {"obs-enabled"}
