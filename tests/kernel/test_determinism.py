"""Determinism and trace-mode equivalence regressions.

The kernel promises that a ``(configuration, seed)`` pair fully determines a
run, and that ``trace="metrics"`` changes *what is recorded*, never *what is
executed*.  Both properties underpin the sweep driver: parallel sweeps are
only reproducible because every run is a pure function of its arguments, and
sweeps are only cheap because metrics mode is a faithful stand-in.
"""

import random

from repro.consensus.quorum_mr import QuorumMR
from repro.detectors import Omega, PairedDetector, Sigma, clear_history_cache
from repro.harness.runner import run_nuc, run_stack
from repro.kernel.automaton import AutomatonProcess
from repro.kernel.failures import FailurePattern
from repro.kernel.system import System


def _fresh_system(trace: str) -> System:
    pattern = FailurePattern(4, {3: 40})
    detector = PairedDetector(Omega(), Sigma("pivot"))
    history = detector.sample_history(pattern, random.Random(5))
    processes = {p: AutomatonProcess(QuorumMR(), p % 2) for p in range(4)}
    return System(processes, pattern, history, seed=5, trace=trace)


class TestByteIdenticalReruns:
    def test_identical_inputs_identical_step_sequence(self):
        results = []
        for _ in range(2):
            system = _fresh_system("full")
            results.append(system.run(max_steps=600))
        first, second = results
        assert first.steps == second.steps
        assert repr(first.steps) == repr(second.steps)
        assert first.queried == second.queried
        assert first.decisions == second.decisions
        assert first.decision_times == second.decision_times

    def test_runner_reruns_identical(self):
        pattern = FailurePattern(3, {2: 10})
        proposals = {0: 0, 1: 1, 2: 1}
        a = run_nuc(pattern, proposals, seed=7)
        b = run_nuc(pattern, proposals, seed=7)
        assert a.result.steps == b.result.steps
        assert a.result.decisions == b.result.decisions

    def test_history_cache_does_not_change_runs(self):
        pattern = FailurePattern(3, {})
        proposals = {0: 1, 1: 0, 2: 1}
        clear_history_cache()
        cold = run_nuc(pattern, proposals, seed=3)
        warm = run_nuc(pattern, proposals, seed=3)  # history now cached
        assert cold.result.steps == warm.result.steps
        assert cold.result.decisions == warm.result.decisions


class TestTraceModeEquivalence:
    def test_metrics_mode_executes_the_same_run(self):
        full = _fresh_system("full").run(max_steps=600)
        metrics = _fresh_system("metrics").run(max_steps=600)
        assert metrics.steps == []
        assert metrics.queried == {}
        assert metrics.total_steps == full.total_steps
        assert metrics.step_count == full.step_count
        assert metrics.decisions == full.decisions
        assert metrics.decision_times == full.decision_times
        assert metrics.outputs == full.outputs
        assert metrics.initial_outputs == full.initial_outputs
        assert metrics.final_time == full.final_time
        assert metrics.messages_sent == full.messages_sent
        assert metrics.messages_delivered == full.messages_delivered

    def test_runner_outcomes_agree_across_trace_modes(self):
        pattern = FailurePattern(4, {0: 15})
        proposals = {p: p % 2 for p in range(4)}
        for runner in (run_nuc, run_stack):
            full = runner(pattern, proposals, seed=11, trace="full")
            metrics = runner(pattern, proposals, seed=11, trace="metrics")
            assert metrics.result.decisions == full.result.decisions
            assert metrics.result.total_steps == full.result.total_steps
            assert bool(metrics.nonuniform) == bool(full.nonuniform)
            assert metrics.metrics.steps == full.metrics.steps
            assert (
                metrics.metrics.messages_sent == full.metrics.messages_sent
            )

    def test_step_sentinel_is_truthy_and_dataless(self):
        system = _fresh_system("metrics")
        record = system.step()
        assert record  # run loops test records for progress
        assert record.pid == -1 and record.sends == ()

    def test_unknown_trace_mode_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            _ = System(
                {0: AutomatonProcess(QuorumMR(), 0)},
                FailurePattern(1, {}),
                history=lambda p, t: None,
                trace="everything",
            )
