"""History representations: schedules, recordings, adaptive wrappers."""

import pytest

from repro.detectors.base import (
    AdaptiveHistory,
    FunctionalHistory,
    RecordedHistory,
    ScheduleHistory,
)


class TestFunctionalHistory:
    def test_delegates_to_function(self):
        h = FunctionalHistory(lambda p, t: (p, t))
        assert h.value(2, 7) == (2, 7)


class TestScheduleHistory:
    def test_piecewise_constant_lookup(self):
        h = ScheduleHistory({0: [(0, "a"), (5, "b"), (9, "c")]})
        assert h.value(0, 0) == "a"
        assert h.value(0, 4) == "a"
        assert h.value(0, 5) == "b"
        assert h.value(0, 8) == "b"
        assert h.value(0, 100) == "c"

    def test_requires_breakpoint_at_zero(self):
        with pytest.raises(ValueError):
            ScheduleHistory({0: [(3, "late")]})

    def test_unknown_process_raises(self):
        h = ScheduleHistory({0: [(0, "a")]})
        with pytest.raises(KeyError):
            h.value(1, 0)

    def test_breakpoints_sorted_on_construction(self):
        h = ScheduleHistory({0: [(5, "b"), (0, "a")]})
        assert h.breakpoints_of(0) == [(0, "a"), (5, "b")]


class TestRecordedHistory:
    def test_step_function_semantics(self):
        h = RecordedHistory(2, horizon=20)
        h.record(0, 3, "x")
        h.record(0, 8, "y")
        assert h.value(0, 3) == "x"
        assert h.value(0, 7) == "x"
        assert h.value(0, 8) == "y"
        assert h.value(0, 20) == "y"

    def test_initial_value_before_first_record(self):
        h = RecordedHistory(1, horizon=10, initial={0: "init"})
        assert h.value(0, 0) == "init"
        h.record(0, 5, "later")
        assert h.value(0, 4) == "init"

    def test_undefined_early_value_raises(self):
        h = RecordedHistory(1, horizon=10)
        h.record(0, 5, "v")
        with pytest.raises(KeyError):
            h.value(0, 4)

    def test_out_of_order_record_rejected(self):
        h = RecordedHistory(1, horizon=10)
        h.record(0, 5, "v")
        with pytest.raises(ValueError):
            h.record(0, 4, "w")

    def test_same_time_rerecord_later_wins(self):
        h = RecordedHistory(1, horizon=10)
        h.record(0, 5, "first")
        h.record(0, 5, "second")
        assert h.value(0, 5) == "second"

    def test_all_values_window(self):
        h = RecordedHistory(1, horizon=10, initial={0: "i"})
        h.record(0, 2, "a")
        h.record(0, 6, "b")
        assert h.all_values(0) == ["i", "a", "b"]
        assert h.all_values(0, t_from=3) == ["a", "b"]
        assert h.all_values(0, t_from=7) == ["b"]

    def test_final_value_and_last_change(self):
        h = RecordedHistory(1, horizon=10)
        h.record(0, 1, "a")
        h.record(0, 9, "b")
        assert h.final_value(0) == "b"
        assert h.last_change_time(0) == 9


class TestAdaptiveHistory:
    def test_records_queries(self):
        state = {"mode": "early"}
        h = AdaptiveHistory(1, lambda p, t: state["mode"])
        assert h.value(0, 0) == "early"
        state["mode"] = "late"
        assert h.value(0, 5) == "late"
        recorded = h.recorded(horizon=10)
        assert recorded.value(0, 0) == "early"
        assert recorded.value(0, 5) == "late"
        assert recorded.value(0, 10) == "late"

    def test_recorded_backfills_initial(self):
        h = AdaptiveHistory(2, lambda p, t: f"v{p}")
        h.value(1, 7)  # first query late
        recorded = h.recorded(horizon=10)
        assert recorded.value(1, 0) == "v1"  # initial backfill

    def test_duplicate_time_queries_deduplicated(self):
        h = AdaptiveHistory(1, lambda p, t: "same")
        h.value(0, 3)
        h.value(0, 3)
        recorded = h.recorded(horizon=5)
        assert recorded.events_of(0) == [(3, "same")]
