"""Mutation fuzzing of the property checkers.

The checkers are the oracle for every differential test in the repository,
so they get adversarial treatment: start from generator-produced *valid*
histories, apply a targeted mutation that breaks exactly one property, and
require the corresponding checker to flag it.  A checker that silently
accepts a mutation would quietly hollow out the whole test suite.
"""

import random

import pytest

from repro.detectors.base import ScheduleHistory
from repro.detectors.checkers import (
    check_omega,
    check_sigma,
    check_sigma_nu,
    check_sigma_nu_plus,
)
from repro.detectors.omega import Omega
from repro.detectors.sigma import Sigma
from repro.detectors.sigma_nu import SigmaNu
from repro.detectors.sigma_nu_plus import SigmaNuPlus
from repro.kernel.failures import FailurePattern

HORIZON = 200


def mutate(history: ScheduleHistory, pid: int, changes) -> ScheduleHistory:
    """Rebuild a schedule history with ``pid``'s breakpoints replaced."""
    points = {p: history.breakpoints_of(p) for p in _pids(history)}
    points[pid] = changes
    return ScheduleHistory(points)


def append_late(history: ScheduleHistory, pid: int, value) -> ScheduleHistory:
    """Append a suffix breakpoint near the horizon for ``pid``."""
    points = history.breakpoints_of(pid)
    return mutate(history, pid, points + [(HORIZON - 5, value)])


def _pids(history: ScheduleHistory):
    return list(history._times)  # test-only reach into the representation


@pytest.fixture
def pattern():
    return FailurePattern(4, {3: 20})


class TestOmegaMutations:
    def make(self, seed=0):
        pattern = FailurePattern(4, {3: 20})
        history = Omega().sample_history(pattern, random.Random(seed))
        assert check_omega(history, pattern, HORIZON).ok
        return pattern, history

    def test_late_flip_detected(self):
        pattern, history = self.make()
        correct = sorted(pattern.correct)
        leader = history.value(correct[0], HORIZON)
        other = next(p for p in range(4) if p != leader)
        mutated = append_late(history, correct[0], other)
        assert not check_omega(mutated, pattern, HORIZON).ok

    def test_faulty_eventual_leader_detected(self):
        pattern, history = self.make()
        mutated = history
        for p in sorted(pattern.correct):
            mutated = append_late(mutated, p, 3)  # 3 is faulty
        assert not check_omega(mutated, pattern, HORIZON).ok

    def test_one_process_disagreeing_detected(self):
        pattern, history = self.make()
        correct = sorted(pattern.correct)
        leader = history.value(correct[0], HORIZON)
        other = next(p for p in pattern.correct if p != leader)
        mutated = append_late(history, correct[-1], other)
        assert not check_omega(mutated, pattern, HORIZON).ok

    def test_faulty_noise_not_flagged(self):
        pattern, history = self.make()
        mutated = append_late(history, 3, 0)  # faulty process; unconstrained
        assert check_omega(mutated, pattern, HORIZON).ok


class TestSigmaMutations:
    def make(self, seed=1):
        pattern = FailurePattern(4, {3: 20})
        history = Sigma("pivot").sample_history(pattern, random.Random(seed))
        assert check_sigma(history, pattern, HORIZON).ok
        return pattern, history

    def test_disjoint_quorum_detected(self):
        pattern, history = self.make()
        # find a quorum that misses some existing quorum: use the complement
        # of the pivot-bearing quorum at process 0
        q0 = history.value(0, HORIZON)
        disjoint = frozenset(set(range(4)) - set(q0)) or frozenset({3})
        mutated = append_late(history, 1, disjoint)
        assert not check_sigma(mutated, pattern, HORIZON).ok

    def test_empty_quorum_detected(self):
        pattern, history = self.make()
        mutated = append_late(history, 2, frozenset())
        assert not check_sigma(mutated, pattern, HORIZON).ok

    def test_faulty_member_at_horizon_detected(self):
        pattern, history = self.make()
        correct = sorted(pattern.correct)
        tainted = history.value(correct[0], HORIZON) | {3}
        mutated = append_late(history, correct[0], tainted)
        result = check_sigma(mutated, pattern, HORIZON)
        assert not result.ok
        assert any("completeness" in v for v in result.violations)

    def test_mid_run_faulty_member_tolerated(self):
        """Completeness is eventual: faulty members *before* stabilization
        are fine; the checker must not over-flag."""
        pattern, history = self.make()
        points = history.breakpoints_of(0)
        early = [(0, frozenset(range(4)))] + [
            (t, v) for t, v in points if t > 0
        ]
        mutated = mutate(history, 0, early)
        assert check_sigma(mutated, pattern, HORIZON).ok


class TestSigmaNuMutations:
    def make(self, seed=2):
        pattern = FailurePattern(4, {3: 20})
        history = SigmaNu("selfish").sample_history(pattern, random.Random(seed))
        assert check_sigma_nu(history, pattern, HORIZON).ok
        return pattern, history

    def test_correct_disjointness_detected(self):
        pattern, history = self.make()
        correct = sorted(pattern.correct)
        q = history.value(correct[0], HORIZON)
        disjoint = frozenset(set(range(4)) - set(q))
        if not disjoint:
            pytest.skip("quorum covers everyone; nothing disjoint to inject")
        mutated = append_late(history, correct[1], frozenset(disjoint))
        assert not check_sigma_nu(mutated, pattern, HORIZON).ok

    def test_faulty_disjointness_tolerated(self):
        pattern, history = self.make()
        mutated = append_late(history, 3, frozenset({3}))
        assert check_sigma_nu(mutated, pattern, HORIZON).ok

    def test_completeness_mutation_detected(self):
        pattern, history = self.make()
        correct = sorted(pattern.correct)
        tainted = history.value(correct[0], HORIZON) | {3}
        mutated = append_late(history, correct[0], tainted)
        assert not check_sigma_nu(mutated, pattern, HORIZON).ok


class TestSigmaNuPlusMutations:
    def make(self, seed=3):
        pattern = FailurePattern(4, {2: 15, 3: 20})
        history = SigmaNuPlus("doomed").sample_history(
            pattern, random.Random(seed)
        )
        assert check_sigma_nu_plus(history, pattern, HORIZON).ok
        return pattern, history

    def test_self_exclusion_detected(self):
        pattern, history = self.make()
        correct = sorted(pattern.correct)
        p = correct[0]
        without_self = frozenset(
            set(history.value(p, HORIZON)) - {p}
        ) or frozenset({correct[1]})
        mutated = append_late(history, p, without_self)
        result = check_sigma_nu_plus(mutated, pattern, HORIZON)
        assert not result.ok
        assert any("self-inclusion" in v for v in result.violations)

    def test_conditional_nonintersection_mutation_detected(self):
        """Give a faulty process a quorum that misses a correct quorum while
        containing a correct member: must be flagged."""
        pattern, history = self.make()
        correct = sorted(pattern.correct)
        q_correct = history.value(correct[0], HORIZON)
        outside_correct = [p for p in correct if p not in q_correct]
        if not outside_correct:
            pytest.skip("correct quorum covers all correct processes")
        bad = frozenset({2, outside_correct[0]})
        mutated = append_late(history, 2, bad)
        result = check_sigma_nu_plus(mutated, pattern, HORIZON)
        assert not result.ok

    def test_all_faulty_disjoint_quorum_tolerated(self):
        pattern, history = self.make()
        mutated = append_late(history, 3, frozenset({2, 3}))
        assert check_sigma_nu_plus(mutated, pattern, HORIZON).ok


@pytest.mark.parametrize("seed", range(5))
def test_random_cross_contamination(seed):
    """Swapping a random correct process's suffix for a random subset either
    keeps the Sigma^nu property or is flagged — and the checker's verdict
    matches a brute-force re-evaluation of the definition."""
    rng = random.Random(seed)
    pattern = FailurePattern(4, {3: 20})
    history = SigmaNu("junk").sample_history(pattern, rng)
    correct = sorted(pattern.correct)
    victim = rng.choice(correct)
    subset = frozenset(
        p for p in range(4) if rng.random() < 0.5
    )
    mutated = append_late(history, victim, subset)
    verdict = check_sigma_nu(mutated, pattern, HORIZON)

    # brute force the nonuniform intersection + completeness definition
    def values(p):
        return [v for _, v in mutated.breakpoints_of(p) if _ <= HORIZON]

    inter_ok = all(
        bool(set(a) & set(b))
        for p in correct
        for q in correct
        for a in values(p)
        for b in values(q)
    )
    comp_ok = all(
        set(mutated.value(p, HORIZON)) <= set(pattern.correct) for p in correct
    )
    assert verdict.ok == (inter_ok and comp_ok)
