"""The perfect and eventually-perfect detectors used as strong baselines."""

import random

from repro.detectors.perfect import EventuallyPerfect, Perfect
from repro.kernel.failures import FailurePattern


class TestPerfect:
    def test_no_suspicion_before_crash(self):
        """Strong accuracy: nobody is suspected before crashing."""
        pattern = FailurePattern(4, {2: 10})
        h = Perfect(lag=3).sample_history(pattern, random.Random(0))
        for p in range(4):
            for t in range(10 + 3):
                assert 2 not in h.value(p, t) or t >= 13
                assert not (h.value(p, t) - pattern.crashed_at(t))

    def test_suspected_after_lag(self):
        """Strong completeness: crashed processes eventually suspected."""
        pattern = FailurePattern(3, {0: 5, 1: 8})
        h = Perfect(lag=2).sample_history(pattern, random.Random(0))
        assert h.value(2, 7) == {0}
        assert h.value(2, 10) == {0, 1}

    def test_zero_lag_immediate(self):
        pattern = FailurePattern(2, {0: 4})
        h = Perfect(lag=0).sample_history(pattern, random.Random(0))
        assert 0 in h.value(1, 4)

    def test_rejects_negative_lag(self):
        import pytest

        with pytest.raises(ValueError):
            Perfect(lag=-1)


class TestEventuallyPerfect:
    def test_eventually_exactly_crashed(self):
        pattern = FailurePattern(3, {1: 5})
        h = EventuallyPerfect(stabilization_slack=10).sample_history(
            pattern, random.Random(1)
        )
        # after stabilization (at most 5+10) the suspect set is exact
        for t in range(16, 40):
            assert h.value(0, t) == {1}

    def test_noise_possible_before_stabilization(self):
        pattern = FailurePattern(4)
        found_noise = False
        for seed in range(20):
            h = EventuallyPerfect(noise_prob=0.5).sample_history(
                pattern, random.Random(seed)
            )
            if any(h.value(0, t) for t in range(5)):
                found_noise = True
                break
        assert found_noise

    def test_deterministic_per_seed(self):
        pattern = FailurePattern(3, {0: 3})
        h1 = EventuallyPerfect().sample_history(pattern, random.Random(9))
        h2 = EventuallyPerfect().sample_history(pattern, random.Random(9))
        assert all(
            h1.value(p, t) == h2.value(p, t) for p in range(3) for t in range(30)
        )
