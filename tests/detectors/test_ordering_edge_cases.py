"""Edge cases for the ⪯-preorder machinery: degenerate inputs."""

import pytest

from repro.detectors.ordering import (
    Demonstration,
    demonstrate,
    identity_transformation,
    projection_transformation,
    sigma_nu_weaker_than_sigma,
)
from repro.kernel.failures import FailurePattern


class TestVacuousDemonstrations:
    def test_empty_pattern_list_is_vacuously_valid(self):
        demo = demonstrate(sigma_nu_weaker_than_sigma(), patterns=[])
        assert demo.runs == 0
        assert demo.all_valid
        assert demo.checks == []

    def test_repr_survives_zero_runs(self):
        demo = Demonstration(
            transformation="t", runs=0, all_valid=True, checks=[]
        )
        assert "ok" in repr(demo)


class TestSingleProcessSystems:
    def test_identity_over_single_process(self):
        """n = 1: the pivot quorum is {0} and the identity transformation
        still witnesses Σν ⪯ Σ."""
        demo = demonstrate(
            sigma_nu_weaker_than_sigma(),
            patterns=[FailurePattern(1, {})],
        )
        assert demo.runs == 1
        assert demo.all_valid, demo.checks[0].violations

    def test_projection_over_single_process(self):
        from repro.detectors import Omega, PairedDetector, SigmaNu, check_omega

        transformation = projection_transformation(
            PairedDetector(Omega(), SigmaNu()),
            index=0,
            target_checker=check_omega,
        )
        demo = demonstrate(
            transformation, patterns=[FailurePattern(1, {})]
        )
        assert demo.all_valid, demo.checks[0].violations


class TestEmptyHistorySuffixes:
    """Patterns whose correct set is empty (everyone crashes): every
    detector obligation is over correct processes, so the emitted history's
    suffix is empty and the checks must pass vacuously — not crash."""

    def test_all_crashed_pattern_is_vacuous(self):
        pattern = FailurePattern(2, {0: 0, 1: 0})
        demo = demonstrate(
            sigma_nu_weaker_than_sigma(), patterns=[pattern], max_steps=50
        )
        assert demo.runs == 1
        assert demo.all_valid, demo.checks[0].violations

    def test_transform_function_is_applied(self):
        from repro.detectors import Sigma, check_sigma_nu

        transformation = identity_transformation(
            Sigma("pivot"),
            check_sigma_nu,
            transform=lambda quorum: frozenset(quorum),
        )
        demo = demonstrate(
            transformation, patterns=[FailurePattern(2, {})]
        )
        assert demo.all_valid

    def test_recorded_history_undefined_before_first_output(self):
        """An emitted history with no outputs has no value anywhere — the
        KeyError contract the checkers' vacuity relies on."""
        from repro.detectors.base import RecordedHistory

        empty = RecordedHistory(1, horizon=10)
        with pytest.raises(KeyError):
            empty.value(0, 5)
