"""Generator/checker roundtrips: every sampled history is valid.

These differential tests pin down both sides at once — a bug in a generator
or in a checker shows up as a roundtrip failure (unless both are wrong the
same way, which the hand-built cases in test_checkers.py guard against).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.detectors.base import stabilization_horizon
from repro.detectors.checkers import (
    check_omega,
    check_sigma,
    check_sigma_nu,
    check_sigma_nu_plus,
)
from repro.detectors.omega import Omega, constant_omega
from repro.detectors.paired import PairedDetector, PairedHistory
from repro.detectors.sigma import Sigma
from repro.detectors.sigma_nu import SigmaNu
from repro.detectors.sigma_nu_plus import SigmaNuPlus
from repro.kernel.failures import FailurePattern

HORIZON = 250


def patterns_for(n, seed, count=6):
    rng = random.Random(seed)
    result = [FailurePattern.no_failures(n)]
    for _ in range(count - 1):
        crashed = rng.sample(range(n), rng.randint(0, n - 1))
        result.append(FailurePattern(n, {p: rng.randint(0, 40) for p in crashed}))
    return result


@pytest.mark.parametrize("n", [2, 3, 5, 7])
@pytest.mark.parametrize("seed", [0, 1])
class TestOmegaGenerator:
    def test_sampled_histories_valid(self, n, seed):
        for pattern in patterns_for(n, seed):
            h = Omega().sample_history(pattern, random.Random(seed))
            assert check_omega(h, pattern, HORIZON).ok

    def test_forced_leader_respected(self, n, seed):
        pattern = FailurePattern(n, {n - 1: 5}) if n > 1 else None
        h = Omega(leader=0).sample_history(pattern, random.Random(seed))
        result = check_omega(h, pattern, HORIZON)
        assert result.ok and result.details["leader"] == 0


class TestOmegaEdgeCases:
    def test_forced_faulty_leader_rejected(self):
        pattern = FailurePattern(3, {0: 5})
        with pytest.raises(ValueError):
            Omega(leader=0).sample_history(pattern, random.Random(0))

    def test_constant_omega_helper(self):
        pattern = FailurePattern.no_failures(3)
        h = constant_omega(pattern, leader=1)
        assert check_omega(h, pattern, HORIZON).ok

    def test_no_correct_process_yields_some_history(self):
        pattern = FailurePattern.initial_crashes(2, [0, 1])
        h = Omega().sample_history(pattern, random.Random(0))
        assert check_omega(h, pattern, HORIZON).ok  # vacuous


@pytest.mark.parametrize("strategy", ["pivot", "full", "majority"])
class TestSigmaGenerator:
    def test_sampled_histories_valid(self, strategy):
        for n in (2, 4, 6):
            for pattern in patterns_for(n, seed=strategy):
                h = Sigma(strategy).sample_history(pattern, random.Random(1))
                result = check_sigma(h, pattern, HORIZON)
                assert result.ok, (n, pattern, result.violations[:2])

    def test_sigma_histories_also_sigma_nu(self, strategy):
        pattern = FailurePattern(5, {0: 3, 4: 20})
        h = Sigma(strategy).sample_history(pattern, random.Random(2))
        assert check_sigma_nu(h, pattern, HORIZON).ok


class TestSigmaEdgeCases:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            Sigma("bogus")

    def test_majority_falls_back_when_correct_minority(self):
        pattern = FailurePattern(4, {0: 1, 1: 2, 2: 3})  # one correct
        h = Sigma("majority").sample_history(pattern, random.Random(3))
        assert check_sigma(h, pattern, HORIZON).ok

    def test_forced_pivot(self):
        pattern = FailurePattern(4, {3: 5})
        h = Sigma("pivot", pivot=1).sample_history(pattern, random.Random(0))
        for p in range(4):
            assert 1 in h.value(p, 0)


@pytest.mark.parametrize("style", ["selfish", "junk", "obedient"])
class TestSigmaNuGenerator:
    def test_sampled_histories_valid(self, style):
        for n in (2, 3, 5):
            for pattern in patterns_for(n, seed=style):
                h = SigmaNu(style).sample_history(pattern, random.Random(4))
                result = check_sigma_nu(h, pattern, HORIZON)
                assert result.ok, (n, pattern, result.violations[:2])

    def test_selfish_faulty_break_full_sigma(self, style):
        """With crashes present, 'selfish' histories separate Sigma^nu from
        Sigma (the faulty singleton need not intersect anything)."""
        if style != "selfish":
            pytest.skip("only the selfish style guarantees a Sigma violation")
        pattern = FailurePattern(3, {2: 30})
        h = SigmaNu("selfish", pivot=0).sample_history(pattern, random.Random(5))
        assert check_sigma_nu(h, pattern, HORIZON).ok
        assert not check_sigma(h, pattern, HORIZON).ok


@pytest.mark.parametrize("mode", ["doomed", "cooperative", "mixed"])
class TestSigmaNuPlusGenerator:
    def test_sampled_histories_valid(self, mode):
        for n in (2, 3, 5):
            for pattern in patterns_for(n, seed=mode):
                h = SigmaNuPlus(mode).sample_history(pattern, random.Random(6))
                result = check_sigma_nu_plus(h, pattern, HORIZON)
                assert result.ok, (n, pattern, result.violations[:2])


class TestPairedDetector:
    def test_pairs_sample_componentwise(self):
        pattern = FailurePattern(4, {1: 10})
        detector = PairedDetector(Omega(), SigmaNuPlus())
        h = detector.sample_history(pattern, random.Random(7))
        assert isinstance(h, PairedHistory)
        leader, quorum = h.value(0, 50)
        assert isinstance(leader, int)
        assert 0 in quorum  # self-inclusion of the Sigma^nu+ component

    def test_requires_two_components(self):
        with pytest.raises(ValueError):
            PairedDetector(Omega())

    def test_name_composes(self):
        d = PairedDetector(Omega(), Sigma())
        assert d.name == "(Omega, Sigma)"

    def test_triple_product(self):
        pattern = FailurePattern.no_failures(3)
        d = PairedDetector(Omega(), Sigma(), SigmaNu())
        value = d.sample_history(pattern, random.Random(0)).value(0, 0)
        assert len(value) == 3


class TestStabilizationHorizon:
    def test_tracks_last_crash(self):
        pattern = FailurePattern(3, {0: 7, 1: 20})
        assert stabilization_horizon(pattern) == 20
        assert stabilization_horizon(pattern, slack=5) == 25


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 6),
    seed=st.integers(0, 10**6),
    crash_seed=st.integers(0, 10**6),
)
def test_property_all_generators_roundtrip(n, seed, crash_seed):
    """Hypothesis: any sampled pattern x any generator yields a history its
    own checker accepts over a post-stabilization horizon."""
    rng = random.Random(crash_seed)
    crashed = rng.sample(range(n), rng.randint(0, n - 1))
    pattern = FailurePattern(n, {p: rng.randint(0, 30) for p in crashed})
    cases = [
        (Omega(), check_omega),
        (Sigma("pivot"), check_sigma),
        (SigmaNu("junk"), check_sigma_nu),
        (SigmaNuPlus("mixed"), check_sigma_nu_plus),
    ]
    for detector, checker in cases:
        history = detector.sample_history(pattern, random.Random(seed))
        result = checker(history, pattern, HORIZON)
        assert result.ok, (detector.name, pattern, result.violations[:2])
