"""Reconstructing O_R (Section 2.9) from live run output logs."""

from repro.detectors.emulated import recorded_output_history
from repro.detectors.base import FunctionalHistory
from repro.kernel.automaton import Process
from repro.kernel.failures import FailurePattern
from repro.kernel.system import System


class OutputEveryStep(Process):
    def initial_output(self):
        return "init"

    def program(self, ctx):
        while True:
            yield from ctx.take_step()
            ctx.output(("step", ctx.pid, ctx.step_count))


class OutputOnce(Process):
    def initial_output(self):
        return frozenset({0, 1})

    def program(self, ctx):
        yield from ctx.take_step()
        ctx.output(frozenset({ctx.pid}))
        while True:
            yield from ctx.take_step()


def run(processes, n=2, steps=30, crashes=None):
    pattern = FailurePattern(n, crashes or {})
    system = System(
        processes, pattern, FunctionalHistory(lambda p, t: None), seed=3
    )
    return system.run(max_steps=steps)


class TestRecordedOutputHistory:
    def test_initial_value_holds_until_first_assignment(self):
        result = run({0: OutputOnce(), 1: OutputOnce()})
        history = recorded_output_history(result)
        first_step_of_0 = result.steps_of(0)[0].time
        if first_step_of_0 > 0:
            assert history.value(0, 0) == frozenset({0, 1})
        assert history.value(0, first_step_of_0) == frozenset({0})

    def test_last_value_frozen_after_crash(self):
        result = run(
            {0: OutputEveryStep(), 1: OutputEveryStep()},
            steps=40,
            crashes={0: 10},
        )
        history = recorded_output_history(result)
        last = history.value(0, 9)
        assert history.value(0, 39) == last

    def test_horizon_defaults_to_final_time(self):
        result = run({0: OutputEveryStep(), 1: OutputEveryStep()}, steps=25)
        history = recorded_output_history(result)
        assert history.horizon == result.final_time - 1

    def test_repeated_equal_assignments_collapse(self):
        class Constant(Process):
            def initial_output(self):
                return "c"

            def program(self, ctx):
                while True:
                    yield from ctx.take_step()
                    ctx.output("c")

        result = run({0: Constant(), 1: Constant()}, steps=20)
        history = recorded_output_history(result)
        assert history.events_of(0) == []
        assert history.value(0, 19) == "c"
