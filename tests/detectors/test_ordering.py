"""The ⪯ preorder witnesses (Section 2.9) and the paper's lattice facts."""

import pytest

from repro.detectors.ordering import (
    demonstrate,
    identity_transformation,
    omega_weaker_than_pair,
    projection_transformation,
    sigma_nu_plus_weaker_than_sigma_nu,
    sigma_nu_weaker_than_sigma,
    sigma_nu_weaker_than_sigma_nu_plus,
)
from repro.kernel.failures import FailurePattern


def patterns():
    return [
        FailurePattern(3, {}),
        FailurePattern(3, {2: 15}),
        FailurePattern(4, {0: 5, 1: 20}),
    ]


class TestTrivialTransformations:
    def test_sigma_nu_weaker_than_sigma(self):
        demo = demonstrate(sigma_nu_weaker_than_sigma(), patterns(), seed=1)
        assert demo.all_valid, demo.checks

    def test_sigma_nu_weaker_than_sigma_nu_plus(self):
        demo = demonstrate(
            sigma_nu_weaker_than_sigma_nu_plus(), patterns(), seed=2
        )
        assert demo.all_valid, demo.checks

    def test_omega_projection_from_pair(self):
        demo = demonstrate(omega_weaker_than_pair(), patterns(), seed=3)
        assert demo.all_valid, demo.checks


class TestSubstantialTransformation:
    def test_sigma_nu_plus_weaker_than_sigma_nu(self):
        demo = demonstrate(
            sigma_nu_plus_weaker_than_sigma_nu(3), patterns(), seed=4
        )
        assert demo.all_valid, demo.checks


class TestNegativeWitness:
    def test_identity_does_not_witness_sigma_from_sigma_nu(self):
        """Σ ⪯̸ Σν via identity: a Σν history with selfish faulty quorums
        fails the Σ checker — the gap the whole paper is about.  (The
        impossibility of *any* transformation for t >= n/2 is the adversary
        test's job; this only shows the trivial one fails.)"""
        from repro.detectors.checkers import check_sigma
        from repro.detectors.sigma_nu import SigmaNu

        bad = identity_transformation(
            SigmaNu("selfish"), check_sigma, name="bogus Sigma <= Sigma^nu"
        )
        crashy = [FailurePattern(3, {2: 10})]
        demo = demonstrate(bad, crashy, seed=5)
        assert not demo.all_valid

    def test_wrong_projection_component_fails(self):
        from repro.detectors.checkers import check_omega
        from repro.detectors.omega import Omega
        from repro.detectors.paired import PairedDetector
        from repro.detectors.sigma_nu import SigmaNu

        wrong = projection_transformation(
            PairedDetector(Omega(), SigmaNu()),
            index=1,  # the quorum component is not an Omega history
            target_checker=check_omega,
            name="bogus Omega projection",
        )
        demo = demonstrate(wrong, [FailurePattern(3, {})], seed=6)
        assert not demo.all_valid

    def test_demonstration_repr(self):
        demo = demonstrate(omega_weaker_than_pair(), [FailurePattern(2, {})])
        assert "ok" in repr(demo) or "FAILED" in repr(demo)
