"""Property checkers against hand-built valid and invalid histories.

These are the other side of every differential test in the repository, so
they get their own adversarial unit tests: for each detector property, one
history that satisfies it and ones that violate it in each possible way.
"""

from repro.detectors.base import ScheduleHistory
from repro.detectors.checkers import (
    check_omega,
    check_paired,
    check_sigma,
    check_sigma_nu,
    check_sigma_nu_plus,
    project_history,
    segments,
)
from repro.kernel.failures import FailurePattern

H = 100  # horizon used throughout


def hist(mapping):
    return ScheduleHistory(
        {p: points for p, points in mapping.items()}
    )


def const(n, value):
    return ScheduleHistory({p: [(0, value)] for p in range(n)})


class TestSegments:
    def test_schedule_history_segments_clip_to_horizon(self):
        h = hist({0: [(0, "a"), (5, "b"), (200, "c")]})
        assert segments(h, 0, 100) == [(0, "a"), (5, "b")]

    def test_functional_history_run_length_compressed(self):
        from repro.detectors.base import FunctionalHistory

        h = FunctionalHistory(lambda p, t: "x" if t < 3 else "y")
        assert segments(h, 0, 6) == [(0, "x"), (3, "y")]


class TestCheckOmega:
    def test_valid_history_with_noise(self):
        pattern = FailurePattern(3, {2: 10})
        h = hist(
            {
                0: [(0, 2), (4, 1), (12, 0)],
                1: [(0, 1), (12, 0)],
                2: [(0, 2)],
            }
        )
        result = check_omega(h, pattern, H)
        assert result.ok
        assert result.details["leader"] == 0
        assert result.stabilization_time == 12

    def test_disagreeing_leaders_fail(self):
        pattern = FailurePattern.no_failures(2)
        h = hist({0: [(0, 0)], 1: [(0, 1)]})
        result = check_omega(h, pattern, H)
        assert not result.ok
        assert "disagree" in result.violations[0]

    def test_faulty_eventual_leader_fails(self):
        pattern = FailurePattern(3, {2: 5})
        h = const(3, 2)
        result = check_omega(h, pattern, H)
        assert not result.ok
        assert "faulty" in result.violations[0]

    def test_unstabilized_history_fails(self):
        pattern = FailurePattern.no_failures(2)
        h = hist({0: [(0, 0), (H, 1)], 1: [(0, 0)]})
        # process 0 flips to 1 at the horizon: no all-leader suffix
        result = check_omega(h, pattern, H)
        assert not result.ok

    def test_faulty_outputs_unconstrained(self):
        pattern = FailurePattern(3, {2: 0})
        h = hist({0: [(0, 0)], 1: [(0, 0)], 2: [(0, 2)]})
        assert check_omega(h, pattern, H).ok

    def test_vacuous_when_no_correct(self):
        pattern = FailurePattern.initial_crashes(2, [0, 1])
        assert check_omega(const(2, 0), pattern, H).ok


class TestCheckSigma:
    def test_valid_pivot_history(self):
        pattern = FailurePattern(3, {2: 10})
        h = hist(
            {
                0: [(0, frozenset({0, 1, 2})), (20, frozenset({0, 1}))],
                1: [(0, frozenset({1, 0})), (15, frozenset({0, 1}))],
                2: [(0, frozenset({0, 2}))],
            }
        )
        result = check_sigma(h, pattern, H)
        assert result.ok
        assert result.stabilization_time <= 20

    def test_disjoint_quorums_fail_intersection(self):
        pattern = FailurePattern.no_failures(4)
        h = hist(
            {
                0: [(0, frozenset({0, 1}))],
                1: [(0, frozenset({0, 1}))],
                2: [(0, frozenset({2, 3}))],
                3: [(0, frozenset({2, 3}))],
            }
        )
        result = check_sigma(h, pattern, H)
        assert not result.ok
        assert any("intersection" in v for v in result.violations)

    def test_faulty_quorums_also_constrained(self):
        """Sigma's intersection is uniform: faulty outputs count too."""
        pattern = FailurePattern(3, {2: 50})
        h = hist(
            {
                0: [(0, frozenset({0, 1}))],
                1: [(0, frozenset({0, 1}))],
                2: [(0, frozenset({2}))],
            }
        )
        assert not check_sigma(h, pattern, H).ok

    def test_incomplete_history_fails(self):
        pattern = FailurePattern(3, {2: 5})
        h = const(3, frozenset({0, 1, 2}))  # never sheds the faulty member
        result = check_sigma(h, pattern, H)
        assert not result.ok
        assert any("completeness" in v for v in result.violations)

    def test_empty_quorum_fails_self_intersection(self):
        pattern = FailurePattern.no_failures(2)
        h = hist({0: [(0, frozenset())], 1: [(0, frozenset({0, 1}))]})
        assert not check_sigma(h, pattern, H).ok


class TestCheckSigmaNu:
    def test_faulty_junk_quorums_allowed(self):
        """The exact history that fails Sigma passes Sigma^nu."""
        pattern = FailurePattern(3, {2: 50})
        h = hist(
            {
                0: [(0, frozenset({0, 1}))],
                1: [(0, frozenset({0, 1}))],
                2: [(0, frozenset({2}))],
            }
        )
        assert check_sigma_nu(h, pattern, H).ok
        assert not check_sigma(h, pattern, H).ok

    def test_correct_disjointness_still_fails(self):
        pattern = FailurePattern.no_failures(4)
        h = hist(
            {
                0: [(0, frozenset({0, 1}))],
                1: [(0, frozenset({0, 1}))],
                2: [(0, frozenset({2, 3}))],
                3: [(0, frozenset({2, 3}))],
            }
        )
        result = check_sigma_nu(h, pattern, H)
        assert not result.ok
        assert any("nonuniform intersection" in v for v in result.violations)

    def test_completeness_still_required(self):
        pattern = FailurePattern(2, {1: 5})
        h = const(2, frozenset({0, 1}))
        assert not check_sigma_nu(h, pattern, H).ok

    def test_sigma_histories_are_sigma_nu_histories(self):
        """Sigma^nu is weaker than Sigma: any valid Sigma history passes."""
        import random

        from repro.detectors.sigma import Sigma

        pattern = FailurePattern(4, {3: 8})
        for seed in range(10):
            h = Sigma("pivot").sample_history(pattern, random.Random(seed))
            assert check_sigma(h, pattern, H).ok
            assert check_sigma_nu(h, pattern, H).ok


class TestCheckSigmaNuPlus:
    def make_valid(self):
        pattern = FailurePattern(3, {2: 10})
        h = hist(
            {
                0: [(0, frozenset({0, 1, 2})), (15, frozenset({0, 1}))],
                1: [(0, frozenset({0, 1}))],
                2: [(0, frozenset({2}))],
            }
        )
        return pattern, h

    def test_valid_history(self):
        pattern, h = self.make_valid()
        assert check_sigma_nu_plus(h, pattern, H).ok

    def test_self_inclusion_violation(self):
        pattern = FailurePattern.no_failures(2)
        h = hist({0: [(0, frozenset({1}))], 1: [(0, frozenset({0, 1}))]})
        result = check_sigma_nu_plus(h, pattern, H)
        assert not result.ok
        assert any("self-inclusion" in v for v in result.violations)

    def test_conditional_nonintersection_violation(self):
        """A quorum missing a correct quorum must contain only faulty
        processes; here it contains correct process 1."""
        pattern = FailurePattern(4, {3: 10, 2: 10})
        h = hist(
            {
                0: [(0, frozenset({0}))],
                1: [(0, frozenset({0, 1}))],
                2: [(0, frozenset({1, 2}))],  # misses {0}, contains correct 1
                3: [(0, frozenset({3}))],
            }
        )
        result = check_sigma_nu_plus(h, pattern, H)
        assert not result.ok
        assert any("conditional nonintersection" in v for v in result.violations)

    def test_doomed_faulty_quorums_fine(self):
        pattern = FailurePattern(4, {2: 10, 3: 10})
        h = hist(
            {
                0: [(0, frozenset({0, 1}))],
                1: [(0, frozenset({0, 1}))],
                2: [(0, frozenset({2, 3}))],  # disjoint but all-faulty
                3: [(0, frozenset({3}))],
            }
        )
        assert check_sigma_nu_plus(h, pattern, H).ok

    def test_sigma_nu_plus_implies_sigma_nu(self):
        import random

        from repro.detectors.sigma_nu_plus import SigmaNuPlus

        pattern = FailurePattern(4, {0: 6, 3: 9})
        for seed in range(10):
            h = SigmaNuPlus().sample_history(pattern, random.Random(seed))
            assert check_sigma_nu_plus(h, pattern, H).ok
            assert check_sigma_nu(h, pattern, H).ok


class TestPairedProjection:
    def test_projection_extracts_components(self):
        h = const(2, ("L", frozenset({0, 1})))
        omega_view = project_history(h, 0)
        sigma_view = project_history(h, 1)
        assert omega_view.value(0, 5) == "L"
        assert sigma_view.value(1, 5) == frozenset({0, 1})

    def test_check_paired_runs_componentwise(self):
        pattern = FailurePattern.no_failures(2)
        h = const(2, (0, frozenset({0, 1})))
        results = check_paired(h, pattern, H, [check_omega, check_sigma])
        assert all(r.ok for r in results)
        assert [r.detector for r in results] == ["Omega", "Sigma"]
