"""Edge cases for the product detector: arity, projection, caching."""

import random

import pytest

from repro.detectors import (
    Omega,
    PairedDetector,
    PairedHistory,
    Sigma,
    SigmaNu,
    SigmaNuPlus,
    sample_history_cached,
)
from repro.detectors.base import RecordedHistory
from repro.kernel.failures import FailurePattern


class TestArity:
    def test_detector_rejects_fewer_than_two(self):
        with pytest.raises(ValueError):
            PairedDetector(Omega())
        with pytest.raises(ValueError):
            PairedDetector()

    def test_history_rejects_fewer_than_two(self):
        inner = RecordedHistory(1, 10, initial={0: 0})
        with pytest.raises(ValueError):
            PairedHistory([inner])

    def test_triple_product(self):
        pattern = FailurePattern(3, {})
        detector = PairedDetector(Omega(), Sigma(), SigmaNu())
        history = detector.sample_history(pattern, random.Random(0))
        value = history.value(0, 50)
        assert len(value) == 3
        assert value == tuple(
            history.project(i).value(0, 50) for i in range(3)
        )

    def test_name_lists_components(self):
        detector = PairedDetector(Omega(), SigmaNuPlus())
        assert detector.name.startswith("(")
        assert Omega().name in detector.name


class TestSingleProcessSystems:
    """n = 1: the degenerate but legal environment (a quorum is {0},
    the leader is 0, every product projects consistently)."""

    def test_pair_over_single_process(self):
        pattern = FailurePattern(1, {})
        detector = PairedDetector(Omega(), SigmaNu())
        history = detector.sample_history(pattern, random.Random(3))
        for t in (0, 1, 100):
            leader, quorum = history.value(0, t)
            assert leader == 0
            assert quorum == frozenset({0})

    def test_single_process_checkers_accept(self):
        from repro.detectors import check_omega, check_sigma_nu

        pattern = FailurePattern(1, {})
        history = PairedDetector(Omega(), SigmaNu()).sample_history(
            pattern, random.Random(0)
        )
        assert check_omega(history.project(0), pattern, 100).ok
        assert check_sigma_nu(history.project(1), pattern, 100).ok


class TestCacheKey:
    def test_stable_across_instances(self):
        a = PairedDetector(Omega(), SigmaNuPlus())
        b = PairedDetector(Omega(), SigmaNuPlus())
        assert a.cache_key() is not None
        assert a.cache_key() == b.cache_key()

    def test_distinguishes_component_configuration(self):
        base = PairedDetector(Omega(), SigmaNu())
        tweaked = PairedDetector(Omega(stabilization_slack=99), SigmaNu())
        reordered = PairedDetector(SigmaNu(), Omega())
        assert base.cache_key() != tweaked.cache_key()
        assert base.cache_key() != reordered.cache_key()

    def test_uncacheable_component_poisons_the_product(self):
        class Opaque(Omega):
            def __init__(self):
                super().__init__()
                self.blob = object()  # unkeyable attribute

        assert PairedDetector(Opaque(), SigmaNu()).cache_key() is None

    def test_cached_sampling_shares_histories(self):
        pattern = FailurePattern(3, {2: 5})
        a = sample_history_cached(
            PairedDetector(Omega(), SigmaNuPlus()), pattern, 1234
        )
        b = sample_history_cached(
            PairedDetector(Omega(), SigmaNuPlus()), pattern, 1234
        )
        assert a is b

    def test_injectors_are_cacheable(self):
        """The chaos injectors ride through sample_history_cached; their
        keys must be stable and distinct from their honest inners."""
        from repro.chaos.injectors import SplitQuorums

        a, b = SplitQuorums(), SplitQuorums()
        assert a.cache_key() is not None
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != a.inner.cache_key()
