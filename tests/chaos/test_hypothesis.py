"""Chaos invariants quantified with the shared hypothesis strategies."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chaos.injectors import SplitQuorums, TrustedUnionLiar
from repro.chaos.space import FuzzCase, build_delivery, build_scheduler
from tests.strategies import detector_histories, failure_patterns, fuzz_cases

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestCaseSpace:
    @SETTINGS
    @given(data=st.data())
    def test_drawn_specs_always_buildable(self, data):
        """Every drawn case's scheduler/delivery spec builds an instance —
        the property the executor relies on for arbitrary corpus cases."""
        case = data.draw(fuzz_cases())
        build_scheduler(case.scheduler)
        build_delivery(case.delivery)

    @SETTINGS
    @given(data=st.data())
    def test_json_survives_double_round_trip(self, data):
        case = data.draw(fuzz_cases(proposal_style="register"))
        once = FuzzCase.from_json(case.to_json())
        assert FuzzCase.from_json(once.to_json()) == case

    @SETTINGS
    @given(data=st.data())
    def test_patterns_embed_faithfully(self, data):
        case = data.draw(fuzz_cases())
        pattern = case.pattern()
        assert pattern.n == case.n
        assert sorted(pattern.faulty) == sorted(p for p, _ in case.crash_times)


class TestInjectorGeometry:
    @SETTINGS
    @given(pattern=failure_patterns(min_n=2, max_n=6, min_correct=2))
    def test_split_halves_partition_any_pattern(self, pattern):
        half_a, half_b = SplitQuorums.halves(pattern)
        assert half_a.isdisjoint(half_b)
        assert half_a | half_b == pattern.correct
        assert len(half_a) - len(half_b) in (0, 1)

    @SETTINGS
    @given(data=st.data())
    def test_trusted_union_liar_histories_stay_sigma_nu(self, data):
        """Over random applicable patterns the lie never leaks into plain
        Σν — it is surgically Σν+-specific."""
        from repro.detectors import check_sigma_nu

        pattern, history = data.draw(
            detector_histories(
                TrustedUnionLiar, min_n=3, max_n=6, min_correct=2
            )
        )
        if not pattern.faulty:
            return  # outside the injector's domain: honest fallback
        assert check_sigma_nu(history, pattern, 200).ok
