"""Injectors: each lie flips exactly its declared hypothesis checker."""

import random

import pytest

from repro.chaos.injectors import (
    ALL_INJECTORS,
    HYPOTHESIS_CHECKERS,
    BlindSuspector,
    CrashedLeaderOmega,
    NeverStabilizingOmega,
    ParanoidSuspector,
    SplitQuorums,
    TrustedUnionLiar,
)
from repro.kernel.failures import FailurePattern

HORIZON = 200


def pattern_for(injector) -> FailurePattern:
    """A small pattern inside the injector's domain."""
    crashes = {3: 10} if injector.requires_faulty else {}
    return FailurePattern(4, crashes)


class TestDomain:
    @pytest.mark.parametrize("cls", ALL_INJECTORS)
    def test_declares_checker_and_breaks(self, cls):
        injector = cls()
        assert injector.checker in HYPOTHESIS_CHECKERS
        assert injector.breaks != "?"
        assert injector.name.startswith(cls.__name__)

    @pytest.mark.parametrize("cls", ALL_INJECTORS)
    def test_fallback_outside_domain_is_honest(self, cls):
        """On patterns outside its domain the injector is the inner
        detector: sampled histories pass the hypothesis checker."""
        injector = cls()
        if not injector.requires_faulty and injector.min_correct <= 1:
            pytest.skip("total injector: no out-of-domain pattern exists")
        if injector.requires_faulty:
            pattern = FailurePattern(3, {})  # no faulty process
        else:
            pattern = FailurePattern(2, {1: 0})  # single correct process
        assert not injector.applicable(pattern)
        history = injector.sample_history(pattern, random.Random(0))
        checker = HYPOTHESIS_CHECKERS[injector.checker]
        assert checker(history, pattern, HORIZON).ok

    @pytest.mark.parametrize("cls", ALL_INJECTORS)
    def test_lie_rejected_honest_accepted(self, cls):
        injector = cls()
        pattern = pattern_for(injector)
        assert injector.applicable(pattern)
        checker = HYPOTHESIS_CHECKERS[injector.checker]
        lie = injector.sample_history(pattern, random.Random(1))
        assert not checker(lie, pattern, HORIZON).ok
        honest = injector.inner.sample_history(pattern, random.Random(1))
        assert checker(honest, pattern, HORIZON).ok


class TestOmegaInjectors:
    def test_never_stabilizing_rotates(self):
        injector = NeverStabilizingOmega(period=7)
        pattern = FailurePattern(4, {})
        history = injector.sample_history(pattern, random.Random(0))
        values = {history.value(0, t) for t in range(0, 100)}
        assert len(values) == 4  # every process gets a turn
        # No common simultaneous leader across processes.
        assert all(
            history.value(0, t) != history.value(1, t) for t in range(50)
        )

    def test_never_stabilizing_rejects_bad_period(self):
        with pytest.raises(ValueError):
            NeverStabilizingOmega(period=0)

    def test_crashed_leader_elects_lowest_faulty(self):
        injector = CrashedLeaderOmega()
        pattern = FailurePattern(4, {1: 5, 2: 9})
        history = injector.sample_history(pattern, random.Random(0))
        assert all(
            history.value(p, t) == 1
            for p in range(4)
            for t in range(0, 60, 7)
        )


class TestQuorumInjectors:
    def test_halves_partition_the_correct_set(self):
        pattern = FailurePattern(6, {5: 0})
        half_a, half_b = SplitQuorums.halves(pattern)
        assert half_a & half_b == frozenset()
        assert half_a | half_b == pattern.correct
        assert len(half_a) >= len(half_b)

    def test_split_quorums_outputs_own_half(self):
        injector = SplitQuorums()
        pattern = FailurePattern(5, {4: 3})
        half_a, half_b = SplitQuorums.halves(pattern)
        history = injector.sample_history(pattern, random.Random(0))
        for p in half_a:
            assert history.value(p, 50) == half_a
        for p in half_b:
            assert history.value(p, 50) == half_b
        assert history.value(4, 50) == frozenset([4])

    def test_split_quorums_keeps_sigma_nu_completeness(self):
        """Only intersection breaks: the sigma_nu checker's violations all
        mention intersection, never completeness or self-inclusion."""
        from repro.detectors import check_sigma_nu

        injector = SplitQuorums()
        pattern = FailurePattern(5, {4: 3})
        history = injector.sample_history(pattern, random.Random(0))
        result = check_sigma_nu(history, pattern, HORIZON)
        assert not result.ok
        assert result.violations
        assert all("intersection" in v for v in result.violations)

    def test_trusted_union_liar_shape(self):
        injector = TrustedUnionLiar()
        pattern = FailurePattern(4, {3: 10})
        history = injector.sample_history(pattern, random.Random(0))
        correct = sorted(pattern.correct)
        pivot, confederate = correct[0], correct[1]
        for p in correct:
            assert history.value(p, 40) == frozenset([pivot, p])
        assert history.value(3, 40) == frozenset([3, confederate])

    def test_trusted_union_liar_preserves_sigma_nu(self):
        """The lie is Sigma^nu+-specific: plain Sigma^nu still accepts."""
        from repro.detectors import check_sigma_nu, check_sigma_nu_plus

        injector = TrustedUnionLiar()
        pattern = FailurePattern(4, {3: 10})
        history = injector.sample_history(pattern, random.Random(0))
        assert check_sigma_nu(history, pattern, HORIZON).ok
        assert not check_sigma_nu_plus(history, pattern, HORIZON).ok


class TestPerfectInjectors:
    def test_blind_never_suspects(self):
        injector = BlindSuspector()
        pattern = FailurePattern(3, {2: 4})
        history = injector.sample_history(pattern, random.Random(0))
        assert history.value(0, 100) == frozenset()

    def test_paranoid_suspects_everyone(self):
        injector = ParanoidSuspector()
        pattern = FailurePattern(3, {})
        history = injector.sample_history(pattern, random.Random(0))
        assert history.value(1, 100) == frozenset({0, 1, 2})

    def test_blind_breaks_only_completeness(self):
        from repro.detectors import check_eventually_perfect

        injector = BlindSuspector()
        pattern = FailurePattern(3, {2: 4})
        history = injector.sample_history(pattern, random.Random(0))
        result = check_eventually_perfect(history, pattern, HORIZON)
        assert not result.ok
        assert all(v.startswith("completeness") for v in result.violations)

    def test_paranoid_breaks_only_accuracy(self):
        from repro.detectors import check_eventually_perfect

        injector = ParanoidSuspector()
        pattern = FailurePattern(3, {2: 4})
        history = injector.sample_history(pattern, random.Random(0))
        result = check_eventually_perfect(history, pattern, HORIZON)
        assert not result.ok
        assert all(v.startswith("accuracy") for v in result.violations)
