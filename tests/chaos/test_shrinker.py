"""Shrinker soundness: scripted replay fidelity and minimality."""

import pytest

from repro.chaos.fuzzer import execute_case, fuzz_config
from repro.chaos.shrinker import (
    SAFETY_PROPERTIES,
    _ddmin,
    scripted_case,
    shrink_schedule,
)
from repro.chaos.space import draw_case
from tests.chaos.test_fuzzer import FAST_CRASHED, FAST_HONEST, FAST_SPLIT


@pytest.fixture(scope="module")
def split_violation():
    """A deterministic split-quorums disagreement from the fast config."""
    report = fuzz_config(FAST_SPLIT, seed=0, stop_on="nonuniform agreement")
    violation = report.first("nonuniform agreement")
    assert violation is not None
    return violation


class TestScriptedReplay:
    def test_scripted_full_schedule_is_bit_identical(self):
        """The soundness property the whole shrinker rests on: replaying a
        run's extracted pid schedule through a ScriptedScheduler with the
        same kernel seed reproduces the run exactly."""
        case = draw_case(
            "test-nuc-honest", seed=1, index=2, ns=(3,), max_steps=6000
        )
        original = execute_case(FAST_HONEST, case, trace="full")
        replayed = execute_case(
            FAST_HONEST,
            scripted_case(case, original.schedule),
            trace="full",
        )
        assert replayed.schedule == original.schedule
        assert replayed.signature == original.signature
        assert replayed.steps == original.steps
        assert replayed.violations == tuple(
            v.__class__(
                config=v.config,
                property=v.property,
                message=v.message,
                case=replayed.case,
                steps=v.steps,
            )
            for v in original.violations
        )

    def test_scripted_case_round_trips_spec(self):
        case = draw_case("t", seed=0, index=0, ns=(3,), max_steps=50)
        scripted = scripted_case(case, [0, 1, 2], max_steps=3)
        assert scripted.scheduler[0] == "scripted"
        assert scripted.scheduler[1] == (0, 1, 2)
        assert scripted.scheduler[2] == case.scheduler
        assert scripted.max_steps == 3


class TestDdmin:
    def test_reduces_to_known_core(self):
        core = {3, 7}

        def test_fn(script):
            return core <= set(script)

        script, evals, certified = _ddmin(test_fn, list(range(10)), 500)
        assert set(script) == core
        assert certified
        assert evals > 0

    def test_respects_evaluation_cap(self):
        calls = []

        def test_fn(script):
            calls.append(1)
            return True

        _, evals, certified = _ddmin(test_fn, list(range(64)), 5)
        assert evals <= 5
        assert not certified

    def test_single_element_script_kept(self):
        script, _, certified = _ddmin(lambda s: bool(s), [4], 100)
        assert script == [4]
        assert certified


class TestShrinkSchedule:
    def test_safety_shrink_reproduces_and_minimizes(self, split_violation):
        result = shrink_schedule(
            FAST_SPLIT, split_violation.case, "nonuniform agreement"
        )
        assert result is not None
        assert result.property == "nonuniform agreement"
        assert len(result.script) <= result.original_schedule_len
        assert result.case.max_steps == max(len(result.script), 1)
        # The shrunk scripted case still violates, on its own.
        outcome = execute_case(FAST_SPLIT, result.case)
        assert any(
            v.property == "nonuniform agreement" for v in outcome.violations
        )
        assert "nonuniform agreement" in result.message

    def test_shrink_is_deterministic(self, split_violation):
        a = shrink_schedule(
            FAST_SPLIT, split_violation.case, "nonuniform agreement"
        )
        b = shrink_schedule(
            FAST_SPLIT, split_violation.case, "nonuniform agreement"
        )
        assert a == b

    def test_termination_shrinks_to_empty_when_lie_suffices(self):
        """The crashed-leader lie blocks under the original environment
        alone, so the shrinker reports the empty script — the diagnosis
        that the *detector*, not the schedule, causes the hang."""
        case = draw_case(
            "test-omega-crashed",
            seed=0,
            index=0,
            ns=(3,),
            max_steps=1500,
            min_faulty=1,
            max_crash_time=0,
        )
        result = shrink_schedule(FAST_CRASHED, case, "termination")
        assert result is not None
        assert result.script == ()
        assert result.one_minimal

    def test_unreproduced_property_returns_none(self):
        case = draw_case(
            "test-nuc-honest", seed=0, index=0, ns=(3,), max_steps=6000
        )
        assert (
            shrink_schedule(FAST_HONEST, case, "nonuniform agreement") is None
        )

    def test_safety_properties_vocabulary(self):
        from repro.chaos.fuzzer import PROPERTIES

        assert SAFETY_PROPERTIES < set(PROPERTIES)
        assert "termination" not in SAFETY_PROPERTIES
