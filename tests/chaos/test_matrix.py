"""The injection matrix: registry shape, hypothesis legs, verdict logic."""

import dataclasses

import pytest

from repro.chaos.fuzzer import PROPERTIES
from repro.chaos.injectors import ALL_INJECTORS
from repro.chaos.matrix import (
    CONFIGS,
    MatrixReport,
    MatrixVerdict,
    hypothesis_flip,
    judge_config,
    run_matrix,
)

INJECTED = sorted(n for n, c in CONFIGS.items() if c.injector is not None)
HONEST = sorted(n for n, c in CONFIGS.items() if c.injector is None)


class TestRegistry:
    def test_names_match_keys(self):
        for name, config in CONFIGS.items():
            assert config.name == name

    def test_expected_properties_in_vocabulary(self):
        for config in CONFIGS.values():
            assert config.expected <= set(PROPERTIES)
            if config.primary is not None:
                assert config.primary in config.expected

    def test_honest_rows_expect_nothing(self):
        for name in HONEST:
            config = CONFIGS[name]
            assert config.expected == frozenset()
            assert config.primary is None
            assert config.honest is None

    def test_injected_rows_declare_expectations(self):
        for name in INJECTED:
            config = CONFIGS[name]
            assert config.honest is not None
            assert config.expected, name
            assert config.primary is not None

    def test_every_injector_has_a_row(self):
        used = {CONFIGS[name].injector for name in INJECTED}
        assert used == set(ALL_INJECTORS)

    def test_detector_factories_are_picklable(self):
        """Configs ride through the parallel sweep driver as pickles."""
        import pickle

        for config in CONFIGS.values():
            pickle.loads(pickle.dumps(config))


class TestHypothesisFlip:
    @pytest.mark.parametrize("name", INJECTED)
    def test_injected_history_rejected_honest_accepted(self, name):
        rejected, accepted = hypothesis_flip(CONFIGS[name], seed=0)
        assert rejected, f"{name}: lie not rejected by its checker"
        assert accepted, f"{name}: honest inner history not accepted"

    def test_deterministic(self):
        name = INJECTED[0]
        assert hypothesis_flip(CONFIGS[name], seed=5) == hypothesis_flip(
            CONFIGS[name], seed=5
        )


class TestJudgeConfig:
    def test_injected_smoke(self):
        verdict = judge_config("omega-crashed", seed=0, budget=35_000)
        assert isinstance(verdict, MatrixVerdict)
        assert verdict.injected
        assert verdict.primary_found
        assert verdict.found <= verdict.expected
        assert verdict.hypothesis_rejected and verdict.honest_accepted
        assert verdict.ok
        assert "termination" in verdict.sample

    def test_honest_smoke(self):
        verdict = judge_config("nuc-honest", seed=0, budget=12_000)
        assert not verdict.injected
        assert verdict.found == frozenset()
        assert verdict.exhausted
        assert verdict.ok
        assert verdict.hypothesis_rejected is None

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            judge_config("martian", seed=0)

    def test_judge_is_deterministic(self):
        a = judge_config("omega-crashed", seed=0, budget=35_000)
        b = judge_config("omega-crashed", seed=0, budget=35_000)
        assert a == b

    def test_shrink_attaches_artifact(self):
        verdict = judge_config(
            "omega-crashed", seed=0, budget=35_000, shrink=True
        )
        assert verdict.shrink is not None
        assert verdict.shrink.property == "termination"


class TestRunMatrix:
    def test_name_restriction(self):
        report = run_matrix(
            seed=0, budget=35_000, names=["omega-crashed"]
        )
        assert isinstance(report, MatrixReport)
        assert [v.config for v in report.verdicts] == ["omega-crashed"]
        assert report.ok

    def test_parallel_matches_serial(self):
        serial = run_matrix(
            seed=0, budget=35_000, names=["omega-crashed", "ct-paranoid"]
        )
        parallel = run_matrix(
            seed=0,
            budget=35_000,
            jobs=2,
            names=["omega-crashed", "ct-paranoid"],
        )
        assert serial.verdicts == parallel.verdicts

    @pytest.mark.slow
    def test_full_matrix_exact_at_seed_zero(self):
        """The acceptance gate: every injector's fuzz finds its declared
        violation, honest rows exhaust clean, hypothesis legs all flip."""
        report = run_matrix(seed=0, jobs=4)
        assert [v.config for v in report.verdicts] == list(CONFIGS)
        for verdict in report.verdicts:
            assert verdict.ok, (verdict.config, verdict.sample)
        assert report.ok

    @pytest.mark.slow
    def test_full_matrix_bit_identical(self):
        a = run_matrix(seed=1, budget=40_000, jobs=4)
        b = run_matrix(seed=1, budget=40_000, jobs=4)
        assert a.verdicts == b.verdicts


class TestObservability:
    def test_chaos_counters_recorded(self):
        from repro import obs

        obs.enable(label="chaos-test")
        try:
            judge_config("omega-crashed", seed=0, budget=35_000)
            counters = obs.metrics().snapshot()["counters"]
        finally:
            obs.disable()
        assert counters.get("chaos.cases", 0) >= 1
        assert counters.get("chaos.steps", 0) >= 1
        assert counters.get("chaos.violations", 0) >= 1
