"""The fuzz loop and case executor: determinism, oracles, recheck."""

import dataclasses

import pytest

from repro.chaos.fuzzer import (
    PROPERTIES,
    ChaosConfig,
    execute_case,
    fuzz_config,
)
from repro.chaos.matrix import (
    CONFIGS,
    anuc_detector,
    crashed_omega_detector,
    register_detector,
    split_quorum_detector,
)
from repro.chaos.space import draw_case


def _kw(**kwargs):
    return tuple(sorted(kwargs.items()))


FAST_HONEST = ChaosConfig(
    name="test-nuc-honest",
    kind="consensus",
    algorithm="anuc",
    detector=anuc_detector,
    case_kwargs=_kw(ns=(3,)),
    max_steps=6000,
    budget=15_000,
)

FAST_CRASHED = ChaosConfig(
    name="test-omega-crashed",
    kind="consensus",
    algorithm="anuc",
    detector=crashed_omega_detector,
    expected=frozenset({"termination"}),
    primary="termination",
    case_kwargs=_kw(ns=(3,), min_faulty=1, max_crash_time=0),
    max_steps=1500,
    budget=4000,
)

FAST_SPLIT = ChaosConfig(
    name="test-split-quorums",
    kind="consensus",
    algorithm="naive-sigma-nu",
    detector=split_quorum_detector,
    expected=frozenset({"nonuniform agreement", "uniform agreement"}),
    primary="nonuniform agreement",
    case_kwargs=_kw(
        ns=(4, 5, 6),
        min_correct=2,
        proposal_style="split-halves",
    ),
    max_steps=8000,
    budget=120_000,
)

FAST_REGISTER = ChaosConfig(
    name="test-register-honest",
    kind="register",
    algorithm="abd",
    detector=register_detector,
    case_kwargs=_kw(ns=(3,), proposal_style="register"),
    max_steps=6000,
    budget=15_000,
)


class TestExecuteCase:
    def test_deterministic(self):
        case = draw_case(
            "test-nuc-honest", seed=0, index=0, ns=(3,), max_steps=6000
        )
        a = execute_case(FAST_HONEST, case)
        b = execute_case(FAST_HONEST, case)
        assert a.signature == b.signature
        assert a.steps == b.steps
        assert a.violations == b.violations

    def test_honest_consensus_case_clean(self):
        case = draw_case(
            "test-nuc-honest", seed=0, index=0, ns=(3,), max_steps=6000
        )
        outcome = execute_case(FAST_HONEST, case)
        assert outcome.violations == ()
        assert outcome.signature[0] == "stop_condition"

    def test_full_trace_returns_schedule(self):
        case = draw_case(
            "test-nuc-honest", seed=0, index=0, ns=(3,), max_steps=6000
        )
        outcome = execute_case(FAST_HONEST, case, trace="full")
        assert len(outcome.schedule) == outcome.steps
        assert set(outcome.schedule) <= set(range(case.n))
        # The pid schedule is invisible to the metrics-mode signature.
        assert outcome.signature == execute_case(FAST_HONEST, case).signature

    def test_crashed_leader_blocks(self):
        case = draw_case(
            "test-omega-crashed",
            seed=0,
            index=0,
            ns=(3,),
            max_steps=1500,
            min_faulty=1,
            max_crash_time=0,
        )
        outcome = execute_case(FAST_CRASHED, case)
        props = {v.property for v in outcome.violations}
        assert "termination" in props
        assert props <= set(PROPERTIES)

    def test_unknown_kind_rejected(self):
        bad = dataclasses.replace(FAST_HONEST, kind="martian")
        case = draw_case("t", seed=0, index=0, ns=(3,), max_steps=100)
        with pytest.raises(ValueError):
            execute_case(bad, case)

    def test_unknown_algorithm_rejected(self):
        bad = dataclasses.replace(FAST_HONEST, algorithm="martian")
        case = draw_case("t", seed=0, index=0, ns=(3,), max_steps=100)
        with pytest.raises(ValueError):
            execute_case(bad, case)

    def test_termination_recheck_discards_starvation_artifacts(self):
        """An adversarially weighted schedule can starve one process past
        any finite budget; the fair-environment recheck must discard the
        suggested termination violation for non-liveness-attack configs."""
        starved = dataclasses.replace(
            draw_case(
                "test-nuc-honest", seed=0, index=0, ns=(3,), max_steps=400
            ),
            scheduler=("weighted", ((0, 0.05), (1, 20.0), (2, 20.0)), 4096),
            delivery=("per-sender-fifo", 0.9, 60),
        )
        outcome = execute_case(FAST_HONEST, starved)
        assert not any(
            v.property == "termination" for v in outcome.violations
        )

    def test_liveness_attack_rows_keep_raw_findings(self):
        """For configs that *expect* termination violations the bounded-fair
        fuzzed run is the witness; no fair-environment recheck applies."""
        case = draw_case(
            "test-omega-crashed",
            seed=0,
            index=0,
            ns=(3,),
            max_steps=1500,
            min_faulty=1,
            max_crash_time=0,
        )
        outcome = execute_case(FAST_CRASHED, case)
        # The crashed-leader lie blocks under *any* schedule, so the raw
        # finding stands and the steps are the single run's.
        assert outcome.steps == 1500


class TestFuzzLoop:
    def test_bit_identical_reruns(self):
        a = fuzz_config(FAST_HONEST, seed=3)
        b = fuzz_config(FAST_HONEST, seed=3)
        assert a.cases == b.cases
        assert a.steps == b.steps
        assert a.corpus_size == b.corpus_size
        assert a.violations == b.violations
        assert a.exhausted and b.exhausted

    def test_honest_config_exhausts_clean(self):
        report = fuzz_config(FAST_HONEST, seed=0)
        assert report.exhausted
        assert report.violations == []
        assert report.found == frozenset()
        assert report.cases >= 2

    def test_stop_on_primary(self):
        report = fuzz_config(
            FAST_CRASHED, seed=0, stop_on="termination"
        )
        assert not report.exhausted
        assert report.first("termination") is not None
        assert report.first("validity") is None

    def test_max_cases_bounds_the_loop(self):
        report = fuzz_config(FAST_HONEST, seed=0, max_cases=1)
        assert report.cases == 1

    def test_budget_override(self):
        report = fuzz_config(FAST_HONEST, seed=0, budget=1)
        assert report.budget == 1
        assert report.cases == 1  # one case always executes

    def test_split_quorums_finds_disagreement(self):
        report = fuzz_config(
            FAST_SPLIT, seed=0, stop_on="nonuniform agreement"
        )
        violation = report.first("nonuniform agreement")
        assert violation is not None
        assert report.found <= FAST_SPLIT.expected
        assert "decided differently" in violation.message

    def test_register_honest_clean(self):
        report = fuzz_config(FAST_REGISTER, seed=0)
        assert report.exhausted
        assert report.violations == []


class TestRegistryConfigs:
    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_one_case_executes(self, name):
        """Every registry config's first drawn case executes end to end
        (capped tightly: this is a smoke test, not the matrix)."""
        config = CONFIGS[name]
        small = dataclasses.replace(config, max_steps=600)
        case = draw_case(
            config.name, seed=0, index=0, max_steps=600, **config.draw_kwargs()
        )
        outcome = execute_case(small, case)
        assert outcome.steps <= 2 * 600  # original plus at most one recheck
        assert {v.property for v in outcome.violations} <= set(PROPERTIES)
