"""Counterexample artifacts: format, round-trip, replay, committed fixture."""

import json
from pathlib import Path

import pytest

from repro.chaos.artifact import (
    COUNTEREXAMPLE_SCHEMA,
    FORMAT,
    counterexample_document,
    load_counterexample,
    replay_counterexample,
    save_counterexample,
)
from repro.chaos.fuzzer import fuzz_config
from repro.chaos.shrinker import shrink_schedule
from tests.chaos.test_fuzzer import FAST_SPLIT

FIXTURES = Path(__file__).parent / "fixtures"
THEOREM_71_FIXTURE = (
    FIXTURES / "split-quorums-nonuniform-agreement-seed0.json"
)


@pytest.fixture(scope="module")
def shrink_result():
    report = fuzz_config(FAST_SPLIT, seed=0, stop_on="nonuniform agreement")
    violation = report.first("nonuniform agreement")
    result = shrink_schedule(
        FAST_SPLIT, violation.case, "nonuniform agreement"
    )
    assert result is not None
    return result


class TestDocument:
    def test_document_shape(self, shrink_result):
        document = counterexample_document(shrink_result)
        assert set(document) == set(COUNTEREXAMPLE_SCHEMA)
        assert document["format"] == FORMAT
        assert document["property"] == "nonuniform agreement"
        assert document["shrink"]["script_len"] == len(shrink_result.script)
        assert "python -m repro chaos --replay" in document["repro"]

    def test_save_load_round_trip(self, shrink_result, tmp_path):
        path = tmp_path / "nested" / "ce.json"
        saved = save_counterexample(shrink_result, path)
        loaded = load_counterexample(path)
        assert loaded == saved
        assert str(path) in loaded["repro"]
        # Stable serialization: saving again is byte-identical.
        text = path.read_text()
        save_counterexample(shrink_result, path)
        assert path.read_text() == text

    def test_load_accepts_dict(self, shrink_result):
        document = counterexample_document(shrink_result)
        assert load_counterexample(document) == document


class TestValidation:
    def _document(self, shrink_result):
        return counterexample_document(shrink_result)

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            load_counterexample([])

    def test_rejects_wrong_format(self, shrink_result):
        document = self._document(shrink_result)
        document["format"] = "repro-counterexample/99"
        with pytest.raises(ValueError, match="unsupported"):
            load_counterexample(document)

    def test_rejects_missing_key(self, shrink_result):
        document = self._document(shrink_result)
        del document["case"]
        with pytest.raises(ValueError, match="missing key"):
            load_counterexample(document)

    def test_rejects_wrong_type(self, shrink_result):
        document = self._document(shrink_result)
        document["case"] = "not a dict"
        with pytest.raises(ValueError, match="must be dict"):
            load_counterexample(document)


class TestReplay:
    def test_replay_reproduces(self, shrink_result, tmp_path):
        path = tmp_path / "ce.json"
        save_counterexample(shrink_result, path)
        reproduced, outcome, document = replay_counterexample(
            path, config=FAST_SPLIT
        )
        assert reproduced
        assert any(
            v.property == document["property"] for v in outcome.violations
        )

    def test_replay_resolves_config_from_registry(self, tmp_path):
        """Without an explicit config the matrix registry supplies it (the
        committed fixture exercises this path below)."""
        reproduced, outcome, document = replay_counterexample(
            THEOREM_71_FIXTURE
        )
        assert reproduced
        assert document["config"] == "split-quorums"


class TestCommittedFixture:
    """The Theorem 7.1 artifact: t >= n/2 split quorums make the naive
    Sigma^nu algorithm break agreement.  Committed so the separation has a
    permanent, replayable witness."""

    def test_fixture_exists_and_validates(self):
        document = load_counterexample(THEOREM_71_FIXTURE)
        assert document["format"] == FORMAT
        assert document["property"] == "nonuniform agreement"
        assert document["config"] == "split-quorums"

    def test_fixture_replays_bit_identically(self):
        reproduced, outcome, document = replay_counterexample(
            THEOREM_71_FIXTURE
        )
        assert reproduced
        live = next(
            v
            for v in outcome.violations
            if v.property == document["property"]
        )
        # Not merely violated again: the identical disagreement.
        assert live.message == document["message"]
        assert outcome.steps == document["shrink"]["script_len"]

    def test_fixture_case_is_a_genuine_split(self):
        """The witness is the Theorem 7.1 shape: two correct halves that
        each see only their own quorum, deciding differently."""
        from repro.chaos.injectors import SplitQuorums
        from repro.chaos.space import FuzzCase

        document = load_counterexample(THEOREM_71_FIXTURE)
        case = FuzzCase.from_json(document["case"])
        pattern = case.pattern()
        half_a, half_b = SplitQuorums.halves(pattern)
        assert half_a and half_b
        proposals = case.proposal_map()
        assert {proposals[p] for p in half_a} != {
            proposals[p] for p in half_b
        }
        assert "decided differently" in document["message"]
