"""The fuzz-case space: purity, round-trips, spec builders."""

import random

import pytest

from repro.chaos.space import (
    FuzzCase,
    MUTATION_DIMENSIONS,
    PROPOSAL_STYLES,
    build_delivery,
    build_scheduler,
    draw_case,
    mutate_case,
)
from repro.kernel.messages import (
    FairRandomDelivery,
    OldestFirstDelivery,
    PerSenderFifoDelivery,
)
from repro.kernel.scheduler import (
    RandomFairScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    WeightedScheduler,
)


class TestDrawCase:
    def test_pure_in_config_seed_index(self):
        for index in range(20):
            a = draw_case("t", seed=3, index=index, ns=(3, 4, 5), max_steps=100)
            b = draw_case("t", seed=3, index=index, ns=(3, 4, 5), max_steps=100)
            assert a == b

    def test_different_indices_differ(self):
        cases = {
            draw_case("t", seed=0, index=i, ns=(3, 4, 5), max_steps=100)
            for i in range(30)
        }
        assert len(cases) > 20  # overwhelmingly distinct draws

    def test_constraints_respected(self):
        for index in range(40):
            case = draw_case(
                "t",
                seed=1,
                index=index,
                ns=(4, 5),
                max_steps=100,
                min_faulty=1,
                min_correct=2,
            )
            pattern = case.pattern()
            assert case.n in (4, 5)
            assert len(pattern.faulty) >= 1
            assert len(pattern.correct) >= 2

    def test_majority_correct_bound(self):
        for index in range(40):
            case = draw_case(
                "t",
                seed=2,
                index=index,
                ns=(3, 4, 5),
                max_steps=100,
                majority_correct=True,
            )
            pattern = case.pattern()
            assert len(pattern.faulty) <= (case.n - 1) // 2

    @pytest.mark.parametrize("style", PROPOSAL_STYLES)
    def test_every_proposal_style_draws(self, style):
        case = draw_case(
            "t",
            seed=0,
            index=0,
            ns=(4,),
            max_steps=100,
            proposal_style=style,
        )
        assert len(case.proposals) == case.n

    def test_split_halves_tracks_injector_halves(self):
        from repro.chaos.injectors import SplitQuorums

        for index in range(20):
            case = draw_case(
                "t",
                seed=5,
                index=index,
                ns=(4, 5, 6),
                max_steps=100,
                min_correct=2,
                proposal_style="split-halves",
                values=(0, 1),
            )
            pattern = case.pattern()
            half_a, half_b = SplitQuorums.halves(pattern)
            proposals = case.proposal_map()
            assert all(proposals[p] == 0 for p in half_a)
            assert all(proposals[p] == 1 for p in half_b)

    def test_register_style_scripts_are_valid_ops(self):
        case = draw_case(
            "t",
            seed=0,
            index=3,
            ns=(4,),
            max_steps=100,
            proposal_style="register",
        )
        for _, script in case.proposals:
            assert 2 <= len(script) <= 4
            for op in script:
                assert op[0] in ("read", "write")

    def test_unknown_style_rejected(self):
        with pytest.raises(ValueError):
            draw_case(
                "t",
                seed=0,
                index=0,
                ns=(3,),
                max_steps=100,
                proposal_style="nonsense",
            )


class TestMutateCase:
    def test_mutation_changes_exactly_one_dimension_family(self):
        base = draw_case("t", seed=0, index=0, ns=(4,), max_steps=100)
        rng = random.Random(42)
        for index in range(1, 30):
            mutant = mutate_case(base, rng, index=index)
            assert mutant.n == base.n
            assert mutant.index == index
            changed = [
                dim
                for dim, same in (
                    ("scheduler", mutant.scheduler == base.scheduler),
                    ("delivery", mutant.delivery == base.delivery),
                    ("crashes", mutant.crash_times == base.crash_times),
                    ("proposals", mutant.proposals == base.proposals),
                )
                if not same
            ]
            # A re-draw may coincide with the original; never more than one
            # dimension moves (crashes may re-derive split-halves proposals).
            assert set(changed) <= {"crashes", "proposals"} or len(changed) <= 1
            for dim in changed:
                assert dim in MUTATION_DIMENSIONS

    def test_mutation_deterministic_in_rng_state(self):
        base = draw_case("t", seed=0, index=0, ns=(4,), max_steps=100)
        a = mutate_case(base, random.Random(7), index=1)
        b = mutate_case(base, random.Random(7), index=1)
        assert a == b


class TestJsonRoundTrip:
    @pytest.mark.parametrize("style", PROPOSAL_STYLES)
    def test_round_trip_every_style(self, style):
        for index in range(10):
            case = draw_case(
                "t",
                seed=9,
                index=index,
                ns=(3, 4),
                max_steps=200,
                proposal_style=style,
            )
            assert FuzzCase.from_json(case.to_json()) == case

    def test_round_trip_scripted_scheduler(self):
        from repro.chaos.shrinker import scripted_case

        case = draw_case("t", seed=0, index=0, ns=(3,), max_steps=50)
        scripted = scripted_case(case, [0, 1, 2, 0], max_steps=4)
        assert FuzzCase.from_json(scripted.to_json()) == scripted

    def test_run_seed_pure(self):
        case = draw_case("t", seed=11, index=7, ns=(3,), max_steps=50)
        assert case.run_seed() == case.run_seed()
        other = draw_case("t", seed=11, index=8, ns=(3,), max_steps=50)
        assert case.run_seed() != other.run_seed()


class TestSpecBuilders:
    def test_scheduler_specs(self):
        assert isinstance(build_scheduler(("round-robin",)), RoundRobinScheduler)
        assert isinstance(
            build_scheduler(("random-fair", 16)), RandomFairScheduler
        )
        weighted = build_scheduler(("weighted", ((0, 1.0), (1, 4.0)), 32))
        assert isinstance(weighted, WeightedScheduler)
        scripted = build_scheduler(("scripted", (0, 1, 0), ("round-robin",)))
        assert isinstance(scripted, ScriptedScheduler)

    def test_delivery_specs(self):
        assert isinstance(
            build_delivery(("fair-random", 0.5, 40)), FairRandomDelivery
        )
        assert isinstance(
            build_delivery(("per-sender-fifo", 0.5, 20)), PerSenderFifoDelivery
        )
        assert isinstance(build_delivery(("oldest-first",)), OldestFirstDelivery)

    def test_unknown_specs_rejected(self):
        with pytest.raises(ValueError):
            build_scheduler(("martian",))
        with pytest.raises(ValueError):
            build_delivery(("martian",))

    def test_builders_return_fresh_instances(self):
        spec = ("random-fair", 16)
        assert build_scheduler(spec) is not build_scheduler(spec)
