"""Batched fuzz loop parity: ``fuzz_config(batch=...)`` never changes reports.

The batched loop draws cases *speculatively* in waves, so these tests pin
the rewind protocol: whenever a consumed case grows the corpus (changing
what the serial loop draws next) or ends the budget/quota, the remainder of
the wave must be discarded and the draw rng rewound — making the consumed
case sequence, and hence the whole report, bit-identical to the serial
loop's.
"""

import pytest

from repro import obs
from repro.chaos.fuzzer import fuzz_config
from repro.chaos.matrix import CONFIGS

# (config, kwargs): budgets sized so each scenario exercises a distinct
# exit path — budget exhaustion, max_cases, stop_on mid-wave — while
# covering the generic (ct), specialized (naive-sigma-nu) and fallback
# (anuc coroutine) lane tiers.
SCENARIOS = [
    ("ct-honest", dict(seed=0, budget=6000)),
    ("ct-honest", dict(seed=3, budget=9000, max_cases=7)),
    ("nuc-honest", dict(seed=1, budget=5000)),
    (
        "split-quorums",
        dict(seed=0, budget=9000, stop_on="nonuniform agreement"),
    ),
    ("ct-paranoid", dict(seed=0, budget=6000, stop_on="termination")),
]


class TestBatchedFuzzParity:
    @pytest.mark.parametrize("name,kwargs", SCENARIOS)
    def test_batch_report_identical_to_serial(self, name, kwargs):
        config = CONFIGS[name]
        serial = fuzz_config(config, batch=False, **kwargs)
        batched = fuzz_config(config, batch=True, **kwargs)
        assert serial == batched

    def test_default_batches_consensus_rows(self):
        """``batch=None`` auto-batches consensus configs — same report."""
        config = CONFIGS["ct-honest"]
        assert fuzz_config(config, seed=0, budget=4000) == fuzz_config(
            config, seed=0, budget=4000, batch=False
        )

    def test_register_rows_ignore_batch(self):
        """Non-consensus kinds have no lane vocabulary; batch is a no-op."""
        config = CONFIGS["register-honest"]
        kwargs = dict(seed=0, budget=3000, max_cases=4)
        assert fuzz_config(config, batch=True, **kwargs) == fuzz_config(
            config, batch=False, **kwargs
        )

    def test_obs_enabled_forces_serial_path(self):
        """With obs on, the traced serial body runs; reports still agree."""
        config = CONFIGS["ct-honest"]
        kwargs = dict(seed=2, budget=3000)
        plain = fuzz_config(config, batch=False, **kwargs)
        obs.enable(fresh_metrics=True)
        try:
            traced = fuzz_config(config, batch=True, **kwargs)
            assert obs.metrics().snapshot()["counters"]["chaos.cases"] > 0
        finally:
            obs.disable()
            obs.reset_metrics()
        assert traced == plain
