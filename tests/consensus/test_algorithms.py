"""Live sweeps of the baseline consensus algorithms.

MR (Omega, majority correct), quorum-MR ((Omega, Sigma), any environment,
*uniform*) and FloodSet (P, any environment).  Each sweep checks
termination, validity and the appropriate agreement flavour via the
independent verifiers.
"""

import random

import pytest

from repro.consensus import (
    FloodSetPerfect,
    MostefaouiRaynal,
    QuorumMR,
    check_nonuniform_consensus,
    check_uniform_consensus,
    consensus_outcome,
)
from repro.detectors import Omega, PairedDetector, Perfect, Sigma
from repro.kernel.failures import FailurePattern
from repro.kernel.scheduler import RoundRobinScheduler, WeightedScheduler

from tests.conftest import run_live_consensus


def sweep_patterns(n, seed, majority_only=False, count=4):
    rng = random.Random(f"sweep/{n}/{seed}")
    bound = (n - 1) // 2 if majority_only else n - 1
    for _ in range(count):
        crashed = rng.sample(range(n), rng.randint(0, bound))
        yield FailurePattern(n, {p: rng.randint(0, 50) for p in crashed})


def proposals_for(n, seed):
    rng = random.Random(f"props/{n}/{seed}")
    return {p: rng.choice(["red", "blue"]) for p in range(n)}


@pytest.mark.parametrize("n", [3, 4, 5])
@pytest.mark.parametrize("seed", [0, 1])
class TestMostefaouiRaynal:
    def test_uniform_consensus_with_correct_majority(self, n, seed):
        for pattern in sweep_patterns(n, seed, majority_only=True):
            proposals = proposals_for(n, seed)
            result = run_live_consensus(
                MostefaouiRaynal(), Omega(), pattern, proposals, seed=seed
            )
            assert result.stop_reason == "stop_condition", pattern
            outcome = consensus_outcome(result, proposals)
            assert check_uniform_consensus(outcome).ok, pattern


@pytest.mark.parametrize("n", [2, 3, 5])
@pytest.mark.parametrize("seed", [0, 1])
class TestQuorumMR:
    def test_uniform_consensus_in_any_environment(self, n, seed):
        """Footnote 5: (Omega, Sigma) + quorum-MR solves uniform consensus
        regardless of the number of failures."""
        detector = PairedDetector(Omega(), Sigma("pivot"))
        for pattern in sweep_patterns(n, seed):
            proposals = proposals_for(n, seed)
            result = run_live_consensus(
                QuorumMR(), detector, pattern, proposals, seed=seed
            )
            assert result.stop_reason == "stop_condition", pattern
            outcome = consensus_outcome(result, proposals)
            assert check_uniform_consensus(outcome).ok, pattern

    def test_all_sigma_strategies(self, n, seed):
        for strategy in ("pivot", "full", "majority"):
            detector = PairedDetector(Omega(), Sigma(strategy))
            pattern = next(iter(sweep_patterns(n, seed)))
            proposals = proposals_for(n, seed)
            result = run_live_consensus(
                QuorumMR(), detector, pattern, proposals, seed=seed
            )
            outcome = consensus_outcome(result, proposals)
            assert check_uniform_consensus(outcome).ok, (strategy, pattern)


@pytest.mark.parametrize("n", [2, 3, 4])
@pytest.mark.parametrize("seed", [0, 1])
class TestFloodSetPerfect:
    def test_consensus_with_up_to_n_minus_1_crashes(self, n, seed):
        for pattern in sweep_patterns(n, seed):
            proposals = proposals_for(n, seed)
            result = run_live_consensus(
                FloodSetPerfect(), Perfect(lag=4), pattern, proposals, seed=seed
            )
            assert result.stop_reason == "stop_condition", pattern
            outcome = consensus_outcome(result, proposals)
            assert check_uniform_consensus(outcome).ok, pattern


class TestSchedulerRobustness:
    """The algorithms must tolerate adversarially skewed step interleavings."""

    def test_quorum_mr_under_weighted_scheduler(self):
        pattern = FailurePattern(4, {0: 15})
        proposals = proposals_for(4, 9)
        detector = PairedDetector(Omega(), Sigma("pivot"))
        result = run_live_consensus(
            QuorumMR(),
            detector,
            pattern,
            proposals,
            seed=9,
            scheduler=WeightedScheduler({1: 50.0, 2: 1.0, 3: 1.0}),
        )
        outcome = consensus_outcome(result, proposals)
        assert check_uniform_consensus(outcome).ok

    def test_mr_under_round_robin(self):
        pattern = FailurePattern(3, {2: 8})
        proposals = proposals_for(3, 2)
        result = run_live_consensus(
            MostefaouiRaynal(),
            Omega(),
            pattern,
            proposals,
            seed=2,
            scheduler=RoundRobinScheduler(),
        )
        outcome = consensus_outcome(result, proposals)
        assert check_uniform_consensus(outcome).ok


class TestDecisionStability:
    def test_decisions_do_not_change_after_more_steps(self):
        pattern = FailurePattern(3, {1: 10})
        proposals = proposals_for(3, 4)
        detector = PairedDetector(Omega(), Sigma("pivot"))
        history = detector.sample_history(pattern, random.Random(4))
        from repro.kernel.automaton import AutomatonProcess
        from repro.kernel.system import System

        processes = {
            p: AutomatonProcess(QuorumMR(), proposals[p]) for p in range(3)
        }
        system = System(processes, pattern, history, seed=4)
        system.run(max_steps=20000, stop_when=lambda s: s.all_correct_decided())
        first = dict(system.result().decisions)
        system.run(max_steps=500)
        assert {p: v for p, v in system.result().decisions.items() if p in first} == first
