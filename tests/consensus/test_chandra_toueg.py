"""The Chandra-Toueg <>S rotating-coordinator algorithm [2]."""

import random

import pytest

from repro.consensus import (
    ChandraTouegS,
    check_uniform_consensus,
    consensus_outcome,
)
from repro.detectors import EventuallyPerfect, Perfect
from repro.kernel.failures import FailurePattern
from repro.kernel.scheduler import WeightedScheduler

from tests.conftest import run_live_consensus


def majority_pattern(n, seed):
    rng = random.Random(f"ct/{n}/{seed}")
    t = (n - 1) // 2
    crashed = rng.sample(range(n), rng.randint(0, t))
    return FailurePattern(n, {p: rng.randint(0, 50) for p in crashed})


@pytest.mark.parametrize("n", [3, 4, 5, 7])
@pytest.mark.parametrize("seed", [0, 1])
class TestChandraTouegSweep:
    def test_uniform_consensus_with_correct_majority(self, n, seed):
        pattern = majority_pattern(n, seed)
        proposals = {p: random.Random(seed + p).choice(["a", "b"]) for p in range(n)}
        result = run_live_consensus(
            ChandraTouegS(), EventuallyPerfect(), pattern, proposals, seed=seed
        )
        assert result.stop_reason == "stop_condition", pattern
        outcome = consensus_outcome(result, proposals)
        assert check_uniform_consensus(outcome).ok, pattern


class TestChandraTouegBehaviour:
    def test_with_perfect_detector_too(self):
        """P is a fortiori <>S; the algorithm must also run under it."""
        pattern = FailurePattern(5, {0: 10, 4: 25})
        proposals = {p: p % 2 for p in range(5)}
        result = run_live_consensus(
            ChandraTouegS(), Perfect(lag=3), pattern, proposals, seed=3
        )
        outcome = consensus_outcome(result, proposals)
        assert check_uniform_consensus(outcome).ok

    def test_crashed_coordinator_is_rotated_past(self):
        """Round 1's coordinator (process 1) is dead from the start; the
        suspicion path must carry everyone to later rounds and a decision."""
        pattern = FailurePattern(3, {1: 0})
        proposals = {0: "left", 1: "mid", 2: "right"}
        result = run_live_consensus(
            ChandraTouegS(), EventuallyPerfect(stabilization_slack=5),
            pattern, proposals, seed=7,
        )
        assert set(result.decided_correct()) == {0, 2}
        outcome = consensus_outcome(result, proposals)
        assert check_uniform_consensus(outcome).ok

    def test_decide_broadcast_reaches_laggards(self):
        """A starved process must still decide through the DECIDE relay."""
        pattern = FailurePattern(4, {})
        proposals = {p: "z" for p in range(4)}
        result = run_live_consensus(
            ChandraTouegS(),
            EventuallyPerfect(),
            pattern,
            proposals,
            seed=8,
            scheduler=WeightedScheduler({3: 0.05}, max_gap=200),
        )
        assert result.decisions.get(3) == "z"

    def test_decided_value_was_some_proposal(self):
        pattern = FailurePattern(3, {})
        proposals = {0: "p0", 1: "p1", 2: "p2"}
        result = run_live_consensus(
            ChandraTouegS(), EventuallyPerfect(), pattern, proposals, seed=9
        )
        assert set(result.decisions.values()) <= set(proposals.values())
