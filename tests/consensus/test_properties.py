"""Consensus property verifiers (Section 2.8)."""

from repro.consensus.interface import ConsensusOutcome
from repro.consensus.properties import (
    check_nonuniform_consensus,
    check_uniform_consensus,
)
from repro.kernel.failures import FailurePattern


def outcome(n, crashes, proposals, decisions):
    return ConsensusOutcome(
        n=n,
        pattern=FailurePattern(n, crashes),
        proposals=proposals,
        decisions=decisions,
    )


class TestNonuniform:
    def test_clean_run_passes(self):
        o = outcome(3, {2: 5}, {0: "a", 1: "b", 2: "c"}, {0: "a", 1: "a"})
        assert check_nonuniform_consensus(o).ok

    def test_missing_correct_decision_fails_termination(self):
        o = outcome(3, {}, {p: "v" for p in range(3)}, {0: "v", 1: "v"})
        report = check_nonuniform_consensus(o)
        assert not report.ok
        assert any("termination" in v for v in report.violations)

    def test_faulty_need_not_decide(self):
        o = outcome(3, {2: 5}, {p: "v" for p in range(3)}, {0: "v", 1: "v"})
        assert check_nonuniform_consensus(o).ok

    def test_undecided_ok_when_termination_not_required(self):
        o = outcome(2, {}, {0: "v", 1: "v"}, {})
        assert check_nonuniform_consensus(o, require_termination=False).ok

    def test_unproposed_value_fails_validity(self):
        o = outcome(2, {}, {0: "a", 1: "b"}, {0: "z", 1: "z"})
        report = check_nonuniform_consensus(o)
        assert any("validity" in v for v in report.violations)

    def test_correct_disagreement_fails(self):
        o = outcome(2, {}, {0: "a", 1: "b"}, {0: "a", 1: "b"})
        report = check_nonuniform_consensus(o)
        assert any("nonuniform agreement" in v for v in report.violations)

    def test_faulty_disagreement_tolerated(self):
        """The defining weakening: a faulty decider may deviate."""
        o = outcome(3, {2: 5}, {0: "a", 1: "a", 2: "b"}, {0: "a", 1: "a", 2: "b"})
        assert check_nonuniform_consensus(o).ok
        assert not check_uniform_consensus(o).ok


class TestUniform:
    def test_all_deciders_must_agree(self):
        o = outcome(3, {2: 5}, {p: str(p) for p in range(3)}, {0: "0", 2: "1"})
        report = check_uniform_consensus(o, require_termination=False)
        assert any("uniform agreement" in v for v in report.violations)

    def test_uniform_implies_nonuniform(self):
        o = outcome(3, {2: 5}, {p: "v" for p in range(3)}, {0: "v", 1: "v", 2: "v"})
        assert check_uniform_consensus(o).ok
        assert check_nonuniform_consensus(o).ok


class TestOutcomeHelpers:
    def test_correct_decisions_filter(self):
        o = outcome(3, {2: 0}, {p: "v" for p in range(3)}, {1: "v", 2: "w"})
        assert o.correct_decisions == {1: "v"}
        assert not o.all_correct_decided

    def test_all_correct_decided(self):
        o = outcome(2, {1: 0}, {0: "v", 1: "v"}, {0: "v"})
        assert o.all_correct_decided
