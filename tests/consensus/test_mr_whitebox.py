"""White-box tests of the MR-family phase machines, one transition at a time.

Pure automata make this direct: feed crafted messages and detector values to
``transition`` and inspect the exact sends — the LEAD/REP/PROP choreography
of Section 6.3's description, at message level.
"""

import pytest

from repro.consensus.mostefaoui_raynal import (
    LEAD,
    PROP,
    REP,
    UNKNOWN,
    MostefaouiRaynal,
)
from repro.consensus.quorum_mr import NaiveSigmaNuConsensus, QuorumMR
from repro.kernel.automaton import DeliveredMessage


class Driver:
    def __init__(self, automaton, pid=0, n=3, proposal="v"):
        self.automaton = automaton
        self.pid = pid
        self.n = n
        self.state = automaton.initial_state(pid, n, proposal)
        self.sent = []

    def step(self, msg=None, d=None):
        outcome = self.automaton.transition(self.state, self.pid, msg, d)
        self.state = outcome.state
        self.sent.extend(outcome.sends)
        return outcome.sends

    def deliver(self, sender, payload, d=None):
        return self.step(DeliveredMessage(sender, payload), d)


Q01 = (0, frozenset({0, 1}))  # leader 0, quorum {0,1}


class TestQuorumMRPhases:
    def test_round_opens_with_lead(self):
        driver = Driver(QuorumMR())
        sends = driver.step(d=Q01)
        assert [p for _, p in sends].count((LEAD, 1, "v")) == 3

    def test_adopts_leader_estimate_then_reports(self):
        driver = Driver(QuorumMR())
        driver.step(d=Q01)
        sends = driver.deliver(0, (LEAD, 1, "w"), d=Q01)
        reps = [p for _, p in sends if p[0] == REP]
        assert len(reps) == 3
        assert reps[0] == (REP, 1, "w")
        assert driver.state.x == "w"

    def test_non_leader_lead_ignored(self):
        driver = Driver(QuorumMR())
        driver.step(d=Q01)
        sends = driver.deliver(1, (LEAD, 1, "z"), d=Q01)
        assert all(p[0] != REP for _, p in sends)

    def test_unanimous_reports_propose_value(self):
        driver = Driver(QuorumMR())
        driver.step(d=Q01)
        driver.deliver(0, (LEAD, 1, "v"), d=Q01)
        driver.deliver(0, (REP, 1, "v"), d=Q01)
        sends = driver.deliver(1, (REP, 1, "v"), d=Q01)
        props = [p for _, p in sends if p[0] == PROP]
        assert props and props[0] == (PROP, 1, "v")

    def test_mixed_reports_propose_unknown(self):
        driver = Driver(QuorumMR())
        driver.step(d=Q01)
        driver.deliver(0, (LEAD, 1, "v"), d=Q01)
        driver.deliver(0, (REP, 1, "v"), d=Q01)
        sends = driver.deliver(1, (REP, 1, "x"), d=Q01)
        props = [p for _, p in sends if p[0] == PROP]
        assert props and props[0][2] == UNKNOWN

    def test_unanimous_proposals_decide(self):
        driver = Driver(QuorumMR())
        driver.step(d=Q01)
        driver.deliver(0, (LEAD, 1, "v"), d=Q01)
        driver.deliver(0, (REP, 1, "v"), d=Q01)
        driver.deliver(1, (REP, 1, "v"), d=Q01)
        driver.deliver(0, (PROP, 1, "v"), d=Q01)
        driver.deliver(1, (PROP, 1, "v"), d=Q01)
        assert driver.automaton.decision(driver.state) == "v"

    def test_unknown_proposals_do_not_decide_but_advance(self):
        driver = Driver(QuorumMR())
        driver.step(d=Q01)
        driver.deliver(0, (LEAD, 1, "v"), d=Q01)
        driver.deliver(0, (REP, 1, "v"), d=Q01)
        driver.deliver(1, (REP, 1, "x"), d=Q01)
        driver.deliver(0, (PROP, 1, UNKNOWN), d=Q01)
        sends = driver.deliver(1, (PROP, 1, UNKNOWN), d=Q01)
        assert driver.automaton.decision(driver.state) is None
        assert driver.state.round == 2
        # the new round's LEAD goes out within the same step
        assert any(p == (LEAD, 2, "v") for _, p in sends)

    def test_single_nonunknown_proposal_adopted(self):
        driver = Driver(QuorumMR())
        driver.step(d=Q01)
        driver.deliver(0, (LEAD, 1, "v"), d=Q01)
        driver.deliver(0, (REP, 1, "v"), d=Q01)
        driver.deliver(1, (REP, 1, "x"), d=Q01)
        driver.deliver(0, (PROP, 1, "y"), d=Q01)
        driver.deliver(1, (PROP, 1, UNKNOWN), d=Q01)
        assert driver.state.x == "y"
        assert driver.automaton.decision(driver.state) is None

    def test_quorum_reread_every_step(self):
        """A wait unsatisfied under one quorum completes when the detector
        shrinks the quorum — the `repeat Q <- Sigma_p` semantics."""
        driver = Driver(QuorumMR())
        driver.step(d=Q01)
        driver.deliver(0, (LEAD, 1, "v"), d=Q01)
        driver.deliver(0, (REP, 1, "v"), d=Q01)  # {0,1} needs 1's REP too
        assert driver.state.phase == REP
        sends = driver.step(d=(0, frozenset({0})))  # quorum shrinks to {0}
        assert driver.state.phase == PROP
        assert any(p[0] == PROP for _, p in sends)

    def test_empty_quorum_never_satisfies(self):
        driver = Driver(QuorumMR())
        driver.step(d=Q01)
        driver.deliver(0, (LEAD, 1, "v"), d=Q01)
        driver.deliver(0, (REP, 1, "v"), d=(0, frozenset()))
        assert driver.state.phase == REP

    def test_decided_process_keeps_advancing_rounds(self):
        driver = Driver(QuorumMR(), n=1, pid=0, proposal="s")
        d = (0, frozenset({0}))
        driver.step(d=d)
        driver.deliver(0, (LEAD, 1, "s"), d=d)
        driver.deliver(0, (REP, 1, "s"), d=d)
        driver.deliver(0, (PROP, 1, "s"), d=d)
        assert driver.automaton.decision(driver.state) == "s"
        assert driver.state.round == 2  # still opening new rounds


class TestMostefaouiRaynalMajorities:
    def test_majority_threshold(self):
        automaton = MostefaouiRaynal()
        driver = Driver(automaton, n=5)
        driver.step(d=0)
        driver.deliver(0, (LEAD, 1, "v"), d=0)
        for sender in (0, 1):
            driver.deliver(sender, (REP, 1, "v"), d=0)
        assert driver.state.phase == REP  # 2 < majority(5) = 3
        driver.deliver(2, (REP, 1, "v"), d=0)
        assert driver.state.phase == PROP

    def test_decision_needs_majority_of_same_value(self):
        driver = Driver(MostefaouiRaynal(), n=3)
        driver.step(d=0)
        driver.deliver(0, (LEAD, 1, "v"), d=0)
        driver.deliver(0, (REP, 1, "v"), d=0)
        driver.deliver(1, (REP, 1, "v"), d=0)
        driver.deliver(0, (PROP, 1, "v"), d=0)
        driver.deliver(1, (PROP, 1, "v"), d=0)
        assert driver.automaton.decision(driver.state) == "v"

    def test_snapshot_is_deterministic(self):
        a = Driver(MostefaouiRaynal(), n=3)
        b = Driver(MostefaouiRaynal(), n=3)
        for driver in (a, b):
            driver.step(d=0)
            driver.deliver(0, (LEAD, 1, "v"), d=0)
        auto = MostefaouiRaynal()
        assert auto.snapshot(a.state) == auto.snapshot(b.state)


class TestNaiveVariantSharesTheMachinery:
    def test_identical_text_different_name(self):
        assert NaiveSigmaNuConsensus.__mro__[1] is QuorumMR
        assert NaiveSigmaNuConsensus().name == "naive-sigma-nu"

    def test_decides_through_private_quorum(self):
        """The unsafe power: a self-quorum decides alone immediately."""
        driver = Driver(NaiveSigmaNuConsensus(), pid=2, n=3, proposal="w")
        d = (2, frozenset({2}))
        driver.step(d=d)
        driver.deliver(2, (LEAD, 1, "w"), d=d)
        driver.deliver(2, (REP, 1, "w"), d=d)
        driver.deliver(2, (PROP, 1, "w"), d=d)
        assert driver.automaton.decision(driver.state) == "w"
