"""Full circle: extract Sigma^nu from A_nuc itself.

Theorem 5.4's premise is *any* algorithm A that solves nonuniform consensus
using D.  The paper's own A_nuc (using D = (Omega, Sigma^nu+)) qualifies —
so running T_{D -> Sigma^nu} with A = A_nuc must emit valid Sigma^nu
histories.  A_nuc is a coroutine process, so it enters the construction
through the ReplayAutomaton adapter, which exercises that bridge end to end.

Costly (every simulated step replays a coroutine prefix), so kept small.
"""

import random

import pytest

from repro.core.extraction import ExtractionSearch
from repro.core.nuc import AnucProcess
from repro.detectors import Omega, PairedDetector, SigmaNuPlus
from repro.harness.runner import run_extraction
from repro.kernel.automaton import ReplayAutomaton
from repro.kernel.failures import FailurePattern


@pytest.mark.parametrize(
    "pattern",
    [
        FailurePattern(2, {}),
        FailurePattern(2, {1: 12}),
        FailurePattern(3, {2: 15}),
    ],
    ids=["n2-failfree", "n2-one-crash", "n3-one-crash"],
)
def test_extract_sigma_nu_from_anuc(pattern):
    n = pattern.n
    subject = ReplayAutomaton(lambda proposal: AnucProcess(proposal), n=n)
    detector = PairedDetector(Omega(), SigmaNuPlus())
    outcome = run_extraction(
        subject,
        detector,
        pattern,
        seed=1,
        max_steps=2500,
        min_outputs=2,
        extra_steps=100,
        search=ExtractionSearch(search_growth=40, max_path_len=400),
    )
    assert outcome.result.stop_reason == "stop_condition", (
        pattern,
        {p: len(v) for p, v in outcome.result.outputs.items()},
    )
    assert outcome.sigma_nu_check.ok, outcome.sigma_nu_check.violations[:3]


@pytest.mark.parametrize(
    "pattern",
    [
        FailurePattern(3, {}),
        FailurePattern(3, {0: 10, 1: 20}),
        FailurePattern(4, {2: 15, 3: 25}),
    ],
    ids=["n3-failfree", "n3-minority-correct", "n4-two-crashes"],
)
def test_extract_sigma_nu_from_native_anuc_automaton(pattern):
    """Same full circle through the O(1)-per-step native port, which the
    equivalence suite pins to the coroutine — larger n becomes affordable."""
    from repro.core.nuc_automaton import AnucAutomaton

    n = pattern.n
    detector = PairedDetector(Omega(), SigmaNuPlus())
    outcome = run_extraction(
        AnucAutomaton(),
        detector,
        pattern,
        seed=2,
        max_steps=3000,
        min_outputs=2,
        extra_steps=100,
        search=ExtractionSearch(search_growth=30, max_path_len=500),
    )
    assert outcome.result.stop_reason == "stop_condition", (
        pattern,
        {p: len(v) for p, v in outcome.result.outputs.items()},
    )
    assert outcome.sigma_nu_check.ok, outcome.sigma_nu_check.violations[:3]
