"""The nonuniform/uniform gap, exhibited on A_nuc itself.

A_nuc solves *nonuniform* consensus — and only that: under Sigma^nu+, a
faulty process with a private all-faulty quorum may legally decide a value
the correct processes never adopt.  This test constructs such a run (the
Section 6.3 cast without the contamination attempt): process 2 is faulty
with quorum {2} and trusts itself; processes 0, 1 run normally.  A_nuc
must let 2 decide its own proposal while 0 and 1 agree on theirs —
violating uniform agreement while satisfying nonuniform agreement, which is
precisely why (Omega, Sigma^nu) can be weaker than (Omega, Sigma).
"""

import pytest

from repro.consensus import (
    check_nonuniform_consensus,
    check_uniform_consensus,
    consensus_outcome,
)
from repro.core.nuc import AnucProcess
from repro.detectors import AdaptiveHistory, check_omega, check_sigma_nu_plus
from repro.detectors.checkers import project_history
from repro.kernel.failures import DeferredCrashPattern
from repro.kernel.system import System

PROPOSALS = {0: "v", 1: "v", 2: "w"}


def build_run(seed=0, max_steps=40000):
    pattern = DeferredCrashPattern(3, doomed=[2])
    processes = {p: AnucProcess(PROPOSALS[p]) for p in range(3)}

    def value(p, t):
        if p == 2:
            return (2, frozenset({2}))
        return (0, frozenset({0, 1}))

    history = AdaptiveHistory(3, value)
    system = System(processes, pattern, history, seed=seed)
    for _ in range(max_steps):
        if all(system.contexts[p].decision is not None for p in range(3)):
            break
        if system.step() is None:
            break
    horizon = max(0, system.time - 1)
    pattern.trigger([2], horizon + 1)  # crashes right past the run
    return system, pattern.freeze(horizon), history, horizon


@pytest.fixture(scope="module")
def gap_run():
    return build_run(seed=0)


class TestUniformGap:
    def test_everyone_decides(self, gap_run):
        system, _, _, _ = gap_run
        decisions = {p: system.contexts[p].decision for p in range(3)}
        assert None not in decisions.values(), decisions

    def test_faulty_decides_its_own_value(self, gap_run):
        system, _, _, _ = gap_run
        assert system.contexts[2].decision == "w"

    def test_correct_processes_agree_on_v(self, gap_run):
        system, _, _, _ = gap_run
        assert system.contexts[0].decision == "v"
        assert system.contexts[1].decision == "v"

    def test_nonuniform_holds_uniform_fails(self, gap_run):
        system, frozen, _, _ = gap_run
        result = system.result()
        result = result.__class__(**{**result.__dict__, "pattern": frozen})
        outcome = consensus_outcome(result, PROPOSALS)
        assert check_nonuniform_consensus(outcome).ok
        assert not check_uniform_consensus(outcome).ok

    def test_history_was_legal(self, gap_run):
        """The run is no cheat: the recorded history is valid
        (Omega, Sigma^nu+) for the exhibited pattern."""
        _, frozen, history, horizon = gap_run
        recorded = history.recorded(horizon)
        omega = check_omega(project_history(recorded, 0), frozen, horizon)
        sigma = check_sigma_nu_plus(project_history(recorded, 1), frozen, horizon)
        assert omega.ok, omega.violations
        assert sigma.ok, sigma.violations

    def test_full_sigma_would_reject_this_history(self, gap_run):
        """Under Sigma (uniform intersection) the {2} quorum is illegal —
        the gap in detector strength mirrors the gap in problem strength."""
        from repro.detectors import check_sigma

        _, frozen, history, horizon = gap_run
        recorded = history.recorded(horizon)
        assert not check_sigma(project_history(recorded, 1), frozen, horizon).ok
