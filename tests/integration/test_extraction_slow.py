"""Large-n extraction smoke (``pytest -m slow``).

Excluded from the default run (see ``pyproject.toml``); CI runs it in a
non-blocking job.  The point is scale, not new properties: at n=7 the
chains are far longer than in the n<=4 tier-1 cases, so this exercises the
trie's cache depth and snapshot machinery well past what the fast suite
reaches — and still demands a valid Sigma^nu history.  The search runs in
its single-attempt mode (``minimize_participants=False``): with pivot
quorums averaging ~n/2 members, minimizing over all small subsets at n=7
mostly simulates chains that cannot cover any quorum.
"""

import random

import pytest

from repro.consensus.quorum_mr import QuorumMR
from repro.core.extraction import ExtractionSearch
from repro.detectors import Omega, PairedDetector, Sigma
from repro.harness.runner import run_extraction
from repro.kernel.failures import FailurePattern

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("seed", [0, 1])
def test_extraction_n7_smoke(seed):
    n = 7
    rng = random.Random(seed)
    crashed = rng.sample(range(n), rng.randint(0, 2))
    pattern = FailurePattern(n, {p: rng.randint(0, 40) for p in crashed})
    detector = PairedDetector(Omega(), Sigma("pivot"))
    outcome = run_extraction(
        QuorumMR(),
        detector,
        pattern,
        seed=seed,
        max_steps=8000,
        min_outputs=2,
        search=ExtractionSearch(
            use_trie=True, minimize_participants=False, search_growth=30
        ),
        trace="metrics",
    )
    assert outcome.result.stop_reason == "stop_condition", pattern
    assert outcome.sigma_nu_check.ok, outcome.sigma_nu_check.violations[:2]
    counters = outcome.search_counters
    assert counters is not None and counters["queries"] > 0
    # The whole point of running at this scale: deep cache reuse.
    assert counters["steps_from_cache"] > counters["steps_simulated"]
