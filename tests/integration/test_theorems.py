"""One integration test per paper result — the reproduction's contract.

Each test exercises the full pipeline behind one theorem (or the Section 6.3
scenario) end to end, with the independent checkers as the oracle.  These
are the tests EXPERIMENTS.md points at.
"""

import random

import pytest

from repro.consensus import (
    QuorumMR,
    check_nonuniform_consensus,
    check_uniform_consensus,
    consensus_outcome,
)
from repro.detectors import Omega, PairedDetector, Sigma
from repro.harness.merging import random_mergeable_pair_report
from repro.harness.runner import (
    random_binary_proposals,
    run_boosting,
    run_extraction,
    run_from_scratch_sigma,
    run_nuc,
    run_stack,
)
from repro.kernel.failures import FailurePattern
from repro.separation.adversary import run_partition_adversary
from repro.separation.contamination import run_contamination_scenario
from repro.separation.from_scratch_sigma import FromScratchSigma


def hard_pattern(n, seed):
    """A minority-correct pattern: the regime the paper is about."""
    rng = random.Random(f"hard/{n}/{seed}")
    faulty_count = max(n // 2, min(n - 1, n // 2 + 1))
    crashed = rng.sample(range(n), faulty_count)
    return FailurePattern(n, {p: rng.randint(0, 50) for p in crashed})


class TestLemma22:
    def test_merging_machinery(self):
        for seed in range(4):
            report = random_mergeable_pair_report(n=5, seed=seed)
            assert report.merged_valid and report.states_preserved


class TestTheorem54_Necessity:
    def test_extraction_yields_sigma_nu_in_minority_correct_runs(self):
        detector = PairedDetector(Omega(), Sigma("pivot"))
        for seed in range(2):
            pattern = hard_pattern(4, seed)
            outcome = run_extraction(QuorumMR(), detector, pattern, seed=seed)
            assert outcome.ok, (pattern, outcome.sigma_nu_check.violations[:2])


class TestTheorem58_UniformNecessity:
    def test_same_transformation_yields_full_sigma(self):
        detector = PairedDetector(Omega(), Sigma("pivot"))
        pattern = hard_pattern(3, 1)
        outcome = run_extraction(QuorumMR(), detector, pattern, seed=1)
        assert outcome.sigma_check.ok


class TestTheorem67_Boosting:
    def test_sigma_nu_plus_emulated_in_any_environment(self):
        for seed in range(2):
            pattern = hard_pattern(4, seed + 10)
            outcome = run_boosting(pattern, seed=seed)
            assert outcome.ok, (pattern, outcome.check.violations[:2])


class TestTheorem627_Sufficiency:
    def test_anuc_solves_nonuniform_consensus_minority_correct(self):
        for seed in range(3):
            pattern = hard_pattern(5, seed + 20)
            proposals = random_binary_proposals(5, random.Random(seed))
            outcome = run_nuc(pattern, proposals, seed=seed)
            assert outcome.ok, (pattern, outcome.nonuniform.violations)


class TestTheorem628_FullStack:
    def test_omega_sigma_nu_stack_end_to_end(self):
        for seed in range(2):
            pattern = hard_pattern(4, seed + 30)
            proposals = random_binary_proposals(4, random.Random(seed))
            outcome = run_stack(pattern, proposals, seed=seed)
            assert outcome.ok, (pattern, outcome.nonuniform.violations)
            assert outcome.boosted_check.ok


class TestTheorem71_Separation:
    def test_if_direction_majority(self):
        pattern = FailurePattern(5, {0: 8, 4: 22})
        outcome = run_from_scratch_sigma(5, 2, pattern, seed=0)
        assert outcome.check.ok

    def test_only_if_direction_half_or_more(self):
        verdict = run_partition_adversary(
            lambda pid: FromScratchSigma(4, 2), 4, 2, seed=2
        )
        assert verdict.violated

    def test_boundary_is_exactly_half(self):
        below = run_partition_adversary(
            lambda pid: FromScratchSigma(5, 2), 5, 2, seed=0
        )
        at = run_partition_adversary(
            lambda pid: FromScratchSigma(5, 3), 5, 3, seed=0
        )
        assert not below.violated
        assert at.violated


class TestSection63_Contamination:
    def test_naive_falls_anuc_stands(self):
        naive = run_contamination_scenario("naive", seed=0)
        anuc = run_contamination_scenario("anuc", seed=0)
        assert naive.contaminated and not anuc.contaminated
        assert naive.omega_check.ok and naive.sigma_check.ok
        assert anuc.distrust_events


class TestFootnote5_UniformWithSigma:
    def test_quorum_mr_uniform_any_environment(self):
        from tests.conftest import run_live_consensus

        detector = PairedDetector(Omega(), Sigma("pivot"))
        pattern = hard_pattern(5, 40)
        proposals = random_binary_proposals(5, random.Random(40))
        result = run_live_consensus(
            QuorumMR(), detector, pattern, proposals, seed=40
        )
        outcome = consensus_outcome(result, proposals)
        assert check_uniform_consensus(outcome).ok
