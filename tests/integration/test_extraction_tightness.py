"""Tightness of the necessity transformation: Σν, not Σ.

Theorem 5.8 says T_{D→Σν} yields full Σ when the subject solves *uniform*
consensus.  The converse boundary: with a subject that solves only
*nonuniform* consensus (A_nuc) under a detector history where a faulty
process owns a private quorum, the transformation's output satisfies Σν but
**fails** Σ — the faulty process extracts a deciding schedule in which it
decides alone, and outputs a quorum disjoint from the correct ones.

This is the executable content of "Σν is the weakest you can extract":
the transformation cannot do better than Σν precisely because nonuniform
consensus lets faulty processes decide in isolation.
"""

import pytest

from repro.core.extraction import ExtractionSearch, SigmaNuExtractor
from repro.core.nuc import AnucProcess
from repro.detectors import (
    check_sigma,
    check_sigma_nu,
    recorded_output_history,
)
from repro.detectors.base import FunctionalHistory
from repro.kernel.automaton import ReplayAutomaton
from repro.kernel.failures import FailurePattern
from repro.kernel.messages import CoalescingDelivery
from repro.kernel.system import System


@pytest.fixture(scope="module")
def tight_run():
    """Extraction from A_nuc under a split-quorum (Ω, Σν+) history.

    Process 2 is faulty (crashing late enough to emit quorums); its module
    outputs (2, {2}) — a legal Σν+ history since {2} ⊆ faulty.  Processes
    0 and 1 see (0, {0,1}).
    """
    n = 3
    pattern = FailurePattern(3, {2: 700})

    def value(p, t):
        if p == 2:
            return (2, frozenset({2}))
        return (0, frozenset({0, 1}))

    history = FunctionalHistory(value)
    subject = ReplayAutomaton(lambda proposal: AnucProcess(proposal), n=n)
    processes = {
        p: SigmaNuExtractor(
            subject,
            n,
            search=ExtractionSearch(search_growth=40, max_path_len=400),
        )
        for p in range(n)
    }
    system = System(
        processes,
        pattern,
        history,
        seed=3,
        delivery=CoalescingDelivery(),
    )

    def everyone_output(sys):
        return all(len(sys.contexts[p].outputs) >= 2 for p in range(n))

    result = system.run(max_steps=2200, stop_when=everyone_output, extra_steps=80)
    return pattern, result


class TestExtractionTightness:
    def test_everyone_extracted_quorums(self, tight_run):
        _, result = tight_run
        for p in range(3):
            assert len(result.outputs[p]) >= 2, (
                p,
                {q: len(v) for q, v in result.outputs.items()},
            )

    def test_faulty_process_extracts_its_private_quorum(self, tight_run):
        """Process 2 can decide alone (its A_nuc quorum is {2}), so the
        transformation at 2 discovers the singleton deciding schedules and
        outputs {2}."""
        _, result = tight_run
        quorums = [frozenset(q) for _, q in result.outputs[2][1:]]
        assert frozenset({2}) in quorums

    def test_correct_processes_extract_within_correct(self, tight_run):
        _, result = tight_run
        for p in (0, 1):
            final = frozenset(result.outputs[p][-1][1])
            assert final <= {0, 1}

    def test_output_satisfies_sigma_nu_but_not_sigma(self, tight_run):
        """The payoff: the same O_R passes the Σν checker and fails the Σ
        checker — extraction from a nonuniform-only subject cannot reach Σ."""
        pattern, result = tight_run
        recorded = recorded_output_history(result)
        nu = check_sigma_nu(recorded, pattern, recorded.horizon)
        full = check_sigma(recorded, pattern, recorded.horizon)
        assert nu.ok, nu.violations[:3]
        assert not full.ok
        assert any("intersection" in v for v in full.violations)
