"""Trace analytics: span paths, aggregation, noise-aware diffs, flames."""

from repro.obs.analyze import (
    PathDelta,
    aggregate_paths,
    diff_traces,
    flame_tree,
    render_diff,
    render_flame,
    span_paths,
    top_regressions,
    trace_counters,
)
from repro.obs.export import trace_records
from repro.obs.tracer import Tracer


def _span(sid, name, tick_in, tick_out, parent=None, wall_ms=0.0):
    return {
        "type": "span",
        "sid": sid,
        "parent": parent,
        "name": name,
        "tick_in": tick_in,
        "tick_out": tick_out,
        "attrs": {},
        "wall_ms": wall_ms,
    }


def _metrics(counters):
    return {"type": "metrics", "counters": counters, "gauges": {}, "timers": {}}


def _nested_records():
    """outer(0..20) > mid(2..12) > leaf(4..8); sibling leaf2(12..14)."""
    return [
        {"type": "meta", "schema": "repro-trace/2", "label": "unit", "meta": {}},
        _span(3, "leaf", 4, 8, parent=2, wall_ms=1.0),
        _span(4, "leaf2", 12, 14, parent=2, wall_ms=0.5),
        _span(2, "mid", 2, 12, parent=1, wall_ms=4.0),
        _span(1, "outer", 0, 20, parent=None, wall_ms=10.0),
    ]


class TestSpanPaths:
    def test_paths_join_ancestor_names(self):
        paths = dict(span_paths(_nested_records()))
        # dict keyed by path: leaf2's parent is mid even though its own
        # interval falls outside mid's children-sum
        assert set(paths) == {
            "outer",
            "outer/mid",
            "outer/mid/leaf",
            "outer/mid/leaf2",
        }

    def test_missing_parent_roots_the_path(self):
        records = [_span(7, "orphan", 0, 3, parent=99)]
        assert span_paths(records) == [("orphan", records[0])]

    def test_same_name_under_different_parents_separates(self):
        records = [
            _span(2, "work", 0, 3, parent=1),
            _span(4, "work", 5, 6, parent=3),
            _span(1, "phase_a", 0, 4),
            _span(3, "phase_b", 4, 8),
        ]
        paths = {p for p, _ in span_paths(records)}
        assert paths == {"phase_a", "phase_a/work", "phase_b", "phase_b/work"}


class TestAggregatePaths:
    def test_totals_and_self_ticks(self):
        aggs = aggregate_paths(_nested_records())
        assert aggs["outer"]["total_ticks"] == 20
        assert aggs["outer"]["self_ticks"] == 10  # 20 - mid's 10
        assert aggs["outer/mid"]["total_ticks"] == 10
        assert aggs["outer/mid"]["self_ticks"] == 4  # 10 - (4 + 2)
        assert aggs["outer/mid/leaf"]["self_ticks"] == 4

    def test_self_ticks_clamped_at_zero(self):
        # children's totals exceed the parent's (overlapping siblings)
        records = [
            _span(2, "a", 0, 5, parent=1),
            _span(3, "b", 0, 5, parent=1),
            _span(1, "p", 0, 6),
        ]
        assert aggregate_paths(records)["p"]["self_ticks"] == 0

    def test_repeated_paths_accumulate(self):
        records = [
            _span(1, "work", 0, 3, wall_ms=1.5),
            _span(2, "work", 3, 5, wall_ms=0.25),
        ]
        agg = aggregate_paths(records)["work"]
        assert agg == {
            "count": 2,
            "total_ticks": 5,
            "self_ticks": 5,
            "wall_ms": 1.75,
        }

    def test_counters_read_from_metrics_record(self):
        assert trace_counters([_metrics({"x": 3})]) == {"x": 3}
        assert trace_counters(_nested_records()) == {}


class TestDiff:
    def test_identical_traces_are_tick_exact(self):
        diff = diff_traces(_nested_records(), _nested_records())
        assert diff.tick_exact
        assert diff.significant() == []
        assert diff.counter_deltas == {}

    def test_tick_shift_is_always_significant(self):
        b = _nested_records()
        b[1] = _span(3, "leaf", 4, 9, parent=2, wall_ms=1.0)
        diff = diff_traces(_nested_records(), b)
        assert not diff.tick_exact
        moved = {d.path for d in diff.significant() if d.tick_significant}
        assert "outer/mid/leaf" in moved

    def test_count_shift_is_significant(self):
        b = _nested_records() + [_span(9, "extra", 20, 20)]
        diff = diff_traces(_nested_records(), b)
        assert not diff.tick_exact

    def test_wall_noise_is_tolerated(self):
        b = _nested_records()
        b[4] = _span(1, "outer", 0, 20, parent=None, wall_ms=12.0)  # +2ms
        diff = diff_traces(_nested_records(), b)
        assert diff.tick_exact
        assert diff.significant() == []  # under both tolerances

    def test_wall_shift_beyond_tolerance_flagged(self):
        b = _nested_records()
        b[4] = _span(1, "outer", 0, 20, parent=None, wall_ms=100.0)
        diff = diff_traces(_nested_records(), b)
        assert diff.tick_exact  # wall only — ticks still exact
        flagged = [d for d in diff.significant()]
        assert [d.path for d in flagged] == ["outer"]
        assert flagged[0].wall_significant()
        assert not flagged[0].tick_significant

    def test_tolerances_are_configurable(self):
        b = _nested_records()
        b[4] = _span(1, "outer", 0, 20, parent=None, wall_ms=12.0)
        tight = diff_traces(_nested_records(), b, wall_tol_ms=0.5, wall_rel_tol=0.01)
        assert [d.path for d in tight.significant()] == ["outer"]

    def test_counter_deltas_only_changed(self):
        a = _nested_records() + [_metrics({"same": 5, "moved": 2})]
        b = _nested_records() + [_metrics({"same": 5, "moved": 9, "new": 1})]
        diff = diff_traces(a, b)
        assert diff.counter_deltas == {"moved": (2, 9), "new": (0, 1)}

    def test_labels_from_meta_headers(self):
        diff = diff_traces(_nested_records(), _nested_records())
        assert (diff.label_a, diff.label_b) == ("unit", "unit")


class TestTopRegressions:
    def test_ranked_by_tick_delta_first(self):
        a = [
            _span(1, "small", 0, 2),
            _span(2, "big", 2, 4),
            _span(3, "wallish", 4, 5, wall_ms=1.0),
        ]
        b = [
            _span(1, "small", 0, 3),  # +1 tick
            _span(2, "big", 2, 14),  # +10 ticks
            _span(3, "wallish", 4, 5, wall_ms=400.0),  # wall only
        ]
        ranked = top_regressions(diff_traces(a, b))
        assert [d.path for d in ranked] == ["big", "small", "wallish"]

    def test_top_limits_output(self):
        a = [_span(i, f"s{i}", 0, 1) for i in range(1, 7)]
        b = [_span(i, f"s{i}", 0, 2 + i) for i in range(1, 7)]
        assert len(top_regressions(diff_traces(a, b), top=3)) == 3


class TestRenderDiff:
    def test_exact_banner_on_same_seed(self):
        out = render_diff(diff_traces(_nested_records(), _nested_records()))
        assert "EXACT" in out
        assert "4 compared, 0 differ" in out

    def test_signal_column_distinguishes_ticks_and_wall(self):
        b = _nested_records()
        b[1] = _span(3, "leaf", 4, 9, parent=2, wall_ms=1.0)
        b[4] = _span(1, "outer", 0, 20, parent=None, wall_ms=500.0)
        out = render_diff(diff_traces(_nested_records(), b))
        assert "ticks" in out and "wall" in out

    def test_show_all_includes_unchanged_paths(self):
        out = render_diff(
            diff_traces(_nested_records(), _nested_records()), show_all=True
        )
        assert "outer/mid/leaf2" in out


class TestFlame:
    def test_tree_mirrors_paths(self):
        root = flame_tree(_nested_records())
        assert set(root.children) == {"outer"}
        mid = root.children["outer"].children["mid"]
        assert set(mid.children) == {"leaf", "leaf2"}
        assert mid.ticks == 10

    def test_render_contains_bars_and_counts(self):
        out = render_flame(_nested_records(), width=20)
        assert "flame (ticks" in out
        assert "#" in out
        assert "x1" in out

    def test_zero_tick_trace_falls_back_to_wall(self):
        records = [_span(1, "instant", 3, 3, wall_ms=7.0)]
        out = render_flame(records)
        assert "flame (wall" in out

    def test_no_spans(self):
        assert render_flame([]) == "(no spans)"

    def test_truncation_notice(self):
        records = [_span(i, f"s{i}", 0, 1) for i in range(1, 20)]
        out = render_flame(records, max_rows=5)
        assert "truncated at 5 rows" in out

    def test_real_tracer_records_flow_through(self):
        tracer = Tracer("unit")
        with tracer.span("outer", clock=iter([0, 2, 6, 9]).__next__):
            with tracer.span("inner"):
                pass
        records = trace_records(tracer)
        assert aggregate_paths(records)["outer/inner"]["total_ticks"] == 4
        assert "outer" in render_flame(records)


class TestPathDelta:
    def test_wall_significance_uses_max_of_tolerances(self):
        d = PathDelta(
            path="p", count_a=1, count_b=1, ticks_a=0, ticks_b=0,
            self_a=0, self_b=0, wall_a=100.0, wall_b=110.0,
        )
        # 10ms > 5ms absolute floor but within 25% relative tolerance
        assert not d.wall_significant()
        assert d.wall_significant(tol_ms=1.0, rel_tol=0.01)
