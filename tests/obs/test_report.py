"""The HTML run observatory: sparklines, history loading, assembly."""

import json

from repro.obs.export import write_trace
from repro.obs.report import (
    build_report,
    load_kernel_history,
    svg_sparkline,
    write_report,
)
from repro.obs.tracer import Tracer


def _trace_file(tmp_path, label="unit", name="t.jsonl"):
    tracer = Tracer(label)
    with tracer.span("outer", clock=iter([0, 3, 7, 9]).__next__):
        with tracer.span("inner"):
            pass
    path = str(tmp_path / name)
    write_trace(path, tracer)
    return path


def _bench_report(generated_at, sha, steps):
    return {
        "schema": "bench-kernel/2",
        "generated_at": generated_at,
        "environment": {"git_sha": sha},
        "kernel": {
            "full": {"steps_per_sec": steps},
            "metrics": {"steps_per_sec": steps * 2},
        },
        "obs": {
            "off": {"steps_per_sec": steps * 2},
            "on": {"steps_per_sec": steps},
            "overhead_pct": 100.0,
        },
    }


class TestSparkline:
    def test_empty_series(self):
        assert "no data" in svg_sparkline([])

    def test_single_point_still_draws(self):
        svg = svg_sparkline([5.0])
        assert svg.startswith("<svg")
        assert "polyline" in svg

    def test_labels_become_a_tooltip(self):
        svg = svg_sparkline([1, 2], labels=["a", "b"])
        assert "<title>a: 1 | b: 2</title>" in svg

    def test_flat_series_does_not_divide_by_zero(self):
        assert "<svg" in svg_sparkline([3, 3, 3])


class TestKernelHistory:
    def test_shelf_reports_sorted_with_committed_appended(self, tmp_path):
        from repro.store import ResultStore

        store = ResultStore(str(tmp_path / "store"))
        store.put_bench("kernel", _bench_report("2026-01-02T00:00:00Z", "b" * 12, 200))
        store.put_bench("kernel", _bench_report("2026-01-01T00:00:00Z", "a" * 12, 100))
        committed = _bench_report("2026-01-03T00:00:00Z", "c" * 12, 300)
        history = load_kernel_history(committed, store.root)
        assert [r["environment"]["git_sha"][:1] for r in history] == ["a", "b", "c"]

    def test_committed_not_duplicated_when_shelved(self, tmp_path):
        from repro.store import ResultStore

        store = ResultStore(str(tmp_path / "store"))
        report = _bench_report("2026-01-01T00:00:00Z", "a" * 12, 100)
        store.put_bench("kernel", report)
        assert len(load_kernel_history(report, store.root)) == 1

    def test_no_store_no_committed(self):
        assert load_kernel_history(None, None) == []


class TestBuildReport:
    def test_trace_section_and_trajectory(self, tmp_path):
        trace = _trace_file(tmp_path)
        bench = tmp_path / "BENCH_kernel.json"
        bench.write_text(
            json.dumps(_bench_report("2026-01-01T00:00:00Z", "a" * 12, 100))
        )
        html_doc = build_report(
            traces=[trace], bench_kernel=str(bench), title="obs unit"
        )
        assert html_doc.startswith("<!DOCTYPE html>")
        assert "obs unit" in html_doc
        assert "outer/inner" in html_doc
        assert "flamegraph" in html_doc
        assert "tracing-off micro-bench" in html_doc
        assert "<svg" in html_doc

    def test_missing_inputs_never_fail(self, tmp_path):
        html_doc = build_report(
            traces=[str(tmp_path / "absent.jsonl")],
            bench_kernel=str(tmp_path / "absent.json"),
            bench_extraction=str(tmp_path / "absent2.json"),
            store_dir=str(tmp_path / "no-store"),
        )
        assert "skipped: unreadable" in html_doc
        assert "no bench-kernel reports found" in html_doc

    def test_invalid_trace_is_skipped_with_reason(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span", "sid": 0}\n')
        html_doc = build_report(traces=[str(bad)])
        assert "schema error" in html_doc

    def test_labels_are_escaped(self, tmp_path):
        trace = _trace_file(tmp_path, label="<script>alert(1)</script>")
        html_doc = build_report(traces=[trace])
        assert "<script>" not in html_doc
        assert "&lt;script&gt;" in html_doc

    def test_extraction_totals_rendered(self, tmp_path):
        extraction = tmp_path / "BENCH_extraction.json"
        extraction.write_text(
            json.dumps(
                {
                    "generated_at": "2026-01-01T00:00:00Z",
                    "totals": {"scratch_s": 4.5, "trie_s": 0.9, "speedup": 5.0},
                }
            )
        )
        html_doc = build_report(bench_extraction=str(extraction))
        assert "extraction backends" in html_doc
        assert "4.5" in html_doc and "0.9" in html_doc

    def test_write_report_writes_the_document(self, tmp_path):
        out = tmp_path / "report.html"
        assert write_report(str(out)) == str(out)
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_store_history_sparkline_spans_commits(self, tmp_path):
        from repro.store import ResultStore

        store = ResultStore(str(tmp_path / "store"))
        for day, sha, steps in (
            ("2026-01-01T00:00:00Z", "a" * 12, 100),
            ("2026-01-02T00:00:00Z", "b" * 12, 130),
        ):
            store.put_bench("kernel", _bench_report(day, sha, steps))
        html_doc = build_report(store_dir=store.root)
        assert "2026-01-01 aaaaaaaa" in html_doc
        assert "2026-01-02 bbbbbbbb" in html_doc
        assert "tracing overhead" in html_doc
