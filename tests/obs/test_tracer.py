"""The span/event tracer: nesting, clocks, sid ordering, null tracer."""

from repro import obs
from repro.obs.tracer import NULL_TRACER, Tracer


class TestSpans:
    def test_span_record_fields(self):
        tracer = Tracer("t")
        with tracer.span("work", tick=5, kind="unit") as span:
            span.set(extra=1)
        [record] = tracer.records
        assert record["type"] == "span"
        assert record["sid"] == 1
        assert record["parent"] is None
        assert record["name"] == "work"
        assert record["tick_in"] == 5
        assert record["tick_out"] == 5
        assert record["attrs"] == {"kind": "unit", "extra": 1}
        assert isinstance(record["wall_ms"], float)

    def test_nesting_parent_links_and_close_order(self):
        tracer = Tracer("t")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent"] == outer["sid"]
        # sids are assigned at open: outer opened first
        assert outer["sid"] < inner["sid"]

    def test_clock_drives_ticks(self):
        tracer = Tracer("t")
        clock = iter([10, 17]).__next__
        with tracer.span("run", clock=clock):
            pass
        [record] = tracer.records
        assert (record["tick_in"], record["tick_out"]) == (10, 17)

    def test_nested_span_inherits_ambient_clock(self):
        tracer = Tracer("t")
        ticks = iter([1, 2, 3, 4]).__next__
        with tracer.span("outer", clock=ticks):
            with tracer.span("inner"):
                pass
        inner = tracer.records[0]
        assert inner["tick_in"] == 2
        assert inner["tick_out"] == 3

    def test_clockless_span_inherits_child_high_water(self):
        tracer = Tracer("t")
        with tracer.span("outer"):
            with tracer.span("inner", clock=iter([3, 90]).__next__):
                pass
        inner, outer = tracer.records
        assert inner["tick_out"] == 90
        assert outer["tick_in"] == 0
        assert outer["tick_out"] == 90

    def test_tick_out_never_below_tick_in(self):
        tracer = Tracer("t")
        with tracer.span("run", clock=iter([9, 4]).__next__):
            pass
        [record] = tracer.records
        assert record["tick_out"] == 9

    def test_sibling_spans_do_not_leak_high_water(self):
        tracer = Tracer("t")
        with tracer.span("first", clock=iter([0, 50]).__next__):
            pass
        with tracer.span("second"):
            pass
        second = tracer.records[1]
        assert (second["tick_in"], second["tick_out"]) == (0, 0)


class TestEvents:
    def test_event_attaches_to_open_span(self):
        tracer = Tracer("t")
        with tracer.span("outer", clock=iter([2, 5, 8]).__next__):
            tracer.event("hit", value=42)
        event, span = tracer.records
        assert event["type"] == "event"
        assert event["span"] == span["sid"]
        assert event["tick"] == 5
        assert event["attrs"] == {"value": 42}

    def test_event_outside_any_span(self):
        tracer = Tracer("t")
        tracer.event("lonely", tick=3)
        [event] = tracer.records
        assert event["span"] is None
        assert event["tick"] == 3

    def test_sids_total_order_spans_and_events(self):
        tracer = Tracer("t")
        with tracer.span("a"):
            tracer.event("e1")
        tracer.event("e2")
        sids = [r["sid"] for r in tracer.records]
        assert sorted(sids) == [1, 2, 3]
        assert len(set(sids)) == 3

    def test_filters(self):
        tracer = Tracer("t")
        with tracer.span("a"):
            tracer.event("e")
        assert [r["name"] for r in tracer.spans()] == ["a"]
        assert [r["name"] for r in tracer.events()] == ["e"]


class TestNullTracer:
    def test_all_operations_are_noops(self):
        with NULL_TRACER.span("anything", tick=3, attr=1) as span:
            span.set(more=2)
        NULL_TRACER.event("thing")
        assert NULL_TRACER.records == []
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.now() == 0


class TestModuleState:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.tracer() is NULL_TRACER

    def test_enable_disable_roundtrip(self):
        tracer = obs.enable("unit")
        assert obs.enabled()
        assert obs.tracer() is tracer
        returned = obs.disable()
        assert returned is tracer
        assert not obs.enabled()
        assert obs.tracer() is NULL_TRACER

    def test_tracing_context_manager_always_disables(self):
        try:
            with obs.tracing("boom") as tracer:
                assert obs.tracer() is tracer
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert not obs.enabled()

    def test_enable_fresh_metrics_clears_registry(self):
        obs.metrics().inc("stale")
        obs.enable("unit")
        assert obs.metrics().counters() == {}
        obs.disable()

    def test_enable_keep_metrics(self):
        obs.metrics().inc("kept")
        obs.enable("unit", fresh_metrics=False)
        assert obs.metrics().counters() == {"kept": 1}
        obs.disable()
