"""Obs test fixtures: every test leaves tracing disabled and metrics clean."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _obs_clean():
    obs.disable()
    obs.reset_metrics()
    yield
    obs.disable()
    obs.reset_metrics()
