"""Oracle: tracing on and off must produce bit-identical runs.

The tracer reads logical clocks and counts work but never draws from a
run's RNG or touches scheduling, so the same (configuration, seed) must
yield the exact same step trace with instrumentation enabled.
"""

import random
import re

from repro import obs
from repro.consensus.quorum_mr import QuorumMR
from repro.detectors import Omega, PairedDetector, Sigma
from repro.harness.runner import (
    random_binary_proposals,
    random_pattern,
    run_extraction,
    run_nuc,
)


def _fingerprint(result):
    """Everything deterministic about a full-trace run, repr-flattened."""
    return {
        "stop_reason": result.stop_reason,
        "decisions": dict(result.decisions),
        "decision_times": dict(result.decision_times),
        "steps": result.step_count,
        "final_time": result.final_time,
        "messages": (result.messages_sent, result.messages_delivered),
        # default object reprs embed memory addresses; mask them
        "records": [
            re.sub(r"0x[0-9a-f]+", "0x..", repr(s)) for s in result.steps
        ],
    }


def _nuc_outcome():
    rng = random.Random(7)
    pattern = random_pattern(4, rng)
    proposals = random_binary_proposals(4, rng)
    return run_nuc(pattern, proposals, seed=7, trace="full")


def _extraction_outcome():
    rng = random.Random(3)
    pattern = random_pattern(3, rng, max_faulty=1)
    return run_extraction(
        QuorumMR(),
        PairedDetector(Omega(), Sigma("pivot")),
        pattern,
        seed=3,
        trace="full",
    )


class TestBitIdentical:
    def test_nuc_run_unchanged_by_tracing(self):
        baseline = _nuc_outcome()
        with obs.tracing("equiv") as tracer:
            traced = _nuc_outcome()
        assert _fingerprint(traced.result) == _fingerprint(baseline.result)
        # and the trace actually observed the run
        assert any(s["name"] == "kernel.run" for s in tracer.spans())
        assert any(s["name"] == "runner.nuc" for s in tracer.spans())

    def test_extraction_run_unchanged_by_tracing(self):
        baseline = _extraction_outcome()
        with obs.tracing("equiv") as tracer:
            traced = _extraction_outcome()
        assert _fingerprint(traced.result) == _fingerprint(baseline.result)
        assert traced.search_counters == baseline.search_counters
        assert traced.sigma_nu_check.ok == baseline.sigma_nu_check.ok
        assert any(s["name"] == "extract.search_tick" for s in tracer.spans())

    def test_tracing_twice_gives_identical_trace_ticks(self):
        """Determinism of the trace itself: ticks and counters reproduce."""

        def deterministic(records):
            return [
                (r["type"], r["name"], r.get("tick_in"), r.get("tick_out"),
                 r.get("tick"))
                for r in records
            ]

        with obs.tracing("a") as t1:
            _nuc_outcome()
        counters1 = dict(obs.metrics().counters())
        with obs.tracing("b") as t2:
            _nuc_outcome()
        assert deterministic(t1.records) == deterministic(t2.records)
        assert dict(obs.metrics().counters()) == counters1


class TestMetricsContent:
    def test_kernel_counters_recorded(self):
        with obs.tracing("m"):
            outcome = _nuc_outcome()
        counters = obs.metrics().counters()
        assert counters["kernel.runs"] == 1
        assert counters["runner.nuc"] == 1
        assert counters["kernel.steps"] == outcome.result.step_count
        assert counters["kernel.messages_sent"] == outcome.result.messages_sent

    def test_search_counters_absorbed_under_prefix(self):
        with obs.tracing("m"):
            outcome = _extraction_outcome()
        counters = obs.metrics().counters()
        assert outcome.search_counters  # the trie search publishes work
        for key, value in outcome.search_counters.items():
            assert counters[f"search.{key}"] == value
