"""JSONL export: round-trip, schema validation/migration, environment stamp."""

import json
import os

from repro.obs.export import (
    SCHEMA,
    SCHEMA_V2,
    environment_stamp,
    read_trace,
    trace_records,
    validate_trace,
    write_trace,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def _sample_tracer():
    tracer = Tracer("unit", meta={"case": 1})
    with tracer.span("outer", clock=iter([0, 5, 9, 12, 20]).__next__):
        tracer.event("ping", value=3)
        with tracer.span("inner"):
            pass
    return tracer


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tracer = _sample_tracer()
        reg = MetricsRegistry()
        reg.inc("work", 7)
        count = write_trace(path, tracer, registry=reg)
        records = read_trace(path)
        # meta + event + 2 spans + paths + metrics under the /2 default
        assert len(records) == count == 6
        assert validate_trace(records) == []
        assert records[0]["schema"] == SCHEMA_V2
        assert records[0]["label"] == "unit"
        assert records[0]["meta"] == {"case": 1}
        assert records[-1]["counters"] == {"work": 7}
        paths = next(r for r in records if r["type"] == "paths")
        assert set(paths["paths"]) == {"outer", "outer/inner"}

    def test_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_trace(path, _sample_tracer())
        with open(path) as fh:
            for line in fh:
                json.loads(line)

    def test_unjsonable_attrs_degrade_to_repr(self, tmp_path):
        tracer = Tracer("unit")
        with tracer.span("s", quorum=frozenset({2, 0, 1}), obj=object()):
            pass
        path = str(tmp_path / "t.jsonl")
        write_trace(path, tracer)
        attrs = read_trace(path)[1]["attrs"]
        assert attrs["quorum"] == [0, 1, 2]
        assert attrs["obj"].startswith("<object object")

    def test_extra_meta_merges_into_header(self):
        records = trace_records(_sample_tracer(), meta={"run": "x"})
        assert records[0]["meta"] == {"case": 1, "run": "x"}


class TestValidation:
    def test_empty_is_invalid(self):
        assert validate_trace([]) != []

    def test_missing_header(self):
        records = trace_records(_sample_tracer())[1:]
        assert any("meta" in e for e in validate_trace(records))

    def test_wrong_schema(self):
        records = trace_records(_sample_tracer())
        records[0]["schema"] = "repro-trace/999"
        assert any("schema" in e for e in validate_trace(records))

    def test_duplicate_sid(self):
        records = trace_records(_sample_tracer())
        spans = [r for r in records if r["type"] == "span"]
        spans[1]["sid"] = spans[0]["sid"]
        assert any("duplicate sid" in e for e in validate_trace(records))

    def test_dangling_parent(self):
        records = trace_records(_sample_tracer())
        next(r for r in records if r["type"] == "span")["parent"] = 999
        assert any("parent" in e for e in validate_trace(records))

    def test_tick_out_before_tick_in(self):
        records = trace_records(_sample_tracer())
        span = next(r for r in records if r["type"] == "span")
        span["tick_out"] = span["tick_in"] - 1
        assert any("tick_out" in e for e in validate_trace(records))

    def test_unknown_record_type(self):
        records = trace_records(_sample_tracer())
        records.append({"type": "mystery"})
        assert any("unknown record type" in e for e in validate_trace(records))

    def test_two_metrics_records(self):
        reg = MetricsRegistry()
        records = trace_records(_sample_tracer(), registry=reg)
        records.append({"type": "metrics", **reg.snapshot()})
        assert any("metrics records" in e for e in validate_trace(records))

    def test_event_tick_must_be_int(self):
        records = trace_records(_sample_tracer())
        next(r for r in records if r["type"] == "event")["tick"] = "soon"
        assert any("tick" in e for e in validate_trace(records))


class TestSchemaMigration:
    """``/1`` files stay readable forever; ``/2`` adds only ``paths``."""

    def test_committed_v1_fixture_still_validates(self):
        # The fixture was written by the /1-era exporter (wall times
        # zeroed for determinism) and pins backward compatibility: a
        # reader or validator change that rejects it is a regression.
        records = read_trace(os.path.join(FIXTURES, "trace_v1.jsonl"))
        assert records[0]["schema"] == SCHEMA
        assert validate_trace(records) == []
        assert [r["type"] for r in records] == [
            "meta", "event", "span", "span", "metrics",
        ]
        assert records[-1]["counters"] == {"work": 7}

    def test_v1_writer_round_trips_without_paths(self, tmp_path):
        path = str(tmp_path / "v1.jsonl")
        write_trace(path, _sample_tracer(), schema=SCHEMA)
        records = read_trace(path)
        assert records[0]["schema"] == SCHEMA
        assert all(r["type"] != "paths" for r in records)
        assert validate_trace(records) == []

    def test_unknown_schema_rejected_at_write(self):
        import pytest

        with pytest.raises(ValueError, match="unknown trace schema"):
            trace_records(_sample_tracer(), schema="repro-trace/999")

    def test_paths_record_under_v1_header_is_error(self):
        records = trace_records(_sample_tracer(), schema=SCHEMA)
        records.append(
            {
                "type": "paths",
                "paths": {
                    "outer": {
                        "count": 1,
                        "total_ticks": 20,
                        "self_ticks": 17,
                        "wall_ms": 0.0,
                    }
                },
            }
        )
        assert any("paths records need schema" in e for e in validate_trace(records))

    def test_two_paths_records_is_error(self):
        records = trace_records(_sample_tracer())
        paths = next(r for r in records if r["type"] == "paths")
        records.append(dict(paths))
        assert any("paths records" in e for e in validate_trace(records))

    def test_malformed_paths_aggregate_is_error(self):
        records = trace_records(_sample_tracer())
        paths = next(r for r in records if r["type"] == "paths")
        paths["paths"]["outer"] = {"count": 1}
        assert any("aggregate must carry" in e for e in validate_trace(records))

    def test_analysis_identical_across_schemas(self, tmp_path):
        # aggregate_paths recomputes from span records, so a /1 file
        # analyzes exactly like the same trace written as /2.
        from repro.obs.analyze import aggregate_paths

        tracer = _sample_tracer()
        v1, v2 = str(tmp_path / "v1.jsonl"), str(tmp_path / "v2.jsonl")
        write_trace(v1, tracer, schema=SCHEMA)
        write_trace(v2, tracer, schema=SCHEMA_V2)
        assert aggregate_paths(read_trace(v1)) == aggregate_paths(read_trace(v2))
        stored = next(r for r in read_trace(v2) if r["type"] == "paths")
        assert stored["paths"] == aggregate_paths(read_trace(v1))


class TestEnvironmentStamp:
    def test_required_keys(self):
        stamp = environment_stamp()
        assert set(stamp) == {
            "git_sha", "python", "platform", "cpu_count", "cpu_affinity"
        }
        assert stamp["cpu_count"] >= 1

    def test_git_sha_none_outside_work_tree(self, tmp_path):
        stamp = environment_stamp(repo_root=str(tmp_path))
        assert stamp["git_sha"] is None
