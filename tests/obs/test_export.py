"""JSONL export: round-trip, schema validation, environment stamp."""

import json

from repro.obs.export import (
    SCHEMA,
    environment_stamp,
    read_trace,
    trace_records,
    validate_trace,
    write_trace,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer


def _sample_tracer():
    tracer = Tracer("unit", meta={"case": 1})
    with tracer.span("outer", clock=iter([0, 5, 9, 12, 20]).__next__):
        tracer.event("ping", value=3)
        with tracer.span("inner"):
            pass
    return tracer


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        tracer = _sample_tracer()
        reg = MetricsRegistry()
        reg.inc("work", 7)
        count = write_trace(path, tracer, registry=reg)
        records = read_trace(path)
        assert len(records) == count == 5  # meta + event + 2 spans + metrics
        assert validate_trace(records) == []
        assert records[0]["schema"] == SCHEMA
        assert records[0]["label"] == "unit"
        assert records[0]["meta"] == {"case": 1}
        assert records[-1]["counters"] == {"work": 7}

    def test_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_trace(path, _sample_tracer())
        with open(path) as fh:
            for line in fh:
                json.loads(line)

    def test_unjsonable_attrs_degrade_to_repr(self, tmp_path):
        tracer = Tracer("unit")
        with tracer.span("s", quorum=frozenset({2, 0, 1}), obj=object()):
            pass
        path = str(tmp_path / "t.jsonl")
        write_trace(path, tracer)
        attrs = read_trace(path)[1]["attrs"]
        assert attrs["quorum"] == [0, 1, 2]
        assert attrs["obj"].startswith("<object object")

    def test_extra_meta_merges_into_header(self):
        records = trace_records(_sample_tracer(), meta={"run": "x"})
        assert records[0]["meta"] == {"case": 1, "run": "x"}


class TestValidation:
    def test_empty_is_invalid(self):
        assert validate_trace([]) != []

    def test_missing_header(self):
        records = trace_records(_sample_tracer())[1:]
        assert any("meta" in e for e in validate_trace(records))

    def test_wrong_schema(self):
        records = trace_records(_sample_tracer())
        records[0]["schema"] = "repro-trace/999"
        assert any("schema" in e for e in validate_trace(records))

    def test_duplicate_sid(self):
        records = trace_records(_sample_tracer())
        spans = [r for r in records if r["type"] == "span"]
        spans[1]["sid"] = spans[0]["sid"]
        assert any("duplicate sid" in e for e in validate_trace(records))

    def test_dangling_parent(self):
        records = trace_records(_sample_tracer())
        next(r for r in records if r["type"] == "span")["parent"] = 999
        assert any("parent" in e for e in validate_trace(records))

    def test_tick_out_before_tick_in(self):
        records = trace_records(_sample_tracer())
        span = next(r for r in records if r["type"] == "span")
        span["tick_out"] = span["tick_in"] - 1
        assert any("tick_out" in e for e in validate_trace(records))

    def test_unknown_record_type(self):
        records = trace_records(_sample_tracer())
        records.append({"type": "mystery"})
        assert any("unknown record type" in e for e in validate_trace(records))

    def test_two_metrics_records(self):
        reg = MetricsRegistry()
        records = trace_records(_sample_tracer(), registry=reg)
        records.append({"type": "metrics", **reg.snapshot()})
        assert any("metrics records" in e for e in validate_trace(records))

    def test_event_tick_must_be_int(self):
        records = trace_records(_sample_tracer())
        next(r for r in records if r["type"] == "event")["tick"] = "soon"
        assert any("tick" in e for e in validate_trace(records))


class TestEnvironmentStamp:
    def test_required_keys(self):
        stamp = environment_stamp()
        assert set(stamp) == {
            "git_sha", "python", "platform", "cpu_count", "cpu_affinity"
        }
        assert stamp["cpu_count"] >= 1

    def test_git_sha_none_outside_work_tree(self, tmp_path):
        stamp = environment_stamp(repo_root=str(tmp_path))
        assert stamp["git_sha"] is None
