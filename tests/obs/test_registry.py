"""The metrics registry: semantics of each kind and the merge contract."""

import pytest

from repro.obs.registry import MetricsRegistry, merge_snapshots


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counters() == {"a": 5}

    def test_absorb_sums_plain_dicts(self):
        reg = MetricsRegistry()
        reg.absorb({"x": 2, "y": 1})
        reg.absorb({"x": 3}, prefix="search.")
        assert reg.counters() == {"x": 2, "y": 1, "search.x": 3}

    def test_absorb_none_and_empty_are_noops(self):
        reg = MetricsRegistry()
        reg.absorb(None)
        reg.absorb({})
        assert reg.counters() == {}


class TestGauges:
    def test_gauge_keeps_high_water(self):
        reg = MetricsRegistry()
        reg.gauge("depth", 5)
        reg.gauge("depth", 3)
        reg.gauge("depth", 9)
        assert reg.snapshot()["gauges"] == {"depth": 9}


class TestTimers:
    def test_timer_counts_and_accumulates(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        with reg.timer("t"):
            pass
        [(count, total)] = reg.snapshot()["timers"].values()
        assert count == 2
        assert total >= 0.0

    def test_timer_records_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            with reg.timer("t"):
                raise ValueError("x")
        assert reg.snapshot()["timers"]["t"][0] == 1


class TestSnapshotDelta:
    def test_delta_since_subtracts_counters(self):
        reg = MetricsRegistry()
        reg.inc("a", 2)
        before = reg.snapshot()
        reg.inc("a", 3)
        reg.inc("b")
        delta = reg.delta_since(before)
        assert delta["counters"] == {"a": 3, "b": 1}

    def test_delta_drops_unchanged_keys(self):
        reg = MetricsRegistry()
        reg.inc("quiet", 7)
        delta = reg.delta_since(reg.snapshot())
        assert delta["counters"] == {}
        assert delta["timers"] == {}

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.inc("a")
        snap = reg.snapshot()
        reg.inc("a")
        assert snap["counters"] == {"a": 1}


class TestMerge:
    def test_merge_parity_inline_vs_sharded(self):
        """Counter sums and gauge maxes commute: any sharding of the same
        work merges to the registry an inline run would have built."""

        def work(reg, shard):
            for i in range(4):
                reg.inc("calls")
                reg.inc(f"shard.{shard}", i)
                reg.gauge("peak", shard * 10 + i)

        inline = MetricsRegistry()
        for shard in (1, 2, 3):
            work(inline, shard)

        shards = []
        for shard in (1, 2, 3):
            reg = MetricsRegistry()
            work(reg, shard)
            shards.append(reg.snapshot())
        merged = merge_snapshots(shards)

        assert merged["counters"] == inline.snapshot()["counters"]
        assert merged["gauges"] == inline.snapshot()["gauges"]

    def test_merge_timers_elementwise(self):
        a = MetricsRegistry()
        with a.timer("t"):
            pass
        b = MetricsRegistry()
        with b.timer("t"):
            pass
        a.merge(b.snapshot())
        assert a.snapshot()["timers"]["t"][0] == 2

    def test_merge_order_irrelevant(self):
        snaps = []
        for value in (3, 1, 2):
            reg = MetricsRegistry()
            reg.inc("n", value)
            reg.gauge("g", value)
            snaps.append(reg.snapshot())
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(list(reversed(snaps)))
        assert forward == backward


class TestHousekeeping:
    def test_clear_and_len(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.gauge("g", 1)
        with reg.timer("t"):
            pass
        assert len(reg) == 3
        reg.clear()
        assert len(reg) == 0

    def test_repr(self):
        reg = MetricsRegistry()
        reg.inc("a")
        assert "counters=1" in repr(reg)
