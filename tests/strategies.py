"""Shared hypothesis strategies for the property-test suites."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.kernel.failures import FailurePattern


@st.composite
def failure_patterns(draw, min_n=2, max_n=6, max_crash_time=50, min_correct=1):
    """A random failure pattern with at least ``min_correct`` correct."""
    n = draw(st.integers(min_n, max_n))
    max_faulty = n - min_correct
    faulty_count = draw(st.integers(0, max_faulty))
    crashed = draw(
        st.lists(
            st.integers(0, n - 1),
            min_size=faulty_count,
            max_size=faulty_count,
            unique=True,
        )
    )
    times = {
        p: draw(st.integers(0, max_crash_time), label=f"crash_time[{p}]")
        for p in crashed
    }
    return FailurePattern(n, times)


@st.composite
def quorums(draw, n, nonempty=True):
    members = draw(
        st.lists(st.integers(0, n - 1), min_size=1 if nonempty else 0, unique=True)
    )
    return frozenset(members)


@st.composite
def binary_proposals(draw, n):
    return {p: draw(st.sampled_from([0, 1])) for p in range(n)}


@st.composite
def quorum_families(draw, pattern, intersecting=True):
    """Per-process quorum families over ``pattern``'s processes.

    With ``intersecting=True`` every quorum contains a common pivot drawn
    from the correct set (the Sigma-style uniform-intersection shape);
    otherwise quorums are arbitrary nonempty subsets — useful as the
    *rejected* side of checker tests.
    """
    n = pattern.n
    pivot = draw(st.sampled_from(sorted(pattern.correct))) if intersecting else None
    family = {}
    for p in range(n):
        count = draw(st.integers(1, 2))
        quorums = []
        for _ in range(count):
            members = set(
                draw(
                    st.lists(
                        st.integers(0, n - 1),
                        min_size=1,
                        max_size=n,
                        unique=True,
                    )
                )
            )
            if intersecting:
                members.add(pivot)
            quorums.append(frozenset(members))
        family[p] = frozenset(quorums)
    return family


@st.composite
def detector_histories(draw, detector_factory, pattern=None, **pattern_kwargs):
    """``(pattern, history)`` sampled from a detector module.

    ``detector_factory`` is a zero-argument callable (e.g. ``Sigma`` or a
    chaos-matrix factory); the sampling RNG is seeded from a drawn integer
    so hypothesis can shrink over it.
    """
    if pattern is None:
        pattern = draw(failure_patterns(**pattern_kwargs))
    seed = draw(st.integers(0, 10**6))
    history = detector_factory().sample_history(pattern, random.Random(seed))
    return pattern, history


@st.composite
def fuzz_cases(draw, config="hypothesis", ns=(3, 4, 5), max_steps=2000, **kwargs):
    """A chaos :class:`~repro.chaos.space.FuzzCase` via its own drawing
    code, indexed by a hypothesis-drawn (seed, index) pair — so shrinking
    walks the same deterministic case space the fuzzer explores."""
    from repro.chaos.space import draw_case

    seed = draw(st.integers(0, 10**6))
    index = draw(st.integers(0, 500))
    return draw_case(
        config, seed=seed, index=index, ns=ns, max_steps=max_steps, **kwargs
    )


def seeded_rng(seed: int) -> random.Random:
    return random.Random(seed)
