"""Shared hypothesis strategies for the property-test suites."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.kernel.failures import FailurePattern


@st.composite
def failure_patterns(draw, min_n=2, max_n=6, max_crash_time=50, min_correct=1):
    """A random failure pattern with at least ``min_correct`` correct."""
    n = draw(st.integers(min_n, max_n))
    max_faulty = n - min_correct
    faulty_count = draw(st.integers(0, max_faulty))
    crashed = draw(
        st.lists(
            st.integers(0, n - 1),
            min_size=faulty_count,
            max_size=faulty_count,
            unique=True,
        )
    )
    times = {
        p: draw(st.integers(0, max_crash_time), label=f"crash_time[{p}]")
        for p in crashed
    }
    return FailurePattern(n, times)


@st.composite
def quorums(draw, n, nonempty=True):
    members = draw(
        st.lists(st.integers(0, n - 1), min_size=1 if nonempty else 0, unique=True)
    )
    return frozenset(members)


@st.composite
def binary_proposals(draw, n):
    return {p: draw(st.sampled_from([0, 1])) for p in range(n)}


def seeded_rng(seed: int) -> random.Random:
    return random.Random(seed)
