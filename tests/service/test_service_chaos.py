"""Chaos cross-checks: lying detectors cannot make the service lie.

Certification counts actual majority log matches, never detector output,
so an injector can stall the service (liveness) but a read under lease
must never expose an uncertified — nonuniform-unsafe — value.  The
``read_mode="local"`` escape hatch exists precisely to show what goes
wrong without the rule.
"""

import pytest

from repro.chaos.injectors import CrashedLeaderOmega, SplitQuorums
from repro.detectors import Omega, PairedDetector, SigmaNuPlus
from repro.service.clock import TickClock
from repro.service.service import ConsensusService, ServiceConfig
from repro.smr.properties import (
    certified_log,
    certified_prefix_length,
    check_certified_reads,
)

from tests.service.conftest import run_logical, run_service_scenario


def chaos_traffic(commands: int = 12, run_ticks: int = 60, reads_every: int = 5):
    """Open-loop traffic + periodic reads, bounded by run_ticks."""

    async def scenario(service, clock):
        from repro.service.service import Backpressure, Unavailable

        sent = 0
        for tick in range(run_ticks):
            if sent < commands:
                try:
                    service.try_submit(f"c{sent % 3}", sent // 3, ("op", sent))
                    sent += 1
                except Backpressure:
                    pass
            if tick % reads_every == 0:
                try:
                    await service.read()
                except Unavailable:
                    pass
            await clock.sleep_ticks(1)
        return sent

    return scenario


class TestCrashedLeaderOmega:
    def config(self, read_mode="majority"):
        return ServiceConfig(
            n=3,
            seed=2,
            batch_size=2,
            queue_depth=4,
            crash_times={0: 0},  # the liar's eternal leader, dead at t=0
            detector=PairedDetector(CrashedLeaderOmega(), SigmaNuPlus()),
            read_mode=read_mode,
        )

    def test_stalls_but_never_exposes_uncertified(self):
        summary = run_service_scenario(self.config(), chaos_traffic())
        # Nothing can decide under a permanently crashed leader...
        assert summary["stats"]["committed"] == 0
        assert summary["certified_log"] == ()
        # ...and every read honestly served the empty certified prefix.
        assert summary["read_log"], "reads should still be answered"
        for prefix, view in summary["read_log"]:
            assert prefix == 0
            assert view == ()
        assert summary["invariant_violations"] == ()

    def test_backpressure_engages_while_stalled(self):
        # The intake queue is bounded; with nothing draining, the open
        # loop must shed rather than buffer without bound.
        summary = run_service_scenario(
            self.config(), chaos_traffic(commands=12, run_ticks=60)
        )
        stats = summary["stats"]
        assert stats["shed"] > 0
        assert stats["submitted"] <= self.config().queue_depth + stats["batches"] * 2

    def test_honest_twin_stays_live(self):
        # Same crash pattern, honest detector: the service commits.
        config = ServiceConfig(
            n=3, seed=2, batch_size=2, queue_depth=4, crash_times={0: 0}
        )
        summary = run_service_scenario(config, chaos_traffic())
        assert summary["stats"]["committed"] > 0
        assert summary["invariant_violations"] == ()


class TestSplitQuorums:
    @pytest.mark.parametrize("seed", range(4))
    def test_reads_stay_certified_under_split(self, seed):
        config = ServiceConfig(
            n=4,
            seed=seed,
            batch_size=2,
            detector=PairedDetector(Omega(), SplitQuorums()),
        )
        summary = run_service_scenario(config, chaos_traffic())
        logs = {p: list(log) for p, log in summary["logs"].items()}
        report = check_certified_reads(
            summary["read_log"], logs, quorum=3
        )
        assert report.ok, report.violations
        # If the halves diverged anywhere, certification stopped short.
        lengths = {len(log) for log in logs.values()}
        for slot in range(min(lengths, default=0)):
            values = {tuple(log)[slot] for log in logs.values()}
            if len(values) > 1:
                certified = certified_prefix_length(logs, 3)
                assert certified <= slot
                break


class TestCertificationRule:
    """The mechanism itself, on crafted divergent logs."""

    A = ("batch", "svc", 0, (("alice", 0, "safe"),))
    B = ("batch", "svc", 0, (("mallory", 0, "divergent"),))

    def test_majority_blocks_divergence(self):
        logs = {0: [self.A], 1: [self.A], 2: [self.B], 3: [self.B]}
        assert certified_prefix_length(logs, quorum=3) == 0
        # With a real 3-of-4 majority the slot certifies.
        logs[2] = [self.A]
        assert certified_prefix_length(logs, quorum=3) == 1

    # A faulty replica's log can be the *longest* while diverging inside
    # the certified range; the quorum value, not the longest log, decides.
    B2 = ("batch", "svc", 1, (("mallory", 1, "more"),))

    def test_certified_log_ignores_divergent_longest_log(self):
        logs = {0: [self.B, self.B2], 1: [self.A], 2: [self.A]}
        assert certified_log(logs, quorum=2) == [self.A]
        assert certified_prefix_length(logs, quorum=2) == 1

    def test_checker_reference_is_quorum_backed(self):
        # The divergent log iterates first; it must not become the
        # checker's reference for what a certified read should contain.
        logs = {0: [self.B], 1: [self.A], 2: [self.A]}
        good = check_certified_reads(
            [(1, (("alice", 0, "safe"),))], logs, quorum=2
        )
        assert good.ok, good.violations
        bad = check_certified_reads(
            [(1, (("mallory", 0, "divergent"),))], logs, quorum=2
        )
        assert not bad.ok
        assert any("diverge" in v for v in bad.violations)

    def test_apply_uses_quorum_value_not_longest_log(self):
        async def main(loop):
            clock = TickClock(loop)
            service = ConsensusService(ServiceConfig(n=3, seed=0), clock)
            # Faulty replica 0 holds the longest log but diverged at 0.
            service.core.replicas[0].log.extend([self.B, self.B2])
            for p in (1, 2):
                service.core.replicas[p].log.append(self.A)
            service._apply_certified(tick=0)
            return list(service.applied_commands), await service.read()

        applied, view = run_logical(main)
        assert applied == [("alice", 0, "safe")]
        assert view == (("alice", 0, "safe"),)

    def test_local_mode_exposes_what_majority_blocks(self):
        def scenario(read_mode):
            async def main(loop):
                clock = TickClock(loop)
                service = ConsensusService(
                    ServiceConfig(n=4, seed=0, read_mode=read_mode), clock
                )
                # Hand the replicas a 2-2 split log (never started: the
                # state is exactly what we write here).
                for p in (0, 1):
                    service.core.replicas[p].log.append(self.A)
                for p in (2, 3):
                    service.core.replicas[p].log.append(self.B)
                view = await service.read()
                return view, service.read_log

            return run_logical(main)

        safe_view, safe_reads = scenario("majority")
        assert safe_view == ()  # nothing certified, nothing exposed
        assert check_certified_reads(
            safe_reads,
            {0: [self.A], 1: [self.A], 2: [self.B], 3: [self.B]},
            quorum=3,
        ).ok

        unsafe_view, unsafe_reads = scenario("local")
        assert unsafe_view != ()  # an uncertified value leaked...
        report = check_certified_reads(
            unsafe_reads,
            {0: [self.A], 1: [self.A], 2: [self.B], 3: [self.B]},
            quorum=3,
        )
        assert not report.ok  # ...and the checker catches exactly that.
        assert any("beyond certified" in v for v in report.violations)
