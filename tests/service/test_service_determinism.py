"""The headline: the full asyncio service is a function of (config, seed).

Byte identity is asserted three ways:

* two runs of the same scenario produce identical decided logs, applied
  sequences, stats *and* counter registries;
* batch sizes 1/4/16 over the same seeded open-loop workload produce the
  identical applied command sequence (batching changes grouping, never
  order or content); and
* traced and untraced runs decide identically (RPR301-guarded
  instrumentation is observationally free).
"""

import hashlib

import pytest

from repro import obs
from repro.harness.load import LoadSpec, build_schedule, run_service_load
from repro.service.service import ServiceConfig

from tests.service.conftest import drain, run_service_scenario


def canonical_bytes(summary: dict) -> bytes:
    """A canonical byte encoding of a run summary (sorted, repr-based)."""
    parts = []
    for key in sorted(summary):
        if key == "extra":
            continue
        parts.append(f"{key}={summary[key]!r}".encode())
    return b"\n".join(parts)


def seeded_traffic(commands: int = 30, clients: int = 3):
    """A deterministic closed-ish scenario: interleaved session chains."""

    async def scenario(service, clock):
        import asyncio

        async def client(c: int) -> None:
            for seq in range(commands // clients):
                await service.submit(f"s{c}", seq, ("put", c, seq))
                await clock.sleep_ticks(1 + (c + seq) % 3)

        await asyncio.gather(*[client(c) for c in range(clients)])
        await service.read()
        await drain(service, clock)
        return None

    return scenario


class TestDoubleRunIdentity:
    def test_two_runs_byte_identical(self):
        config = ServiceConfig(n=3, seed=9, batch_size=4)
        a = run_service_scenario(config, seeded_traffic())
        b = run_service_scenario(config, seeded_traffic())
        assert canonical_bytes(a) == canonical_bytes(b)
        assert a["applied"]  # the scenario actually committed work

    def test_two_runs_identical_counter_registries(self):
        def traced_run():
            obs.enable(label="svc-determinism", fresh_metrics=True)
            try:
                run_service_scenario(
                    ServiceConfig(n=3, seed=9, batch_size=4), seeded_traffic()
                )
                snapshot = obs.metrics().snapshot()
            finally:
                obs.disable()
            # Counters and gauges are logical; timers hold wall times.
            return (
                sorted(snapshot["counters"].items()),
                sorted(snapshot["gauges"].items()),
            )

        assert traced_run() == traced_run()

    def test_different_seeds_differ(self):
        # The identity assertions above are not vacuous: seeds matter.
        a = run_service_scenario(
            ServiceConfig(n=3, seed=1, batch_size=4), seeded_traffic()
        )
        b = run_service_scenario(
            ServiceConfig(n=3, seed=2, batch_size=4), seeded_traffic()
        )
        # Closed-loop interleaving is seed-dependent, but the committed
        # *set* and each session's FIFO order are workload properties.
        assert set(a["applied"]) == set(b["applied"])
        for summary in (a, b):
            assert summary["invariant_violations"] == ()
        assert canonical_bytes(a) != canonical_bytes(b)


class TestBatchSizeIdentity:
    @pytest.mark.parametrize("mode", ["burst", "spread"])
    def test_batch_1_4_16_same_applied_sequence(self, mode):
        spec = LoadSpec(
            mode="open",
            clients=5,
            commands=40,
            arrival_every=0 if mode == "burst" else 2,
            seed=17,
        )
        digests = {}
        applied = {}
        for batch in (1, 4, 16):
            config = ServiceConfig(
                n=3, seed=17, batch_size=batch, queue_depth=64
            )
            report, service = run_service_load(config, spec)
            assert report.committed == report.submitted == 40
            assert report.timed_out == 0
            digests[batch] = report.applied_digest
            applied[batch] = tuple(service.applied_commands)
        assert applied[1] == applied[4] == applied[16]
        assert len(set(digests.values())) == 1

    def test_schedule_depends_only_on_spec(self):
        spec = LoadSpec(mode="open", clients=4, commands=25, seed=5)
        assert build_schedule(spec) == build_schedule(spec)
        other = build_schedule(LoadSpec(mode="open", clients=4,
                                        commands=25, seed=6))
        assert build_schedule(spec) != other


class TestTracedUntracedIdentity:
    def test_tracing_changes_nothing_decided(self):
        config = ServiceConfig(n=3, seed=23, batch_size=8)
        untraced = run_service_scenario(config, seeded_traffic())

        obs.enable(label="svc-traced", fresh_metrics=True)
        try:
            traced = run_service_scenario(config, seeded_traffic())
            spans = obs.tracer().spans()
            events = obs.tracer().events()
        finally:
            obs.disable()

        assert canonical_bytes(traced) == canonical_bytes(untraced)
        # And the trace really covered the pipeline stages.
        span_names = {s["name"] for s in spans}
        event_names = {e["name"] for e in events}
        assert "service.kernel" in span_names
        assert "service.apply" in span_names
        assert {"service.submit", "service.propose", "service.reply"} <= (
            event_names
        )

    def test_load_digest_traced_equals_untraced(self):
        spec = LoadSpec(mode="open", clients=4, commands=24,
                        arrival_every=0, seed=31)
        config = ServiceConfig(n=3, seed=31, batch_size=4)
        plain, _ = run_service_load(config, spec)
        obs.enable(label="svc-load", fresh_metrics=True)
        try:
            traced, _ = run_service_load(config, spec)
        finally:
            obs.disable()
        assert plain.applied_digest == traced.applied_digest
        assert plain.latencies == traced.latencies
        assert plain.kernel_steps == traced.kernel_steps


def test_canonical_bytes_is_stable_itself():
    payload = {"b": (1, 2), "a": {"x": 1}, "extra": object()}
    digest = hashlib.sha256(canonical_bytes(payload)).hexdigest()
    assert digest == hashlib.sha256(canonical_bytes(dict(payload))).hexdigest()
