"""The deterministic event loop: logical time, no real sleeping."""

import asyncio

import pytest

from repro.service.clock import TICK_SECONDS, TickClock, logical_event_loop

from tests.service.conftest import run_logical


class TestLogicalTimeLoop:
    def test_time_starts_at_zero_and_advances_by_sleeps(self):
        async def main(loop):
            start = loop.time()
            await asyncio.sleep(0.5)
            await asyncio.sleep(0.25)
            return start, loop.time()

        start, end = run_logical(main)
        assert start == 0.0
        assert end == pytest.approx(0.75)

    def test_sleeps_cost_no_wall_time(self):
        import time

        async def main(loop):
            await asyncio.sleep(3600.0)  # one logical hour
            return loop.time()

        wall_start = time.monotonic()
        logical = run_logical(main)
        wall = time.monotonic() - wall_start
        assert logical == pytest.approx(3600.0)
        assert wall < 5.0  # would fail by 3595s if the sleep were real

    def test_timer_interleaving_is_deterministic(self):
        def scenario():
            async def main(loop):
                fired = []

                async def ticker(name, period, count):
                    for i in range(count):
                        await asyncio.sleep(period)
                        fired.append((name, i, round(loop.time(), 6)))

                await asyncio.gather(
                    ticker("a", 0.003, 5),
                    ticker("b", 0.005, 3),
                    ticker("c", 0.001, 7),
                )
                return fired

            return run_logical(main)

        assert scenario() == scenario()

    def test_wait_for_timeouts_fire_logically(self):
        async def main(loop):
            forever = loop.create_future()
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(forever, timeout=2.0)
            return loop.time()

        assert run_logical(main) == pytest.approx(2.0)

    def test_deadlock_is_surfaced_not_hung(self):
        async def main(loop):
            # A future nobody will ever resolve, and no timers: under
            # logical time this can never complete.
            await loop.create_future()

        with pytest.raises(RuntimeError, match="deadlock"):
            run_logical(main)


class TestTickClock:
    def test_ticks_quantize_loop_time(self):
        async def main(loop):
            clock = TickClock(loop)
            ticks = [clock.now_ticks()]
            await clock.sleep_ticks(3)
            ticks.append(clock.now_ticks())
            await clock.sleep_ticks(1)
            ticks.append(clock.now_ticks())
            return ticks

        assert run_logical(main) == [0, 3, 4]

    def test_many_ticks_accumulate_exactly(self):
        async def main(loop):
            clock = TickClock(loop)
            for _ in range(1000):
                await clock.sleep_ticks(1)
            return clock.now_ticks(), loop.time()

        ticks, t = run_logical(main)
        assert ticks == 1000
        assert t == pytest.approx(1000 * TICK_SECONDS)

    def test_wall_loop_also_works(self):
        # TickClock is clock-source agnostic: on a stock loop ticks map to
        # real time (production mode); just check the arithmetic holds.
        loop = asyncio.new_event_loop()
        try:
            clock = TickClock(loop)

            async def main():
                before = clock.now_ticks()
                await clock.sleep_ticks(2)
                return clock.now_ticks() - before

            elapsed = loop.run_until_complete(main())
            assert elapsed >= 2
        finally:
            loop.close()

    def test_logical_loop_factory_returns_fresh_loops(self):
        a, b = logical_event_loop(), logical_event_loop()
        try:
            assert a is not b
            assert a.time() == 0.0 and b.time() == 0.0
        finally:
            a.close()
            b.close()
