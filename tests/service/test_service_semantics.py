"""Client-visible semantics: sessions, dedup, backpressure, leases, TCP."""

import asyncio
import json

import pytest

from repro.service.clock import TickClock
from repro.service.service import (
    Backpressure,
    ConsensusService,
    ServiceConfig,
    Unavailable,
)

from tests.service.conftest import drain, run_logical


class TestSessions:
    def test_exactly_once_resubmit(self):
        async def main(loop):
            service = ConsensusService(ServiceConfig(n=3, seed=4), TickClock(loop))
            service.start()
            first = await service.submit("s", 0, ("x",))
            again = await service.submit("s", 0, ("x",))  # client retry
            await service.stop()
            return first, again, service.stats, list(service.applied_commands)

        first, again, stats, applied = run_logical(main)
        assert first == again
        assert stats["duplicates"] == 1
        assert applied.count(("s", 0, ("x",))) == 1

    def test_duplicate_in_flight_is_applied_once(self):
        # Two concurrent submissions of the same (session, seq) — e.g. a
        # client retrying before the first commit lands — both resolve,
        # one apply.
        async def main(loop):
            service = ConsensusService(
                ServiceConfig(n=3, seed=4, batch_size=1), TickClock(loop)
            )
            service.start()
            a = service.try_submit("s", 0, ("x",))
            b = service.try_submit("s", 0, ("x",))
            replies = await asyncio.gather(a, b)
            await service.stop()
            return replies, list(service.applied_commands)

        replies, applied = run_logical(main)
        assert replies[0] == replies[1]
        assert applied == [("s", 0, ("x",))]

    def test_session_fifo_checked_online(self):
        async def main(loop):
            service = ConsensusService(ServiceConfig(n=3, seed=6), TickClock(loop))
            service.start()
            for seq in range(5):
                await service.submit("fifo", seq, ("op", seq))
            await service.stop()
            return service.invariants.ok, list(service.applied_commands)

        ok, applied = run_logical(main)
        assert ok
        assert [c[1] for c in applied] == [0, 1, 2, 3, 4]


class TestBackpressure:
    def test_try_submit_sheds_when_queue_full(self):
        async def main(loop):
            # Never started: the intake queue can only fill.
            service = ConsensusService(
                ServiceConfig(n=3, seed=0, queue_depth=3), TickClock(loop)
            )
            futures = [service.try_submit("s", i, ("x", i)) for i in range(3)]
            with pytest.raises(Backpressure):
                service.try_submit("s", 3, ("x", 3))
            for f in futures:
                f.cancel()
            return service.stats

        stats = run_logical(main)
        assert stats["shed"] == 1
        assert stats["submitted"] == 3

    def test_blocking_submit_resumes_after_drain(self):
        async def main(loop):
            service = ConsensusService(
                ServiceConfig(n=3, seed=0, queue_depth=2, batch_size=2),
                TickClock(loop),
            )
            service.start()
            # More submitters than queue depth: the extras block on put()
            # until the batcher drains, then everything commits.
            replies = await asyncio.gather(
                *[service.submit("s", i, ("x", i)) for i in range(8)]
            )
            await service.stop()
            return replies, service.stats

        replies, stats = run_logical(main)
        assert len(replies) == 8
        assert stats["committed"] == 8
        assert stats["shed"] == 0


class TestReadsAndLeases:
    def test_read_serves_certified_prefix(self):
        async def main(loop):
            clock = TickClock(loop)
            service = ConsensusService(ServiceConfig(n=3, seed=8), clock)
            service.start()
            empty = await service.read()
            await service.submit("r", 0, ("v", 1))
            after = await service.read()
            await service.stop()
            return empty, after, service.certified_slots

        empty, after, certified = run_logical(main)
        assert empty == ()
        assert after == (("r", 0, ("v", 1)),)
        assert certified >= 1

    def test_lease_is_cached_between_reads(self):
        async def main(loop):
            clock = TickClock(loop)
            service = ConsensusService(
                ServiceConfig(n=3, seed=8, lease_ticks=100), clock
            )
            service.start()
            await service.submit("r", 0, ("v", 1))
            for _ in range(10):
                await service.read()
            holder, expiry = service._lease
            await service.stop()
            return holder, expiry, service.stats["reads"]

        holder, expiry, reads = run_logical(main)
        assert reads == 10
        assert 0 <= holder < 3

    def test_lease_expires_and_renews(self):
        async def main(loop):
            clock = TickClock(loop)
            service = ConsensusService(
                ServiceConfig(n=3, seed=8, lease_ticks=2), clock
            )
            service.start()
            await service.read()
            first = service._lease
            await clock.sleep_ticks(5)
            await service.read()
            second = service._lease
            await service.stop()
            return first, second

        first, second = run_logical(main)
        assert second[1] > first[1]  # renewed with a later expiry

    def test_unavailable_when_everyone_crashes(self):
        async def main(loop):
            clock = TickClock(loop)
            service = ConsensusService(
                ServiceConfig(
                    n=3, seed=8, crash_times={0: 0, 1: 0, 2: 0}
                ),
                clock,
            )
            service.start()
            # One kernel advance so system time passes the crash times.
            await clock.sleep_ticks(2)
            try:
                with pytest.raises(Unavailable):
                    await service.read()
            finally:
                await service.stop()
            return True

        assert run_logical(main)


class TestTcpFront:
    def test_submit_read_stats_round_trip(self):
        # Wall loop: the TCP front is production surface; semantics only
        # (determinism is asserted on the logical-loop paths above).
        from repro.service.net import serve_tcp

        async def main():
            loop = asyncio.get_running_loop()
            service = ConsensusService(
                ServiceConfig(n=3, seed=12), TickClock(loop)
            )
            service.start()
            server = await serve_tcp(service, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)

            async def rpc(payload):
                writer.write(json.dumps(payload).encode() + b"\n")
                await writer.drain()
                return json.loads(await reader.readline())

            submit = await rpc(
                {"op": "submit", "session": "tcp", "seq": 0, "cmd": "set"}
            )
            read = await rpc({"op": "read"})
            stats = await rpc({"op": "stats"})
            bad = await rpc({"op": "nope"})
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await service.stop()
            return submit, read, stats, bad

        submit, read, stats, bad = asyncio.run(main())
        assert submit["ok"] and submit["status"] == "ok"
        assert read["ok"] and read["commands"] == [["tcp", 0, "set"]]
        assert stats["ok"] and stats["stats"]["committed"] == 1
        assert not bad["ok"]


class TestConfigValidation:
    def test_bad_read_mode_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(read_mode="eventual")

    def test_bad_batching_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(batch_size=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_inflight=0)


def test_drain_helper_reports_quiescence():
    async def main(loop):
        clock = TickClock(loop)
        service = ConsensusService(ServiceConfig(n=3, seed=2), clock)
        service.start()
        await service.submit("d", 0, ("x",))
        drained = await drain(service, clock)
        await service.stop()
        return drained

    assert run_logical(main)
