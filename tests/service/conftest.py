"""Helpers for the deterministic service test harness.

Every test here runs the *full* asyncio service — tasks, queues, futures
— on :class:`repro.service.clock.LogicalTimeLoop`.  No sleeps are real,
no timing is host-dependent: a test that passes once passes always, and
two runs of the same scenario are byte-identical.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

from repro.service.clock import TickClock, logical_event_loop
from repro.service.service import ConsensusService, ServiceConfig


def run_logical(main_factory: Callable[[Any], Awaitable]) -> Any:
    """Run ``main_factory(loop)`` on a fresh logical loop; return result."""
    loop = logical_event_loop()
    try:
        asyncio.set_event_loop(loop)
        return loop.run_until_complete(main_factory(loop))
    finally:
        asyncio.set_event_loop(None)
        loop.close()


def run_service_scenario(config: ServiceConfig, scenario) -> dict:
    """Start a service, run ``await scenario(service, clock)``, stop it.

    Returns a canonical summary dict the determinism tests compare for
    byte identity: certified log, applied commands, decided logs, stats.
    """

    async def main(loop):
        clock = TickClock(loop)
        service = ConsensusService(config, clock)
        service.start()
        try:
            extra = await scenario(service, clock)
        finally:
            await service.stop()
        return {
            "certified_log": tuple(service.core.certified_log()),
            "applied": tuple(service.applied_commands),
            "logs": {
                p: tuple(log) for p, log in sorted(service.core.logs().items())
            },
            "stats": dict(service.stats),
            "read_log": tuple(service.read_log),
            "invariant_violations": tuple(service.invariants.violations),
            "extra": extra,
        }

    return run_logical(main)


async def drain(service: ConsensusService, clock: TickClock,
                deadline_ticks: int = 2000) -> bool:
    """Wait until nothing is in flight (or deadline); True when drained."""
    start = clock.now_ticks()
    while clock.now_ticks() - start < deadline_ticks:
        if (
            service.inflight() == 0
            and service._intake.empty()
            and not service.core.has_work()
        ):
            return True
        await clock.sleep_ticks(1)
    return False
