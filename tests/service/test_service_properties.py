"""Hypothesis: arbitrary submit/retry/crash interleavings stay safe.

Each example drives the full asyncio service on the logical loop with a
drawn action script — new submissions, client retries (the "reconnect
and resubmit" pattern), idle ticks, certified reads — over a drawn
majority-correct failure pattern.  Whatever the interleaving:

* **log agreement** — replica logs never diverge at any common slot,
* **no duplication** — each (session, seq) applies at most once,
* **session FIFO** — a session's commands apply in seq order, and
* reads never expose anything beyond the certified prefix.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.service import Backpressure, ServiceConfig, Unavailable
from repro.smr.properties import (
    check_certified_reads,
    check_service_log,
)

from tests.service.conftest import drain, run_service_scenario


@st.composite
def service_worlds(draw):
    """(config, script): a majority-correct deployment plus an action list."""
    n = draw(st.integers(3, 5))
    max_faulty = (n - 1) // 2
    faulty = draw(
        st.lists(st.integers(0, n - 1), max_size=max_faulty, unique=True)
    )
    crash_times = {p: draw(st.integers(0, 400)) for p in faulty}
    seed = draw(st.integers(0, 10**6))
    batch_size = draw(st.sampled_from([1, 2, 4]))
    config = ServiceConfig(
        n=n,
        seed=seed,
        batch_size=batch_size,
        queue_depth=8,
        crash_times=crash_times,
    )
    script = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("submit"), st.integers(0, 2)),
                st.tuples(st.just("retry"), st.integers(0, 2)),
                st.tuples(st.just("tick"), st.integers(1, 8)),
                st.tuples(st.just("read"), st.just(0)),
            ),
            min_size=4,
            max_size=20,
        )
    )
    return config, script


def run_script(service, clock, script):
    async def scenario(svc, clk):
        import asyncio

        next_seq = {}
        pending = []
        for action, arg in script:
            if action == "submit":
                session = f"s{arg}"
                seq = next_seq.get(session, 0)
                try:
                    pending.append(svc.try_submit(session, seq, ("op", seq)))
                    next_seq[session] = seq + 1
                except Backpressure:
                    pass
            elif action == "retry":
                # A client that lost its reply reconnects and resubmits
                # its last command verbatim.
                session = f"s{arg}"
                if next_seq.get(session, 0) > 0:
                    seq = next_seq[session] - 1
                    try:
                        pending.append(
                            svc.try_submit(session, seq, ("op", seq))
                        )
                    except Backpressure:
                        pass
            elif action == "tick":
                await clk.sleep_ticks(arg)
            elif action == "read":
                try:
                    await svc.read()
                except Unavailable:
                    pass
        await drain(svc, clk, deadline_ticks=800)
        for f in pending:
            if not f.done():
                f.cancel()
        await asyncio.sleep(0)
        return None

    return scenario


@settings(max_examples=10, deadline=None)
@given(service_worlds())
def test_interleavings_preserve_service_invariants(world):
    config, script = world
    summary = run_service_scenario(
        config, lambda svc, clk: run_script(svc, clk, script)(svc, clk)
    )

    # Session FIFO + no-duplication, as observed by the live apply loop.
    assert summary["invariant_violations"] == ()
    applied = summary["applied"]
    assert len(applied) == len(set(applied))
    per_session = {}
    for session, seq, _op in applied:
        assert seq == per_session.get(session, 0), (session, seq, applied)
        per_session[session] = seq + 1

    # Log agreement: no two replicas ever disagree at a common slot.
    logs = [log for _p, log in sorted(summary["logs"].items())]
    for i in range(len(logs)):
        for j in range(i + 1, len(logs)):
            common = min(len(logs[i]), len(logs[j]))
            assert logs[i][:common] == logs[j][:common]

    # The certified log itself is a well-formed service log.
    report = check_service_log(list(summary["certified_log"]))
    assert report.ok, report.violations

    # Reads never exposed anything beyond the certified prefix.
    quorum = config.n // 2 + 1
    read_report = check_certified_reads(
        list(summary["read_log"]),
        {p: list(log) for p, log in summary["logs"].items()},
        quorum,
    )
    assert read_report.ok, read_report.violations
