"""Cross-cutting property-based tests (hypothesis).

Each property here quantifies over randomly generated patterns, histories
or runs; the paper's invariants must hold on every draw.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from tests.strategies import binary_proposals, failure_patterns

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestDetectorProperties:
    @SETTINGS
    @given(pattern=failure_patterns(), seed=st.integers(0, 10**6))
    def test_sigma_nu_plus_histories_imply_sigma_nu(self, pattern, seed):
        from repro.detectors import SigmaNuPlus, check_sigma_nu, check_sigma_nu_plus

        history = SigmaNuPlus().sample_history(pattern, random.Random(seed))
        assert check_sigma_nu_plus(history, pattern, 200).ok
        assert check_sigma_nu(history, pattern, 200).ok

    @SETTINGS
    @given(pattern=failure_patterns(), seed=st.integers(0, 10**6))
    def test_sigma_histories_imply_sigma_nu(self, pattern, seed):
        from repro.detectors import Sigma, check_sigma, check_sigma_nu

        history = Sigma("pivot").sample_history(pattern, random.Random(seed))
        assert check_sigma(history, pattern, 200).ok
        assert check_sigma_nu(history, pattern, 200).ok

    @SETTINGS
    @given(pattern=failure_patterns(min_n=3), seed=st.integers(0, 10**6))
    def test_omega_stabilization_reported_consistently(self, pattern, seed):
        from repro.detectors import Omega, check_omega

        history = Omega().sample_history(pattern, random.Random(seed))
        result = check_omega(history, pattern, 300)
        assert result.ok
        leader = result.details["leader"]
        stab = result.stabilization_time
        for q in pattern.correct:
            for t in range(stab, 301, 17):
                assert history.value(q, t) == leader


class TestConsensusProperties:
    @SETTINGS
    @given(
        pattern=failure_patterns(min_n=2, max_n=4, max_crash_time=40),
        seed=st.integers(0, 1000),
        data=st.data(),
    )
    def test_anuc_safety_on_random_configurations(self, pattern, seed, data):
        """Termination+validity+nonuniform agreement under random patterns
        and binary proposals."""
        from repro.consensus import check_nonuniform_consensus
        from repro.harness.runner import run_nuc

        proposals = data.draw(binary_proposals(pattern.n))
        outcome = run_nuc(pattern, proposals, seed=seed, max_steps=25000)
        assert outcome.result.stop_reason == "stop_condition"
        assert outcome.nonuniform.ok, outcome.nonuniform.violations

    @SETTINGS
    @given(
        pattern=failure_patterns(min_n=2, max_n=4, max_crash_time=40),
        seed=st.integers(0, 1000),
    )
    def test_quorum_mr_uniform_agreement(self, pattern, seed):
        from repro.consensus import (
            QuorumMR,
            check_uniform_consensus,
            consensus_outcome,
        )
        from repro.detectors import Omega, PairedDetector, Sigma
        from tests.conftest import run_live_consensus

        proposals = {p: p % 2 for p in range(pattern.n)}
        result = run_live_consensus(
            QuorumMR(),
            PairedDetector(Omega(), Sigma("pivot")),
            pattern,
            proposals,
            seed=seed,
        )
        outcome = consensus_outcome(result, proposals)
        assert check_uniform_consensus(outcome).ok


class TestBoostingProperties:
    @SETTINGS
    @given(
        pattern=failure_patterns(min_n=2, max_n=5, max_crash_time=40),
        seed=st.integers(0, 1000),
        style=st.sampled_from(["selfish", "junk", "obedient"]),
    )
    def test_booster_output_always_valid(self, pattern, seed, style):
        from repro.detectors import SigmaNu
        from repro.harness.runner import run_boosting

        outcome = run_boosting(
            pattern, seed=seed, detector=SigmaNu(style), min_outputs=4
        )
        assert outcome.check.ok, outcome.check.violations[:2]


class TestDagProperties:
    @SETTINGS
    @given(
        n=st.integers(2, 5),
        ops=st.integers(5, 60),
        seed=st.integers(0, 10**6),
    )
    def test_frontier_representation_sound(self, n, ops, seed):
        """is_ancestor via frontiers == reachability via explicit closure."""
        from repro.core.dag import DagCore, SampleDAG

        rng = random.Random(seed)
        cores = [DagCore(p, n) for p in range(n)]
        created = []
        parents = {}  # key -> set of keys present at creation
        for t in range(ops):
            p = rng.randrange(n)
            if rng.random() < 0.6:
                cores[p].absorb(cores[rng.randrange(n)].dag)
            before = {s.key for s in cores[p].dag.nodes()}
            sample = cores[p].sample(t, t)
            parents[sample.key] = before
            created.append(sample)

        # brute-force reachability: u reaches v iff u was present when v was
        # created, or u reaches some w present when v was created
        import functools

        @functools.lru_cache(maxsize=None)
        def reaches(u_key, v_key):
            if u_key == v_key:
                return False
            direct = u_key in parents[v_key]
            if direct:
                return True
            return any(reaches(u_key, w) for w in parents[v_key])

        for u in created:
            for v in created:
                assert SampleDAG.is_ancestor(u, v) == reaches(u.key, v.key), (
                    u,
                    v,
                )

    @SETTINGS
    @given(
        n=st.integers(2, 4),
        ops=st.integers(10, 50),
        seed=st.integers(0, 10**6),
    )
    def test_balanced_chain_always_a_path(self, n, ops, seed):
        from repro.core.dag import DagCore, SampleDAG, balanced_chain

        rng = random.Random(seed)
        cores = [DagCore(p, n) for p in range(n)]
        for t in range(ops):
            p = rng.randrange(n)
            if rng.random() < 0.5:
                cores[p].absorb(cores[rng.randrange(n)].dag)
            cores[p].sample(t, t)
        chain = balanced_chain(cores[0].dag.nodes())
        for u, v in zip(chain, chain[1:]):
            assert SampleDAG.is_ancestor(u, v)
