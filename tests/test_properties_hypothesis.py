"""Cross-cutting property-based tests (hypothesis).

Each property here quantifies over randomly generated patterns, histories
or runs; the paper's invariants must hold on every draw.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from tests.strategies import binary_proposals, failure_patterns

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestDetectorProperties:
    @SETTINGS
    @given(pattern=failure_patterns(), seed=st.integers(0, 10**6))
    def test_sigma_nu_plus_histories_imply_sigma_nu(self, pattern, seed):
        from repro.detectors import SigmaNuPlus, check_sigma_nu, check_sigma_nu_plus

        history = SigmaNuPlus().sample_history(pattern, random.Random(seed))
        assert check_sigma_nu_plus(history, pattern, 200).ok
        assert check_sigma_nu(history, pattern, 200).ok

    @SETTINGS
    @given(pattern=failure_patterns(), seed=st.integers(0, 10**6))
    def test_sigma_histories_imply_sigma_nu(self, pattern, seed):
        from repro.detectors import Sigma, check_sigma, check_sigma_nu

        history = Sigma("pivot").sample_history(pattern, random.Random(seed))
        assert check_sigma(history, pattern, 200).ok
        assert check_sigma_nu(history, pattern, 200).ok

    @SETTINGS
    @given(pattern=failure_patterns(min_n=3), seed=st.integers(0, 10**6))
    def test_omega_stabilization_reported_consistently(self, pattern, seed):
        from repro.detectors import Omega, check_omega

        history = Omega().sample_history(pattern, random.Random(seed))
        result = check_omega(history, pattern, 300)
        assert result.ok
        leader = result.details["leader"]
        stab = result.stabilization_time
        for q in pattern.correct:
            for t in range(stab, 301, 17):
                assert history.value(q, t) == leader


class TestConsensusProperties:
    @SETTINGS
    @given(
        pattern=failure_patterns(min_n=2, max_n=4, max_crash_time=40),
        seed=st.integers(0, 1000),
        data=st.data(),
    )
    def test_anuc_safety_on_random_configurations(self, pattern, seed, data):
        """Termination+validity+nonuniform agreement under random patterns
        and binary proposals."""
        from repro.consensus import check_nonuniform_consensus
        from repro.harness.runner import run_nuc

        proposals = data.draw(binary_proposals(pattern.n))
        outcome = run_nuc(pattern, proposals, seed=seed, max_steps=25000)
        assert outcome.result.stop_reason == "stop_condition"
        assert outcome.nonuniform.ok, outcome.nonuniform.violations

    @SETTINGS
    @given(
        pattern=failure_patterns(min_n=2, max_n=4, max_crash_time=40),
        seed=st.integers(0, 1000),
    )
    def test_quorum_mr_uniform_agreement(self, pattern, seed):
        from repro.consensus import (
            QuorumMR,
            check_uniform_consensus,
            consensus_outcome,
        )
        from repro.detectors import Omega, PairedDetector, Sigma
        from tests.conftest import run_live_consensus

        proposals = {p: p % 2 for p in range(pattern.n)}
        result = run_live_consensus(
            QuorumMR(),
            PairedDetector(Omega(), Sigma("pivot")),
            pattern,
            proposals,
            seed=seed,
        )
        outcome = consensus_outcome(result, proposals)
        assert check_uniform_consensus(outcome).ok


class TestBoostingProperties:
    @SETTINGS
    @given(
        pattern=failure_patterns(min_n=2, max_n=5, max_crash_time=40),
        seed=st.integers(0, 1000),
        style=st.sampled_from(["selfish", "junk", "obedient"]),
    )
    def test_booster_output_always_valid(self, pattern, seed, style):
        from repro.detectors import SigmaNu
        from repro.harness.runner import run_boosting

        outcome = run_boosting(
            pattern, seed=seed, detector=SigmaNu(style), min_outputs=4
        )
        assert outcome.check.ok, outcome.check.violations[:2]


class TestDagProperties:
    @SETTINGS
    @given(
        n=st.integers(2, 5),
        ops=st.integers(5, 60),
        seed=st.integers(0, 10**6),
    )
    def test_frontier_representation_sound(self, n, ops, seed):
        """is_ancestor via frontiers == reachability via explicit closure."""
        from repro.core.dag import DagCore, SampleDAG

        rng = random.Random(seed)
        cores = [DagCore(p, n) for p in range(n)]
        created = []
        parents = {}  # key -> set of keys present at creation
        for t in range(ops):
            p = rng.randrange(n)
            if rng.random() < 0.6:
                cores[p].absorb(cores[rng.randrange(n)].dag)
            before = {s.key for s in cores[p].dag.nodes()}
            sample = cores[p].sample(t, t)
            parents[sample.key] = before
            created.append(sample)

        # brute-force reachability: u reaches v iff u was present when v was
        # created, or u reaches some w present when v was created
        import functools

        @functools.lru_cache(maxsize=None)
        def reaches(u_key, v_key):
            if u_key == v_key:
                return False
            direct = u_key in parents[v_key]
            if direct:
                return True
            return any(reaches(u_key, w) for w in parents[v_key])

        for u in created:
            for v in created:
                assert SampleDAG.is_ancestor(u, v) == reaches(u.key, v.key), (
                    u,
                    v,
                )

    @SETTINGS
    @given(
        n=st.integers(2, 4),
        ops=st.integers(10, 50),
        seed=st.integers(0, 10**6),
    )
    def test_balanced_chain_always_a_path(self, n, ops, seed):
        from repro.core.dag import DagCore, SampleDAG, balanced_chain

        rng = random.Random(seed)
        cores = [DagCore(p, n) for p in range(n)]
        for t in range(ops):
            p = rng.randrange(n)
            if rng.random() < 0.5:
                cores[p].absorb(cores[rng.randrange(n)].dag)
            cores[p].sample(t, t)
        chain = balanced_chain(cores[0].dag.nodes())
        for u, v in zip(chain, chain[1:]):
            assert SampleDAG.is_ancestor(u, v)


class TestChaosProperties:
    """The chaos harness's own invariants, quantified over its case space."""

    @SETTINGS
    @given(data=st.data())
    def test_fuzz_case_json_round_trip(self, data):
        from repro.chaos.space import FuzzCase
        from tests.strategies import fuzz_cases

        case = data.draw(fuzz_cases())
        assert FuzzCase.from_json(case.to_json()) == case

    @SETTINGS
    @given(seed=st.integers(0, 10**6), index=st.integers(0, 500))
    def test_draw_case_is_pure_in_seed_and_index(self, seed, index):
        from repro.chaos.space import draw_case

        a = draw_case("purity", seed=seed, index=index, ns=(3, 4), max_steps=100)
        b = draw_case("purity", seed=seed, index=index, ns=(3, 4), max_steps=100)
        assert a == b

    @SETTINGS
    @given(data=st.data())
    def test_intersecting_quorum_families_pairwise_intersect(self, data):
        from tests.strategies import quorum_families

        pattern = data.draw(failure_patterns(min_n=2, max_n=5))
        family = data.draw(quorum_families(pattern, intersecting=True))
        quorums = [q for qs in family.values() for q in qs]
        for a in quorums:
            for b in quorums:
                assert a & b

    @SETTINGS
    @given(data=st.data())
    def test_eventually_perfect_histories_pass_their_checker(self, data):
        from tests.strategies import detector_histories

        from repro.detectors import EventuallyPerfect, check_eventually_perfect

        pattern, history = data.draw(
            detector_histories(EventuallyPerfect, min_n=2, max_n=5)
        )
        result = check_eventually_perfect(history, pattern, 200)
        assert result.ok, result.violations

    @SETTINGS
    @given(data=st.data())
    def test_injected_histories_rejected_by_their_checker(self, data):
        """Every injector's histories must flip exactly its declared
        hypothesis checker — the hypothesis half of the injection matrix,
        quantified over random applicable patterns."""
        import random as _random

        from repro.chaos.injectors import ALL_INJECTORS, HYPOTHESIS_CHECKERS

        injector_cls = data.draw(st.sampled_from(list(ALL_INJECTORS)))
        pattern = data.draw(failure_patterns(min_n=3, max_n=5, min_correct=2))
        injector = injector_cls()
        if not injector.applicable(pattern):
            return
        seed = data.draw(st.integers(0, 10**6))
        history = injector.sample_history(pattern, _random.Random(seed))
        checker = HYPOTHESIS_CHECKERS[injector.checker]
        assert not checker(history, pattern, 200).ok
