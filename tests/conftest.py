"""Shared helpers and fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.kernel.automaton import AutomatonProcess
from repro.kernel.failures import FailurePattern
from repro.kernel.system import System


def make_rng(seed) -> random.Random:
    return random.Random(repr(seed))


def run_live_consensus(
    automaton,
    detector,
    pattern,
    proposals,
    seed=0,
    max_steps=20000,
    **system_kwargs,
):
    """Run a pure-automaton consensus algorithm to all-correct decision."""
    history = detector.sample_history(pattern, make_rng(("h", seed)))
    processes = {
        p: AutomatonProcess(automaton, proposals[p]) for p in range(pattern.n)
    }
    system = System(processes, pattern, history, seed=seed, **system_kwargs)
    return system.run(
        max_steps=max_steps, stop_when=lambda s: s.all_correct_decided()
    )


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_pattern():
    return FailurePattern(4, {3: 12})
